//! Fully-connected spiking layer.

use serde::{Deserialize, Serialize};

use super::{EventLayer, LayerKind, NeuronBank, NeuronConfig};
use crate::tensor::{Frame, Shape};
use crate::ModelError;

/// A fully-connected layer with stateful spiking neurons.
///
/// The input frame is flattened in `[C, H, W]` row-major order; each output
/// neuron holds one weight per input position. Input spikes scatter their
/// weight column into the output membranes, mirroring how the SNE maps
/// fully-connected layers onto clusters (every input event addresses all
/// output neurons).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    input_shape: Shape,
    outputs: u16,
    /// Weights in `[output][input]` layout.
    weights: Vec<f32>,
    neurons: NeuronBank,
}

impl DenseLayer {
    /// Creates a dense layer with all-zero weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `outputs` is zero or the
    /// input shape has a zero dimension.
    pub fn new(input_shape: Shape, outputs: u16, config: NeuronConfig) -> Result<Self, ModelError> {
        if outputs == 0 {
            return Err(ModelError::InvalidParameter {
                name: "outputs",
                reason: "output neuron count must be non-zero".to_owned(),
            });
        }
        if input_shape.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "input_shape",
                reason: format!("input shape {input_shape} has a zero dimension"),
            });
        }
        let weights = vec![0.0; usize::from(outputs) * input_shape.len()];
        Ok(Self {
            input_shape,
            outputs,
            weights,
            neurons: NeuronBank::new(config, usize::from(outputs)),
        })
    }

    /// Number of output neurons.
    #[must_use]
    pub fn outputs(&self) -> u16 {
        self.outputs
    }

    /// Number of inputs (flattened input shape).
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.input_shape.len()
    }

    /// Weight connecting flattened input `input` to `output`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn weight(&self, output: u16, input: usize) -> f32 {
        self.weights[usize::from(output) * self.inputs() + input]
    }

    /// Sets the weight connecting flattened input `input` to `output`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_weight(&mut self, output: u16, input: usize, value: f32) {
        let inputs = self.inputs();
        self.weights[usize::from(output) * inputs + input] = value;
    }

    /// All weights in `[output][input]` layout.
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Replaces all weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the length does not match
    /// the layer geometry.
    pub fn set_weights(&mut self, weights: Vec<f32>) -> Result<(), ModelError> {
        if weights.len() != self.weights.len() {
            return Err(ModelError::InvalidParameter {
                name: "weights",
                reason: format!(
                    "expected {} weights, got {}",
                    self.weights.len(),
                    weights.len()
                ),
            });
        }
        self.weights = weights;
        Ok(())
    }

    /// Membrane potential of output neuron `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    #[must_use]
    pub fn membrane(&self, output: u16) -> f32 {
        self.neurons.membrane(usize::from(output))
    }
}

impl EventLayer for DenseLayer {
    fn input_shape(&self) -> Shape {
        self.input_shape
    }

    fn output_shape(&self) -> Shape {
        Shape::new(self.outputs, 1, 1)
    }

    fn step(&mut self, input: &Frame) -> Frame {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "dense layer input shape mismatch"
        );
        let inputs = self.inputs();
        for (c, y, x) in input.spikes() {
            let in_idx = self.input_shape.index(c, y, x);
            for out in 0..usize::from(self.outputs) {
                let w = self.weights[out * inputs + in_idx];
                self.neurons.integrate(out, w);
            }
        }
        let fired = self.neurons.fire_all();
        let mut output = Frame::zeros(self.output_shape());
        for (i, &f) in fired.iter().enumerate() {
            if f {
                output.set(i as u16, 0, 0, true);
            }
        }
        output
    }

    fn reset(&mut self) {
        self.neurons.reset();
    }

    fn synaptic_ops(&self, input: &Frame) -> u64 {
        input.spike_count() as u64 * u64::from(self.outputs)
    }

    fn num_neurons(&self) -> usize {
        usize::from(self.outputs)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dense
    }

    fn describe(&self) -> String {
        format!("fc {}x{}", self.inputs(), self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::LifParams;

    fn lif(leak: i16, threshold: i16) -> NeuronConfig {
        NeuronConfig::Lif(LifParams {
            leak,
            threshold,
            ..LifParams::default()
        })
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(DenseLayer::new(Shape::new(2, 2, 2), 0, NeuronConfig::default_lif()).is_err());
        assert!(DenseLayer::new(Shape::new(0, 2, 2), 4, NeuronConfig::default_lif()).is_err());
    }

    #[test]
    fn output_shape_is_flat() {
        let l = DenseLayer::new(Shape::new(32, 2, 2), 11, NeuronConfig::default_lif()).unwrap();
        assert_eq!(l.output_shape(), Shape::new(11, 1, 1));
        assert_eq!(l.inputs(), 128);
        assert_eq!(l.num_neurons(), 11);
        assert_eq!(l.describe(), "fc 128x11");
        assert_eq!(l.kind(), LayerKind::Dense);
    }

    #[test]
    fn spike_scatters_weight_column() {
        let mut l = DenseLayer::new(Shape::new(1, 2, 2), 3, lif(0, 100)).unwrap();
        l.set_weight(0, 1, 5.0);
        l.set_weight(1, 1, -3.0);
        l.set_weight(2, 1, 7.0);
        let mut input = Frame::zeros(Shape::new(1, 2, 2));
        input.set(0, 0, 1, true); // flattened index 1
        let _ = l.step(&input);
        assert_eq!(l.membrane(0), 5.0);
        assert_eq!(l.membrane(1), -3.0);
        assert_eq!(l.membrane(2), 7.0);
    }

    #[test]
    fn neuron_fires_at_threshold_and_resets() {
        let mut l = DenseLayer::new(Shape::new(1, 1, 2), 1, lif(0, 10)).unwrap();
        l.set_weight(0, 0, 6.0);
        let mut input = Frame::zeros(Shape::new(1, 1, 2));
        input.set(0, 0, 0, true);
        assert_eq!(l.step(&input).spike_count(), 0);
        let out = l.step(&input);
        assert!(out.get(0, 0, 0));
        assert_eq!(l.membrane(0), 0.0);
    }

    #[test]
    fn synaptic_ops_are_spikes_times_outputs() {
        let l = DenseLayer::new(Shape::new(2, 2, 2), 16, NeuronConfig::default_lif()).unwrap();
        let mut input = Frame::zeros(Shape::new(2, 2, 2));
        input.set(0, 0, 0, true);
        input.set(1, 1, 1, true);
        input.set(0, 1, 0, true);
        assert_eq!(l.synaptic_ops(&input), 3 * 16);
    }

    #[test]
    fn set_weights_validates_length() {
        let mut l = DenseLayer::new(Shape::new(1, 1, 2), 2, NeuronConfig::default_lif()).unwrap();
        assert!(l.set_weights(vec![0.0; 3]).is_err());
        assert!(l.set_weights(vec![1.0; 4]).is_ok());
        assert_eq!(l.weight(1, 1), 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut l = DenseLayer::new(Shape::new(1, 1, 2), 1, lif(0, 100)).unwrap();
        l.set_weight(0, 0, 6.0);
        let mut input = Frame::zeros(Shape::new(1, 1, 2));
        input.set(0, 0, 0, true);
        let _ = l.step(&input);
        l.reset();
        assert_eq!(l.membrane(0), 0.0);
    }

    #[test]
    fn srm_dense_layer_fires_with_float_dynamics() {
        let mut l = DenseLayer::new(
            Shape::new(1, 1, 1),
            1,
            NeuronConfig::Srm(crate::neuron::SrmParams {
                threshold: 3.0,
                ..Default::default()
            }),
        )
        .unwrap();
        l.set_weight(0, 0, 4.0);
        let mut input = Frame::zeros(Shape::new(1, 1, 1));
        input.set(0, 0, 0, true);
        let out = l.step(&input);
        assert!(out.get(0, 0, 0));
    }
}

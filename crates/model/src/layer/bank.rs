//! A bank of identical stateful neurons addressed by a flat index.

use serde::{Deserialize, Serialize};

use super::NeuronConfig;
use crate::neuron::LifParams;
#[cfg(test)]
use crate::neuron::SrmParams;

/// A flat array of neurons sharing one [`NeuronConfig`].
///
/// For the quantized LIF configuration the membrane is kept as an
/// integer-valued `f32` and saturated to the 8-bit hardware range after every
/// arithmetic step, so the dynamics are bit-exact with the integer datapath
/// of the cycle simulator as long as the synaptic weights are integer-valued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct NeuronBank {
    config: NeuronConfig,
    membrane: Vec<f32>,
    /// Synaptic currents; only used by the SRM configuration.
    current: Vec<f32>,
}

impl NeuronBank {
    pub(crate) fn new(config: NeuronConfig, count: usize) -> Self {
        let current = match config {
            NeuronConfig::Srm(_) => vec![0.0; count],
            NeuronConfig::Lif(_) => Vec::new(),
        };
        Self {
            config,
            membrane: vec![0.0; count],
            current,
        }
    }

    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.membrane.len()
    }

    #[allow(dead_code)]
    pub(crate) fn config(&self) -> NeuronConfig {
        self.config
    }

    pub(crate) fn membrane(&self, index: usize) -> f32 {
        self.membrane[index]
    }

    /// Accumulates one synaptic contribution into neuron `index`.
    pub(crate) fn integrate(&mut self, index: usize, weight: f32) {
        match self.config {
            NeuronConfig::Lif(params) => {
                let next = self.membrane[index] + weight;
                self.membrane[index] = clamp_lif(next, params);
            }
            NeuronConfig::Srm(_) => {
                self.current[index] += weight;
            }
        }
    }

    /// Ends the current timestep for every neuron: applies leak/decay, checks
    /// the firing condition and resets fired neurons. The returned vector has
    /// one entry per neuron (`true` = spike emitted).
    pub(crate) fn fire_all(&mut self) -> Vec<bool> {
        match self.config {
            NeuronConfig::Lif(params) => self
                .membrane
                .iter_mut()
                .map(|v| {
                    *v = clamp_lif(*v - f32::from(params.leak), params);
                    if *v >= f32::from(params.threshold) {
                        *v = 0.0;
                        true
                    } else {
                        false
                    }
                })
                .collect(),
            NeuronConfig::Srm(params) => {
                let decay_m = params.membrane_decay();
                let decay_s = params.synapse_decay();
                self.membrane
                    .iter_mut()
                    .zip(self.current.iter_mut())
                    .map(|(v, i)| {
                        *v = *v * decay_m + *i;
                        *i *= decay_s;
                        if *v >= params.threshold {
                            *v -= params.refractory_drop;
                            true
                        } else {
                            false
                        }
                    })
                    .collect()
            }
        }
    }

    /// Resets every neuron to its rest state.
    pub(crate) fn reset(&mut self) {
        self.membrane.iter_mut().for_each(|v| *v = 0.0);
        self.current.iter_mut().for_each(|v| *v = 0.0);
    }
}

fn clamp_lif(value: f32, params: LifParams) -> f32 {
    value.clamp(params.floor() as f32, params.ceiling() as f32)
}

/// Convenience constructors for the two reference configurations used in
/// tests.
#[cfg(test)]
pub(crate) fn lif_config(leak: i16, threshold: i16) -> NeuronConfig {
    NeuronConfig::Lif(LifParams {
        leak,
        threshold,
        ..LifParams::default()
    })
}

#[cfg(test)]
pub(crate) fn srm_config(threshold: f32) -> NeuronConfig {
    NeuronConfig::Srm(SrmParams {
        threshold,
        ..SrmParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lif_bank_matches_scalar_lif_neuron() {
        use crate::neuron::{LifNeuron, Neuron};
        let params = LifParams {
            leak: 2,
            threshold: 10,
            ..LifParams::default()
        };
        let mut bank = NeuronBank::new(NeuronConfig::Lif(params), 1);
        let mut scalar = LifNeuron::new(params);
        let inputs = [5i32, 3, -4, 7, 7, 0, 6, 6, 6];
        for &w in &inputs {
            bank.integrate(0, w as f32);
            scalar.integrate(w);
            let bank_fired = bank.fire_all()[0];
            let scalar_fired = scalar.fire_and_reset();
            assert_eq!(bank_fired, scalar_fired);
            assert_eq!(bank.membrane(0), scalar.state() as f32);
        }
    }

    #[test]
    fn srm_bank_matches_scalar_srm_neuron() {
        use crate::neuron::{Neuron, SrmNeuron, SrmParams};
        let params = SrmParams {
            threshold: 6.0,
            ..SrmParams::default()
        };
        let mut bank = NeuronBank::new(NeuronConfig::Srm(params), 1);
        let mut scalar = SrmNeuron::new(params);
        for &w in &[4i32, 4, 0, 3, 8, 0, 0, 2] {
            bank.integrate(0, w as f32);
            scalar.integrate(w);
            assert_eq!(bank.fire_all()[0], scalar.fire_and_reset());
            assert!((bank.membrane(0) - scalar.membrane()).abs() < 1e-5);
        }
    }

    #[test]
    fn reset_zeroes_all_neurons() {
        let mut bank = NeuronBank::new(lif_config(0, 100), 4);
        for i in 0..4 {
            bank.integrate(i, 50.0);
        }
        bank.reset();
        for i in 0..4 {
            assert_eq!(bank.membrane(i), 0.0);
        }
    }

    #[test]
    fn saturation_is_applied_per_integration() {
        let mut bank = NeuronBank::new(lif_config(0, 127), 1);
        for _ in 0..40 {
            bank.integrate(0, 7.0);
        }
        assert_eq!(bank.membrane(0), 127.0);
    }

    #[test]
    fn srm_config_allocates_current_storage() {
        let bank = NeuronBank::new(srm_config(4.0), 3);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.current.len(), 3);
        let lif = NeuronBank::new(lif_config(1, 4), 3);
        assert!(lif.current.is_empty());
    }
}

//! Spatial spike pooling.

use serde::{Deserialize, Serialize};

use super::{EventLayer, LayerKind};
use crate::tensor::{Frame, Shape};
use crate::ModelError;

/// A stateless spatial OR-pooling (max-pooling on binary spikes) layer.
///
/// The output neuron at `(c, oy, ox)` spikes in a timestep if any input
/// neuron in its `window x window` region spikes in that timestep. This is
/// the standard pooling used in spiking CNNs (spikes are binary, so max and
/// OR coincide) and corresponds to the `pool 2x2` / `pool 4` stages of the
/// paper's Fig. 6 topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolLayer {
    input_shape: Shape,
    window: u16,
}

impl PoolLayer {
    /// Creates a pooling layer with a square window.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the window is zero or
    /// larger than the input's spatial size.
    pub fn new(input_shape: Shape, window: u16) -> Result<Self, ModelError> {
        if window == 0 {
            return Err(ModelError::InvalidParameter {
                name: "window",
                reason: "pooling window must be non-zero".to_owned(),
            });
        }
        if window > input_shape.height || window > input_shape.width {
            return Err(ModelError::InvalidParameter {
                name: "window",
                reason: format!(
                    "pooling window {window} exceeds input spatial size {}x{}",
                    input_shape.height, input_shape.width
                ),
            });
        }
        if input_shape.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "input_shape",
                reason: format!("input shape {input_shape} has a zero dimension"),
            });
        }
        Ok(Self {
            input_shape,
            window,
        })
    }

    /// Pooling window size.
    #[must_use]
    pub fn window(&self) -> u16 {
        self.window
    }
}

impl EventLayer for PoolLayer {
    fn input_shape(&self) -> Shape {
        self.input_shape
    }

    fn output_shape(&self) -> Shape {
        Shape::new(
            self.input_shape.channels,
            self.input_shape.height / self.window,
            self.input_shape.width / self.window,
        )
    }

    fn step(&mut self, input: &Frame) -> Frame {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "pool layer input shape mismatch"
        );
        let out_shape = self.output_shape();
        let mut output = Frame::zeros(out_shape);
        for (c, y, x) in input.spikes() {
            let oy = y / self.window;
            let ox = x / self.window;
            if oy < out_shape.height && ox < out_shape.width {
                output.set(c, oy, ox, true);
            }
        }
        output
    }

    fn reset(&mut self) {}

    fn synaptic_ops(&self, input: &Frame) -> u64 {
        // Pooling performs one (weightless) accumulation per input spike that
        // falls inside the pooled region.
        let out_shape = self.output_shape();
        input
            .spikes()
            .filter(|&(_, y, x)| {
                y / self.window < out_shape.height && x / self.window < out_shape.width
            })
            .count() as u64
    }

    fn num_neurons(&self) -> usize {
        self.output_shape().len()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pooling
    }

    fn describe(&self) -> String {
        format!("pool {}x{}", self.window, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_or_oversized_windows() {
        let shape = Shape::new(2, 8, 8);
        assert!(PoolLayer::new(shape, 0).is_err());
        assert!(PoolLayer::new(shape, 9).is_err());
        assert!(PoolLayer::new(Shape::new(0, 8, 8), 2).is_err());
        assert!(PoolLayer::new(shape, 8).is_ok());
    }

    #[test]
    fn output_shape_divides_spatial_size() {
        let l = PoolLayer::new(Shape::new(32, 16, 16), 2).unwrap();
        assert_eq!(l.output_shape(), Shape::new(32, 8, 8));
        // Non-divisible sizes floor, like the paper's pool stages.
        let l = PoolLayer::new(Shape::new(32, 17, 17), 2).unwrap();
        assert_eq!(l.output_shape(), Shape::new(32, 8, 8));
    }

    #[test]
    fn any_spike_in_window_sets_output() {
        let mut l = PoolLayer::new(Shape::new(1, 4, 4), 2).unwrap();
        let mut input = Frame::zeros(Shape::new(1, 4, 4));
        input.set(0, 1, 1, true);
        input.set(0, 3, 2, true);
        let out = l.step(&input);
        assert!(out.get(0, 0, 0));
        assert!(out.get(0, 1, 1));
        assert_eq!(out.spike_count(), 2);
    }

    #[test]
    fn multiple_spikes_in_window_collapse_to_one() {
        let mut l = PoolLayer::new(Shape::new(1, 4, 4), 2).unwrap();
        let mut input = Frame::zeros(Shape::new(1, 4, 4));
        input.set(0, 0, 0, true);
        input.set(0, 0, 1, true);
        input.set(0, 1, 0, true);
        input.set(0, 1, 1, true);
        let out = l.step(&input);
        assert_eq!(out.spike_count(), 1);
    }

    #[test]
    fn spikes_outside_floored_region_are_dropped() {
        // 5x5 input pooled by 2 gives a 2x2 output; row/column 4 is dropped.
        let mut l = PoolLayer::new(Shape::new(1, 5, 5), 2).unwrap();
        let mut input = Frame::zeros(Shape::new(1, 5, 5));
        input.set(0, 4, 4, true);
        let out = l.step(&input);
        assert_eq!(out.spike_count(), 0);
        assert_eq!(l.synaptic_ops(&input), 0);
    }

    #[test]
    fn synaptic_ops_count_in_region_spikes() {
        let l = PoolLayer::new(Shape::new(1, 4, 4), 2).unwrap();
        let mut input = Frame::zeros(Shape::new(1, 4, 4));
        input.set(0, 0, 0, true);
        input.set(0, 2, 3, true);
        assert_eq!(l.synaptic_ops(&input), 2);
    }

    #[test]
    fn pooling_is_stateless() {
        let mut l = PoolLayer::new(Shape::new(1, 4, 4), 2).unwrap();
        l.reset();
        let input = Frame::zeros(Shape::new(1, 4, 4));
        assert_eq!(l.step(&input).spike_count(), 0);
        assert_eq!(l.kind(), LayerKind::Pooling);
        assert_eq!(l.describe(), "pool 2x2");
        assert_eq!(l.window(), 2);
    }
}

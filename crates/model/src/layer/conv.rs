//! Event-driven 2-D convolution layer.

use serde::{Deserialize, Serialize};

use super::{EventLayer, LayerKind, NeuronBank, NeuronConfig};
use crate::tensor::{Frame, Shape};
use crate::ModelError;

/// An event-driven convolution layer with stateful spiking neurons.
///
/// The layer performs a stride-1 "same" convolution: the output feature map
/// has the same spatial size as the input and `out_channels` channels. Input
/// spikes are scattered into the receptive fields of the output neurons (this
/// is exactly the dataflow of the SNE: an input event updates every output
/// neuron whose receptive field contains it, see Listing 1 of the paper).
///
/// Weights are stored as `f32` in layout `[out_ch][in_ch][kh][kw]`. For the
/// quantized SNE-LIF-4b configuration the weights are integer-valued, which
/// keeps the arithmetic bit-exact with the hardware datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    input_shape: Shape,
    out_channels: u16,
    kernel: u16,
    weights: Vec<f32>,
    neurons: NeuronBank,
}

impl ConvLayer {
    /// Creates a convolution layer with all-zero weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the kernel is even or zero,
    /// or if `out_channels` is zero.
    pub fn new(
        input_shape: Shape,
        out_channels: u16,
        kernel: u16,
        config: NeuronConfig,
    ) -> Result<Self, ModelError> {
        if kernel == 0 || kernel % 2 == 0 {
            return Err(ModelError::InvalidParameter {
                name: "kernel",
                reason: format!("kernel size {kernel} must be odd and non-zero"),
            });
        }
        if out_channels == 0 {
            return Err(ModelError::InvalidParameter {
                name: "out_channels",
                reason: "output channel count must be non-zero".to_owned(),
            });
        }
        if input_shape.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "input_shape",
                reason: format!("input shape {input_shape} has a zero dimension"),
            });
        }
        let output_shape = Shape::new(out_channels, input_shape.height, input_shape.width);
        let weight_count = usize::from(out_channels)
            * usize::from(input_shape.channels)
            * usize::from(kernel)
            * usize::from(kernel);
        Ok(Self {
            input_shape,
            out_channels,
            kernel,
            weights: vec![0.0; weight_count],
            neurons: NeuronBank::new(config, output_shape.len()),
        })
    }

    /// Kernel size (square kernels only).
    #[must_use]
    pub fn kernel(&self) -> u16 {
        self.kernel
    }

    /// Weight at `[out_ch][in_ch][ky][kx]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn weight(&self, out_ch: u16, in_ch: u16, ky: u16, kx: u16) -> f32 {
        self.weights[self.weight_index(out_ch, in_ch, ky, kx)]
    }

    /// Sets the weight at `[out_ch][in_ch][ky][kx]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn set_weight(&mut self, out_ch: u16, in_ch: u16, ky: u16, kx: u16, value: f32) {
        let idx = self.weight_index(out_ch, in_ch, ky, kx);
        self.weights[idx] = value;
    }

    /// All weights in `[out_ch][in_ch][kh][kw]` layout.
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Replaces all weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the length does not match
    /// the layer geometry.
    pub fn set_weights(&mut self, weights: Vec<f32>) -> Result<(), ModelError> {
        if weights.len() != self.weights.len() {
            return Err(ModelError::InvalidParameter {
                name: "weights",
                reason: format!(
                    "expected {} weights, got {}",
                    self.weights.len(),
                    weights.len()
                ),
            });
        }
        self.weights = weights;
        Ok(())
    }

    /// Number of weights stored by the layer.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    /// Membrane potential of the output neuron at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn membrane(&self, c: u16, y: u16, x: u16) -> f32 {
        self.neurons.membrane(self.output_shape().index(c, y, x))
    }

    fn weight_index(&self, out_ch: u16, in_ch: u16, ky: u16, kx: u16) -> usize {
        debug_assert!(out_ch < self.out_channels);
        debug_assert!(in_ch < self.input_shape.channels);
        debug_assert!(ky < self.kernel && kx < self.kernel);
        ((usize::from(out_ch) * usize::from(self.input_shape.channels) + usize::from(in_ch))
            * usize::from(self.kernel)
            + usize::from(ky))
            * usize::from(self.kernel)
            + usize::from(kx)
    }

    /// Number of output-neuron updates caused by one input spike at `(y, x)`:
    /// the receptive-field positions that stay inside the map, times the
    /// number of output channels.
    #[must_use]
    pub fn updates_per_spike(&self, y: u16, x: u16) -> u64 {
        let half = i32::from(self.kernel / 2);
        let mut positions = 0u64;
        for dy in -half..=half {
            for dx in -half..=half {
                let oy = i32::from(y) + dy;
                let ox = i32::from(x) + dx;
                if oy >= 0
                    && ox >= 0
                    && oy < i32::from(self.input_shape.height)
                    && ox < i32::from(self.input_shape.width)
                {
                    positions += 1;
                }
            }
        }
        positions * u64::from(self.out_channels)
    }
}

impl EventLayer for ConvLayer {
    fn input_shape(&self) -> Shape {
        self.input_shape
    }

    fn output_shape(&self) -> Shape {
        Shape::new(
            self.out_channels,
            self.input_shape.height,
            self.input_shape.width,
        )
    }

    fn step(&mut self, input: &Frame) -> Frame {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "conv layer input shape mismatch"
        );
        let out_shape = self.output_shape();
        let half = i32::from(self.kernel / 2);

        // Scatter every input spike into the receptive field of the output
        // neurons (same dataflow as the SNE cluster update).
        for (in_ch, y, x) in input.spikes() {
            for out_ch in 0..self.out_channels {
                for ky in 0..self.kernel {
                    for kx in 0..self.kernel {
                        // Output neuron whose kernel tap (ky, kx) lands on (y, x):
                        // oy = y + half - ky, ox = x + half - kx.
                        let oy = i32::from(y) + half - i32::from(ky);
                        let ox = i32::from(x) + half - i32::from(kx);
                        if oy < 0
                            || ox < 0
                            || oy >= i32::from(out_shape.height)
                            || ox >= i32::from(out_shape.width)
                        {
                            continue;
                        }
                        let w = self.weight(out_ch, in_ch, ky, kx);
                        let idx = out_shape.index(out_ch, oy as u16, ox as u16);
                        self.neurons.integrate(idx, w);
                    }
                }
            }
        }

        let fired = self.neurons.fire_all();
        let mut output = Frame::zeros(out_shape);
        for (i, &f) in fired.iter().enumerate() {
            if f {
                let x = (i % usize::from(out_shape.width)) as u16;
                let rest = i / usize::from(out_shape.width);
                let y = (rest % usize::from(out_shape.height)) as u16;
                let c = (rest / usize::from(out_shape.height)) as u16;
                output.set(c, y, x, true);
            }
        }
        output
    }

    fn reset(&mut self) {
        self.neurons.reset();
    }

    fn synaptic_ops(&self, input: &Frame) -> u64 {
        input
            .spikes()
            .map(|(_, y, x)| self.updates_per_spike(y, x))
            .sum()
    }

    fn num_neurons(&self) -> usize {
        self.output_shape().len()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolution
    }

    fn describe(&self) -> String {
        format!(
            "conv {}x{},{}x{}",
            self.input_shape.channels, self.out_channels, self.kernel, self.kernel
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::LifParams;

    fn lif(leak: i16, threshold: i16) -> NeuronConfig {
        NeuronConfig::Lif(LifParams {
            leak,
            threshold,
            ..LifParams::default()
        })
    }

    fn layer(threshold: i16) -> ConvLayer {
        let mut l = ConvLayer::new(Shape::new(1, 5, 5), 1, 3, lif(0, threshold)).unwrap();
        // Identity-ish kernel: centre tap has weight 2, the rest 1.
        for ky in 0..3 {
            for kx in 0..3 {
                l.set_weight(0, 0, ky, kx, 1.0);
            }
        }
        l.set_weight(0, 0, 1, 1, 2.0);
        l
    }

    #[test]
    fn rejects_even_or_zero_kernels_and_zero_channels() {
        let shape = Shape::new(1, 4, 4);
        assert!(ConvLayer::new(shape, 1, 2, NeuronConfig::default_lif()).is_err());
        assert!(ConvLayer::new(shape, 1, 0, NeuronConfig::default_lif()).is_err());
        assert!(ConvLayer::new(shape, 0, 3, NeuronConfig::default_lif()).is_err());
        assert!(ConvLayer::new(Shape::new(0, 4, 4), 1, 3, NeuronConfig::default_lif()).is_err());
    }

    #[test]
    fn output_shape_preserves_spatial_size() {
        let l = ConvLayer::new(Shape::new(2, 8, 6), 32, 3, NeuronConfig::default_lif()).unwrap();
        assert_eq!(l.output_shape(), Shape::new(32, 8, 6));
        assert_eq!(l.num_neurons(), 32 * 8 * 6);
        assert_eq!(l.weight_count(), 32 * 2 * 3 * 3);
    }

    #[test]
    fn single_spike_updates_its_receptive_field() {
        let mut l = layer(100);
        let mut input = Frame::zeros(Shape::new(1, 5, 5));
        input.set(0, 2, 2, true);
        let out = l.step(&input);
        assert_eq!(out.spike_count(), 0, "threshold 100 must not be reached");
        // The centre output neuron got the centre tap (weight 2); its
        // neighbours got weight 1; neurons further than the kernel got 0.
        assert_eq!(l.membrane(0, 2, 2), 2.0);
        assert_eq!(l.membrane(0, 1, 1), 1.0);
        assert_eq!(l.membrane(0, 0, 0), 0.0);
    }

    #[test]
    fn centre_spike_makes_centre_neuron_fire_first() {
        let mut l = layer(4);
        let mut input = Frame::zeros(Shape::new(1, 5, 5));
        input.set(0, 2, 2, true);
        // After two identical spikes the centre neuron reaches 4 (2+2) and fires.
        let _ = l.step(&input);
        let out = l.step(&input);
        assert!(out.get(0, 2, 2));
        assert_eq!(out.spike_count(), 1);
        // The fired neuron resets to zero.
        assert_eq!(l.membrane(0, 2, 2), 0.0);
    }

    #[test]
    fn border_spikes_update_fewer_neurons() {
        let l = layer(100);
        assert_eq!(l.updates_per_spike(2, 2), 9);
        assert_eq!(l.updates_per_spike(0, 0), 4);
        assert_eq!(l.updates_per_spike(0, 2), 6);
        let mut corner = Frame::zeros(Shape::new(1, 5, 5));
        corner.set(0, 0, 0, true);
        assert_eq!(l.synaptic_ops(&corner), 4);
    }

    #[test]
    fn synaptic_ops_scale_with_out_channels() {
        let l = ConvLayer::new(Shape::new(2, 5, 5), 8, 3, NeuronConfig::default_lif()).unwrap();
        let mut input = Frame::zeros(Shape::new(2, 5, 5));
        input.set(0, 2, 2, true);
        input.set(1, 2, 2, true);
        assert_eq!(l.synaptic_ops(&input), 2 * 9 * 8);
    }

    #[test]
    fn reset_clears_membranes() {
        let mut l = layer(100);
        let mut input = Frame::zeros(Shape::new(1, 5, 5));
        input.set(0, 2, 2, true);
        let _ = l.step(&input);
        l.reset();
        assert_eq!(l.membrane(0, 2, 2), 0.0);
    }

    #[test]
    fn leak_reduces_membrane_every_step() {
        let mut l = ConvLayer::new(Shape::new(1, 3, 3), 1, 3, lif(1, 100)).unwrap();
        l.set_weight(0, 0, 1, 1, 5.0);
        let mut input = Frame::zeros(Shape::new(1, 3, 3));
        input.set(0, 1, 1, true);
        let _ = l.step(&input);
        assert_eq!(l.membrane(0, 1, 1), 4.0); // 5 - 1 leak
        let empty = Frame::zeros(Shape::new(1, 3, 3));
        let _ = l.step(&empty);
        assert_eq!(l.membrane(0, 1, 1), 3.0);
    }

    #[test]
    fn set_weights_validates_length() {
        let mut l = layer(10);
        assert!(l.set_weights(vec![0.0; 3]).is_err());
        assert!(l.set_weights(vec![0.5; 9]).is_ok());
    }

    #[test]
    fn describe_mentions_channels_and_kernel() {
        let l = ConvLayer::new(Shape::new(2, 8, 8), 32, 3, NeuronConfig::default_lif()).unwrap();
        assert_eq!(l.describe(), "conv 2x32,3x3");
        assert_eq!(l.kind(), LayerKind::Convolution);
    }
}

//! Event-driven network layers.
//!
//! Layers operate on one binary spike [`Frame`] per timestep and keep their
//! neuron state across timesteps (paper §III-C: the state of each neuron is
//! held across the whole inference and reset at the start of a new one).
//!
//! [`Frame`]: crate::tensor::Frame

mod bank;
mod conv;
mod dense;
mod pool;
mod traits;

pub(crate) use bank::NeuronBank;

pub use conv::ConvLayer;
pub use dense::DenseLayer;
pub use pool::PoolLayer;
pub use traits::{EventLayer, LayerKind, NeuronConfig};

//! Common layer behaviour.

use serde::{Deserialize, Serialize};

use crate::neuron::{LifParams, SrmParams};
use crate::tensor::{Frame, Shape};

/// Which neuron dynamics a stateful layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeuronConfig {
    /// Quantized linear-leak LIF neurons (the SNE hardware neuron).
    Lif(LifParams),
    /// SRM baseline neurons (the SLAYER reference).
    Srm(SrmParams),
}

impl NeuronConfig {
    /// Default quantized LIF configuration used by the hardware golden model.
    #[must_use]
    pub fn default_lif() -> Self {
        NeuronConfig::Lif(LifParams::default())
    }

    /// Default SRM baseline configuration.
    #[must_use]
    pub fn default_srm() -> Self {
        NeuronConfig::Srm(SrmParams::default())
    }

    /// Returns `true` for the quantized LIF variant.
    #[must_use]
    pub fn is_lif(&self) -> bool {
        matches!(self, NeuronConfig::Lif(_))
    }
}

/// Coarse classification of a layer, used for reporting and mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution with stateful neurons.
    Convolution,
    /// Spatial max (OR) pooling, stateless.
    Pooling,
    /// Fully-connected layer with stateful neurons.
    Dense,
}

/// A stateful, event-driven network layer processed one timestep at a time.
pub trait EventLayer {
    /// Shape of the input frames this layer accepts.
    fn input_shape(&self) -> Shape;

    /// Shape of the output frames this layer produces.
    fn output_shape(&self) -> Shape;

    /// Processes one timestep: integrates the input spikes, advances the
    /// neuron dynamics and returns the output spikes of this timestep.
    fn step(&mut self, input: &Frame) -> Frame;

    /// Resets all neuron state (the `RST_OP` of the SNE).
    fn reset(&mut self);

    /// Number of synaptic operations (membrane accumulations) that processing
    /// `input` costs. This is the SOP count of the paper's performance metric.
    fn synaptic_ops(&self, input: &Frame) -> u64;

    /// Number of (output) neurons implemented by the layer.
    fn num_neurons(&self) -> usize;

    /// Kind of the layer.
    fn kind(&self) -> LayerKind;

    /// Human-readable description (e.g. `conv 2x32 3x3`).
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_config_discriminates() {
        assert!(NeuronConfig::default_lif().is_lif());
        assert!(!NeuronConfig::default_srm().is_lif());
    }
}

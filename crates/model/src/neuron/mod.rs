//! Spiking neuron models.
//!
//! Two neuron models are provided, matching the comparison of paper §IV-B:
//!
//! * [`LifNeuron`] — the quantized linear-leak leaky-integrate-and-fire
//!   neuron the SNE hardware implements (`SNE-LIF-4b`): 4-bit synaptic
//!   weights, 8-bit saturating membrane state, programmable leak and
//!   threshold, membrane reset to zero on firing.
//! * [`SrmNeuron`] — a spike-response-model baseline with an exponentially
//!   decaying membrane kernel, standing in for the default SLAYER SRM neuron
//!   the paper trains as its reference.

mod lif;
mod srm;

pub use lif::{LifNeuron, LifParams};
pub use srm::{SrmNeuron, SrmParams};

/// Common behaviour of stateful spiking neurons processed timestep by
/// timestep.
pub trait Neuron {
    /// Accumulates one synaptic contribution into the membrane potential.
    fn integrate(&mut self, weight: i32);

    /// Advances the neuron to the end of the current timestep: applies the
    /// leak/decay, checks the firing condition and resets the membrane if the
    /// neuron fired. Returns `true` if an output spike was emitted.
    fn fire_and_reset(&mut self) -> bool;

    /// Resets the membrane potential (the `RST_OP` of the SNE).
    fn reset(&mut self);

    /// Current membrane potential, in the neuron's native scale.
    fn membrane(&self) -> f32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        let mut neurons: Vec<Box<dyn Neuron>> = vec![
            Box::new(LifNeuron::new(LifParams::default())),
            Box::new(SrmNeuron::new(SrmParams::default())),
        ];
        for n in &mut neurons {
            n.integrate(100);
            let _ = n.fire_and_reset();
            n.reset();
            assert_eq!(n.membrane(), 0.0);
        }
    }
}

//! Quantized linear-leak LIF neuron (the SNE hardware neuron).

use serde::{Deserialize, Serialize};

use super::Neuron;
use crate::quant::{self, STATE_MAX, STATE_MIN};

/// Parameters of the quantized SNE LIF neuron.
///
/// The paper's membrane update is `V[t+1] = -L + Σ_j W_ij S_j[t]` with the
/// firing rule `S[t] = Θ(V[t] - V_th)` (§III-B). The hardware stores the
/// membrane in 8 bits and the weights in 4 bits; both leak and threshold are
/// programmable per layer through the register interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LifParams {
    /// Linear leak subtracted at every timestep (`L` in the paper).
    pub leak: i16,
    /// Firing threshold (`V_th` in the paper).
    pub threshold: i16,
    /// If `true`, the membrane saturates at the 8-bit limits after every
    /// arithmetic step, matching the hardware datapath. If `false`, the
    /// membrane is a free 32-bit integer (useful for headroom experiments).
    pub saturate: bool,
    /// If `true`, the membrane is clamped at zero from below instead of the
    /// negative 8-bit limit (some SNN formulations forbid negative
    /// potentials; the SNE allows them, so the default is `false`).
    pub non_negative: bool,
}

impl Default for LifParams {
    fn default() -> Self {
        Self {
            leak: 1,
            threshold: 16,
            saturate: true,
            non_negative: false,
        }
    }
}

impl LifParams {
    /// Lower bound of the membrane under the current clamping rules.
    #[must_use]
    pub fn floor(&self) -> i32 {
        if self.non_negative {
            0
        } else if self.saturate {
            i32::from(STATE_MIN)
        } else {
            i32::MIN / 2
        }
    }

    /// Upper bound of the membrane under the current clamping rules.
    #[must_use]
    pub fn ceiling(&self) -> i32 {
        if self.saturate {
            i32::from(STATE_MAX)
        } else {
            i32::MAX / 2
        }
    }
}

/// The quantized linear-leak LIF neuron of the SNE (paper §III-B).
///
/// # Example
///
/// ```
/// use sne_model::neuron::{LifNeuron, LifParams, Neuron};
///
/// let mut n = LifNeuron::new(LifParams { leak: 0, threshold: 10, ..LifParams::default() });
/// n.integrate(6);
/// assert!(!n.fire_and_reset());
/// n.integrate(6);
/// assert!(n.fire_and_reset());
/// assert_eq!(n.membrane(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifNeuron {
    params: LifParams,
    state: i32,
}

impl LifNeuron {
    /// Creates a neuron with zero membrane potential.
    #[must_use]
    pub fn new(params: LifParams) -> Self {
        Self { params, state: 0 }
    }

    /// The neuron's parameters.
    #[must_use]
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Raw integer membrane potential.
    #[must_use]
    pub fn state(&self) -> i32 {
        self.state
    }

    /// Applies the linear leak for `elapsed` timesteps in one step.
    ///
    /// This models the time-of-last-update (TLU) mechanism of the SNE
    /// Cluster (paper §III-D.4): when a neuron is not touched for several
    /// timesteps, the accumulated leak is applied lazily on the next access.
    /// Because the leak only drives the membrane toward the floor, applying
    /// it lazily is equivalent to applying it every timestep.
    pub fn leak_for(&mut self, elapsed: u32) {
        if elapsed == 0 || self.params.leak == 0 {
            return;
        }
        let total = i64::from(self.params.leak) * i64::from(elapsed);
        let next = i64::from(self.state) - total;
        self.state = self.clamp(next);
    }

    fn clamp(&self, value: i64) -> i32 {
        quant::clamp_i64(
            value,
            i64::from(self.params.floor()),
            i64::from(self.params.ceiling()),
        )
    }

    /// Returns `true` if the membrane is at or above the firing threshold.
    #[must_use]
    pub fn above_threshold(&self) -> bool {
        self.state >= i32::from(self.params.threshold)
    }
}

impl Neuron for LifNeuron {
    fn integrate(&mut self, weight: i32) {
        let next = i64::from(self.state) + i64::from(weight);
        self.state = self.clamp(next);
    }

    fn fire_and_reset(&mut self) -> bool {
        // Leak for exactly one timestep, then check the threshold.
        self.leak_for(1);
        if self.above_threshold() {
            self.state = 0;
            true
        } else {
            false
        }
    }

    fn reset(&mut self) {
        self.state = 0;
    }

    fn membrane(&self) -> f32 {
        self.state as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neuron(leak: i16, threshold: i16) -> LifNeuron {
        LifNeuron::new(LifParams {
            leak,
            threshold,
            ..LifParams::default()
        })
    }

    #[test]
    fn integrates_and_fires_at_threshold() {
        let mut n = neuron(0, 10);
        n.integrate(5);
        assert!(!n.fire_and_reset());
        n.integrate(5);
        assert!(n.fire_and_reset());
        assert_eq!(n.state(), 0);
    }

    #[test]
    fn leak_pulls_membrane_down_every_timestep() {
        let mut n = neuron(2, 100);
        n.integrate(10);
        assert!(!n.fire_and_reset()); // 10 - 2 = 8
        assert_eq!(n.state(), 8);
        assert!(!n.fire_and_reset()); // 8 - 2 = 6
        assert_eq!(n.state(), 6);
    }

    #[test]
    fn membrane_saturates_at_8_bit_limits() {
        let mut n = neuron(0, 127);
        for _ in 0..100 {
            n.integrate(7);
        }
        assert_eq!(n.state(), i32::from(STATE_MAX));
        let mut m = neuron(0, 127);
        for _ in 0..100 {
            m.integrate(-8);
        }
        assert_eq!(m.state(), i32::from(STATE_MIN));
    }

    #[test]
    fn lazy_leak_equals_per_step_leak() {
        // Applying leak lazily over N idle timesteps must match applying it
        // step by step, including at the saturation floor.
        for &initial in &[100i32, 10, -100, -120] {
            for elapsed in 0u32..10 {
                let params = LifParams {
                    leak: 3,
                    threshold: 127,
                    ..LifParams::default()
                };
                let mut lazy = LifNeuron::new(params);
                lazy.state = initial;
                lazy.leak_for(elapsed);

                let mut steps = LifNeuron::new(params);
                steps.state = initial;
                for _ in 0..elapsed {
                    steps.leak_for(1);
                }
                assert_eq!(
                    lazy.state(),
                    steps.state(),
                    "initial {initial}, elapsed {elapsed}"
                );
            }
        }
    }

    #[test]
    fn non_negative_mode_clamps_at_zero() {
        let mut n = LifNeuron::new(LifParams {
            leak: 5,
            threshold: 50,
            non_negative: true,
            ..LifParams::default()
        });
        n.integrate(3);
        let _ = n.fire_and_reset();
        assert_eq!(n.state(), 0);
        n.integrate(-10);
        assert_eq!(n.state(), 0);
    }

    #[test]
    fn unsaturated_mode_exceeds_8_bits() {
        let mut n = LifNeuron::new(LifParams {
            leak: 0,
            threshold: 1000,
            saturate: false,
            ..LifParams::default()
        });
        for _ in 0..100 {
            n.integrate(7);
        }
        assert_eq!(n.state(), 700);
    }

    #[test]
    fn reset_clears_membrane() {
        let mut n = neuron(0, 100);
        n.integrate(50);
        n.reset();
        assert_eq!(n.state(), 0);
        assert_eq!(n.membrane(), 0.0);
    }

    #[test]
    fn firing_resets_membrane_to_zero() {
        let mut n = neuron(0, 5);
        n.integrate(100);
        assert!(n.fire_and_reset());
        assert_eq!(n.state(), 0);
        // Without new input the neuron must not fire again.
        assert!(!n.fire_and_reset());
    }

    #[test]
    fn zero_elapsed_leak_is_noop() {
        let mut n = neuron(3, 100);
        n.integrate(10);
        n.leak_for(0);
        assert_eq!(n.state(), 10);
    }
}

//! Spike-response-model (SRM) baseline neuron.
//!
//! The paper trains its baseline networks with the default SLAYER spike
//! response model (Gerstner's SRM), whose membrane is the convolution of the
//! input spike train with an exponentially decaying kernel. This
//! implementation uses the standard first-order approximation: the membrane
//! decays by a multiplicative factor `exp(-1/τ)` per timestep instead of the
//! SNE's linear (subtractive) leak, and the synaptic current is low-pass
//! filtered with its own time constant. It is a floating-point model; it is
//! used only as the accuracy baseline, never on the accelerator.

use serde::{Deserialize, Serialize};

use super::Neuron;

/// Parameters of the SRM baseline neuron.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrmParams {
    /// Membrane time constant in timesteps (`τ_mem`).
    pub tau_membrane: f32,
    /// Synaptic current time constant in timesteps (`τ_syn`).
    pub tau_synapse: f32,
    /// Firing threshold.
    pub threshold: f32,
    /// Refractory membrane drop applied after a spike (subtractive reset).
    pub refractory_drop: f32,
}

impl Default for SrmParams {
    fn default() -> Self {
        Self {
            tau_membrane: 10.0,
            tau_synapse: 5.0,
            threshold: 16.0,
            refractory_drop: 16.0,
        }
    }
}

impl SrmParams {
    /// Per-timestep membrane decay factor `exp(-1/τ_mem)`.
    #[must_use]
    pub fn membrane_decay(&self) -> f32 {
        (-1.0 / self.tau_membrane.max(f32::EPSILON)).exp()
    }

    /// Per-timestep synaptic decay factor `exp(-1/τ_syn)`.
    #[must_use]
    pub fn synapse_decay(&self) -> f32 {
        (-1.0 / self.tau_synapse.max(f32::EPSILON)).exp()
    }
}

/// An SRM neuron with exponential membrane and synaptic kernels.
///
/// # Example
///
/// ```
/// use sne_model::neuron::{Neuron, SrmNeuron, SrmParams};
///
/// let mut n = SrmNeuron::new(SrmParams { threshold: 5.0, ..SrmParams::default() });
/// n.integrate(10);
/// assert!(n.fire_and_reset());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrmNeuron {
    params: SrmParams,
    membrane: f32,
    synaptic_current: f32,
}

impl SrmNeuron {
    /// Creates a neuron at rest.
    #[must_use]
    pub fn new(params: SrmParams) -> Self {
        Self {
            params,
            membrane: 0.0,
            synaptic_current: 0.0,
        }
    }

    /// The neuron's parameters.
    #[must_use]
    pub fn params(&self) -> SrmParams {
        self.params
    }

    /// Current synaptic current (the low-pass-filtered input).
    #[must_use]
    pub fn synaptic_current(&self) -> f32 {
        self.synaptic_current
    }
}

impl Neuron for SrmNeuron {
    fn integrate(&mut self, weight: i32) {
        self.synaptic_current += weight as f32;
    }

    fn fire_and_reset(&mut self) -> bool {
        // Exponential kernels: current feeds the membrane, both decay.
        self.membrane = self.membrane * self.params.membrane_decay() + self.synaptic_current;
        self.synaptic_current *= self.params.synapse_decay();
        if self.membrane >= self.params.threshold {
            self.membrane -= self.params.refractory_drop;
            true
        } else {
            false
        }
    }

    fn reset(&mut self) {
        self.membrane = 0.0;
        self.synaptic_current = 0.0;
    }

    fn membrane(&self) -> f32 {
        self.membrane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membrane_decays_exponentially() {
        let params = SrmParams {
            threshold: 1000.0,
            ..SrmParams::default()
        };
        let mut n = SrmNeuron::new(params);
        n.integrate(100);
        // Let the synaptic current fade, then the membrane must decay
        // monotonically toward rest.
        for _ in 0..30 {
            let _ = n.fire_and_reset();
        }
        let v1 = n.membrane();
        let _ = n.fire_and_reset();
        let v2 = n.membrane();
        assert!(v1 > 0.0);
        assert!(v2 < v1);
        for _ in 0..100 {
            let _ = n.fire_and_reset();
        }
        assert!(n.membrane() < 1.0);
    }

    #[test]
    fn fires_above_threshold_with_subtractive_reset() {
        let params = SrmParams {
            threshold: 5.0,
            refractory_drop: 5.0,
            ..SrmParams::default()
        };
        let mut n = SrmNeuron::new(params);
        n.integrate(20);
        assert!(n.fire_and_reset());
        // Subtractive reset keeps the remainder above zero.
        assert!(n.membrane() > 0.0);
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut n = SrmNeuron::new(SrmParams::default());
        n.integrate(50);
        let _ = n.fire_and_reset();
        n.reset();
        assert_eq!(n.membrane(), 0.0);
        assert_eq!(n.synaptic_current(), 0.0);
    }

    #[test]
    fn decay_factors_are_in_unit_interval() {
        let p = SrmParams::default();
        assert!(p.membrane_decay() > 0.0 && p.membrane_decay() < 1.0);
        assert!(p.synapse_decay() > 0.0 && p.synapse_decay() < 1.0);
        // Shorter time constant decays faster.
        assert!(p.synapse_decay() < p.membrane_decay());
    }

    #[test]
    fn no_input_means_no_spike() {
        let mut n = SrmNeuron::new(SrmParams::default());
        for _ in 0..100 {
            assert!(!n.fire_and_reset());
        }
    }
}

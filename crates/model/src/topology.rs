//! The paper's network topology (Fig. 6) and a topology description type.
//!
//! Fig. 6 of the paper uses the stack
//! `conv 2x32,3x3 → pool 2x2 → conv 32x32,3x3 → pool 2x2 → pool 4 → fc …x512
//! → fc 512x11`. The spatial sizes follow from the input resolution; the
//! builder here computes them automatically so the same topology can be
//! instantiated for the 34x34 NMNIST-like input, the DVS-Gesture-like input
//! or any reduced resolution used in tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{ConvLayer, DenseLayer, NeuronConfig, PoolLayer};
use crate::network::Network;
use crate::tensor::Shape;
use crate::ModelError;

/// One stage of a topology description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StageSpec {
    /// Convolution to `out_channels` with a square `kernel`.
    Conv {
        /// Number of output channels.
        out_channels: u16,
        /// Square kernel size (odd).
        kernel: u16,
    },
    /// Spatial pooling with a square `window`.
    Pool {
        /// Pooling window.
        window: u16,
    },
    /// Fully-connected stage with `outputs` neurons.
    Dense {
        /// Number of output neurons.
        outputs: u16,
    },
}

/// A declarative topology: an input shape plus a list of stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Shape of the input feature map.
    pub input: Shape,
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl Topology {
    /// The topology of the paper's Fig. 6 for an arbitrary square input
    /// resolution: two 3×3 convolutions with 32 channels, interleaved 2×2
    /// pooling, a final 4×4 pooling, a 512-neuron hidden FC layer and a
    /// classifier FC layer.
    #[must_use]
    pub fn paper_fig6(input: Shape, classes: u16) -> Self {
        Self {
            input,
            stages: vec![
                StageSpec::Conv {
                    out_channels: 32,
                    kernel: 3,
                },
                StageSpec::Pool { window: 2 },
                StageSpec::Conv {
                    out_channels: 32,
                    kernel: 3,
                },
                StageSpec::Pool { window: 2 },
                StageSpec::Pool { window: 4 },
                StageSpec::Dense { outputs: 512 },
                StageSpec::Dense { outputs: classes },
            ],
        }
    }

    /// A reduced topology for fast tests: one convolution, one pooling and a
    /// classifier layer.
    #[must_use]
    pub fn tiny(input: Shape, hidden_channels: u16, classes: u16) -> Self {
        Self {
            input,
            stages: vec![
                StageSpec::Conv {
                    out_channels: hidden_channels,
                    kernel: 3,
                },
                StageSpec::Pool { window: 2 },
                StageSpec::Dense { outputs: classes },
            ],
        }
    }

    /// Computes the shape after every stage (the last entry is the output
    /// shape).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if a stage cannot be applied
    /// to the shape it receives (e.g. pooling a 1×1 map by 2).
    pub fn shapes(&self) -> Result<Vec<Shape>, ModelError> {
        let mut shapes = vec![self.input];
        let mut current = self.input;
        for stage in &self.stages {
            current = match *stage {
                StageSpec::Conv { out_channels, .. } => {
                    Shape::new(out_channels, current.height, current.width)
                }
                StageSpec::Pool { window } => {
                    if window == 0 || window > current.height || window > current.width {
                        return Err(ModelError::InvalidParameter {
                            name: "window",
                            reason: format!(
                                "cannot pool a {}x{} map by {window}",
                                current.height, current.width
                            ),
                        });
                    }
                    Shape::new(
                        current.channels,
                        current.height / window,
                        current.width / window,
                    )
                }
                StageSpec::Dense { outputs } => Shape::new(outputs, 1, 1),
            };
            if current.is_empty() {
                return Err(ModelError::InvalidParameter {
                    name: "stage",
                    reason: format!("stage {stage:?} produces an empty shape"),
                });
            }
            shapes.push(current);
        }
        Ok(shapes)
    }

    /// Number of classes (outputs of the final stage).
    #[must_use]
    pub fn classes(&self) -> u16 {
        match self.stages.last() {
            Some(StageSpec::Dense { outputs }) => *outputs,
            Some(StageSpec::Conv { out_channels, .. }) => *out_channels,
            _ => self.input.channels,
        }
    }

    /// Builds a spiking [`Network`] with all-zero weights and one
    /// [`NeuronConfig`] shared by every stateful stage.
    ///
    /// # Errors
    ///
    /// Propagates layer construction errors (invalid kernels, empty shapes…).
    pub fn build(&self, config: NeuronConfig) -> Result<Network, ModelError> {
        let shapes = self.shapes()?;
        let mut network = Network::new(self.input);
        for (stage, input_shape) in self.stages.iter().zip(shapes.iter()) {
            match *stage {
                StageSpec::Conv {
                    out_channels,
                    kernel,
                } => {
                    network.push(ConvLayer::new(*input_shape, out_channels, kernel, config)?)?;
                }
                StageSpec::Pool { window } => {
                    network.push(PoolLayer::new(*input_shape, window)?)?;
                }
                StageSpec::Dense { outputs } => {
                    network.push(DenseLayer::new(*input_shape, outputs, config)?)?;
                }
            }
        }
        Ok(network)
    }

    /// Builds a spiking network with random integer weights on the 4-bit
    /// grid, useful for exercising the simulator without training.
    ///
    /// # Errors
    ///
    /// Propagates layer construction errors.
    pub fn build_random<R: Rng>(
        &self,
        config: NeuronConfig,
        rng: &mut R,
    ) -> Result<Network, ModelError> {
        let shapes = self.shapes()?;
        let mut network = Network::new(self.input);
        for (stage, input_shape) in self.stages.iter().zip(shapes.iter()) {
            match *stage {
                StageSpec::Conv {
                    out_channels,
                    kernel,
                } => {
                    let mut layer = ConvLayer::new(*input_shape, out_channels, kernel, config)?;
                    let weights = (0..layer.weight_count())
                        .map(|_| f32::from(rng.gen_range(-2i8..=4)))
                        .collect();
                    layer.set_weights(weights)?;
                    network.push(layer)?;
                }
                StageSpec::Pool { window } => {
                    network.push(PoolLayer::new(*input_shape, window)?)?;
                }
                StageSpec::Dense { outputs } => {
                    let mut layer = DenseLayer::new(*input_shape, outputs, config)?;
                    let count = layer.inputs() * usize::from(outputs);
                    let weights = (0..count)
                        .map(|_| f32::from(rng.gen_range(-2i8..=4)))
                        .collect();
                    layer.set_weights(weights)?;
                    network.push(layer)?;
                }
            }
        }
        Ok(network)
    }

    /// Total number of synaptic weights of the topology.
    ///
    /// # Errors
    ///
    /// Propagates shape computation errors.
    pub fn weight_count(&self) -> Result<usize, ModelError> {
        let shapes = self.shapes()?;
        let mut total = 0usize;
        for (stage, input_shape) in self.stages.iter().zip(shapes.iter()) {
            total += match *stage {
                StageSpec::Conv {
                    out_channels,
                    kernel,
                } => {
                    usize::from(out_channels)
                        * usize::from(input_shape.channels)
                        * usize::from(kernel)
                        * usize::from(kernel)
                }
                StageSpec::Pool { .. } => 0,
                StageSpec::Dense { outputs } => usize::from(outputs) * input_shape.len(),
            };
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig6_topology_has_seven_stages() {
        let t = Topology::paper_fig6(Shape::new(2, 32, 32), 11);
        assert_eq!(t.stages.len(), 7);
        assert_eq!(t.classes(), 11);
    }

    #[test]
    fn fig6_shapes_chain_for_a_32x32_input() {
        let t = Topology::paper_fig6(Shape::new(2, 32, 32), 11);
        let shapes = t.shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(32, 32, 32)); // conv
        assert_eq!(shapes[2], Shape::new(32, 16, 16)); // pool 2
        assert_eq!(shapes[3], Shape::new(32, 16, 16)); // conv
        assert_eq!(shapes[4], Shape::new(32, 8, 8)); // pool 2
        assert_eq!(shapes[5], Shape::new(32, 2, 2)); // pool 4
        assert_eq!(shapes[6], Shape::new(512, 1, 1)); // fc
        assert_eq!(shapes[7], Shape::new(11, 1, 1)); // fc classifier
    }

    #[test]
    fn fig6_reproduces_paper_fc_size_for_144_input() {
        // With a 144x144 input the flattened FC input is 9x9x32, the exact
        // "fc 9x9x32 x 512" of Fig. 6.
        let t = Topology::paper_fig6(Shape::new(2, 144, 144), 11);
        let shapes = t.shapes().unwrap();
        assert_eq!(shapes[5], Shape::new(32, 9, 9));
    }

    #[test]
    fn too_small_inputs_are_rejected() {
        let t = Topology::paper_fig6(Shape::new(2, 8, 8), 11);
        assert!(t.shapes().is_err());
    }

    #[test]
    fn build_produces_matching_network() {
        let t = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
        let network = t.build(NeuronConfig::default_lif()).unwrap();
        assert_eq!(network.len(), 3);
        assert_eq!(network.output_shape(), Shape::new(3, 1, 1));
    }

    #[test]
    fn build_random_produces_4bit_weights() {
        let t = Topology::tiny(Shape::new(1, 8, 8), 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let network = t
            .build_random(NeuronConfig::default_lif(), &mut rng)
            .unwrap();
        assert_eq!(network.len(), 3);
    }

    #[test]
    fn weight_count_matches_fig6_expectation() {
        let t = Topology::paper_fig6(Shape::new(2, 32, 32), 11);
        let count = t.weight_count().unwrap();
        // conv1: 32*2*9 = 576, conv2: 32*32*9 = 9216, fc1: 128*512 = 65536, fc2: 512*11 = 5632
        assert_eq!(count, 576 + 9216 + 65_536 + 5632);
    }

    #[test]
    fn classes_fallback_without_dense_head() {
        let t = Topology {
            input: Shape::new(2, 8, 8),
            stages: vec![StageSpec::Conv {
                out_channels: 7,
                kernel: 3,
            }],
        };
        assert_eq!(t.classes(), 7);
    }
}

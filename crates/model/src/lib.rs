//! Functional (software) reference model of the SNE's event-based
//! convolutional neural networks.
//!
//! The crate provides the golden model the cycle-level simulator is checked
//! against, plus everything needed to reproduce the paper's accuracy
//! benchmark (§IV-B):
//!
//! * [`neuron`] — the quantized linear-leak LIF neuron implemented by the SNE
//!   (4-bit weights, 8-bit saturating state) and the SRM baseline neuron used
//!   by the SLAYER comparison.
//! * [`quant`] — 4-bit weight quantization and 8-bit state arithmetic.
//! * [`layer`] — event-driven convolution, pooling and fully-connected layers
//!   operating on binary spike frames.
//! * [`network`] / [`topology`] — sequential eCNN networks and the paper's
//!   Fig. 6 topology builder.
//! * [`inference`] — spike-count classification, per-layer activity
//!   measurement (the quantity that drives the energy model) and accuracy
//!   evaluation.
//! * [`train`] — a rate-based surrogate trainer standing in for the SLAYER
//!   framework (see `DESIGN.md` §4), able to train both the SRM baseline and
//!   the quantized SNE-LIF-4b variant of the same network.
//!
//! # Example
//!
//! ```
//! use sne_model::neuron::{LifNeuron, LifParams, Neuron};
//!
//! let params = LifParams { leak: 1, threshold: 8, ..LifParams::default() };
//! let mut neuron = LifNeuron::new(params);
//! // Three strong inputs push the membrane over the threshold.
//! for _ in 0..3 {
//!     neuron.integrate(4);
//! }
//! assert!(neuron.fire_and_reset());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod inference;
pub mod layer;
pub mod network;
pub mod neuron;
pub mod quant;
pub mod tensor;
pub mod topology;
pub mod train;

mod error;

pub use error::ModelError;
pub use network::Network;
pub use tensor::{Frame, RateMap, Shape};

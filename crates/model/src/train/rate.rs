//! Floating-point rate network with backpropagation.
//!
//! The rate network mirrors a [`Topology`] layer for layer but operates on
//! real-valued spike *rates* instead of binary spikes. Hidden stateful layers
//! use the hard-sigmoid surrogate activation `relu1(x) = clamp(x, 0, 1)`
//! (a spiking neuron's rate is bounded by one spike per timestep), the final
//! dense layer is linear and feeds the softmax of the trainer.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::SgdOptimizer;
use crate::tensor::Shape;
use crate::topology::{StageSpec, Topology};
use crate::ModelError;

/// Hard-sigmoid activation (the surrogate rate transfer function).
#[must_use]
pub(crate) fn relu1(x: f32) -> f32 {
    x.clamp(0.0, 1.0)
}

/// Derivative of [`relu1`] (1 inside the linear region, 0 outside).
#[must_use]
pub(crate) fn relu1_grad(x: f32) -> f32 {
    if (0.0..=1.0).contains(&x) {
        1.0
    } else {
        0.0
    }
}

/// One layer of the rate network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateLayer {
    /// Stride-1 "same" convolution with hard-sigmoid activation.
    Conv {
        /// Input shape.
        in_shape: Shape,
        /// Number of output channels.
        out_channels: u16,
        /// Square kernel size.
        kernel: u16,
        /// Weights in `[out][in][kh][kw]` layout.
        weights: Vec<f32>,
        /// Accumulated gradients, same layout as `weights`.
        grads: Vec<f32>,
        /// Input of the last forward pass.
        last_input: Vec<f32>,
        /// Pre-activation of the last forward pass.
        last_preact: Vec<f32>,
    },
    /// Average pooling (the rate-domain counterpart of spike OR-pooling).
    Pool {
        /// Input shape.
        in_shape: Shape,
        /// Pooling window.
        window: u16,
    },
    /// Fully-connected layer; linear when `is_output`, hard-sigmoid otherwise.
    Dense {
        /// Input shape (flattened internally).
        in_shape: Shape,
        /// Number of output neurons.
        outputs: u16,
        /// Weights in `[out][in]` layout.
        weights: Vec<f32>,
        /// Accumulated gradients, same layout as `weights`.
        grads: Vec<f32>,
        /// Input of the last forward pass.
        last_input: Vec<f32>,
        /// Pre-activation of the last forward pass.
        last_preact: Vec<f32>,
        /// `true` for the classifier head (linear output).
        is_output: bool,
    },
}

impl RateLayer {
    /// Shape of the layer output.
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        match self {
            RateLayer::Conv {
                in_shape,
                out_channels,
                ..
            } => Shape::new(*out_channels, in_shape.height, in_shape.width),
            RateLayer::Pool { in_shape, window } => Shape::new(
                in_shape.channels,
                in_shape.height / window,
                in_shape.width / window,
            ),
            RateLayer::Dense { outputs, .. } => Shape::new(*outputs, 1, 1),
        }
    }

    /// Trainable weights of the layer (empty for pooling).
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        match self {
            RateLayer::Conv { weights, .. } | RateLayer::Dense { weights, .. } => weights,
            RateLayer::Pool { .. } => &[],
        }
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        match self {
            RateLayer::Conv {
                in_shape,
                out_channels,
                kernel,
                weights,
                last_input,
                last_preact,
                ..
            } => {
                let out_shape = Shape::new(*out_channels, in_shape.height, in_shape.width);
                let half = i32::from(*kernel / 2);
                let mut pre = vec![0.0f32; out_shape.len()];
                for oc in 0..*out_channels {
                    for oy in 0..in_shape.height {
                        for ox in 0..in_shape.width {
                            let mut acc = 0.0f32;
                            for ic in 0..in_shape.channels {
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        let iy = i32::from(oy) + i32::from(ky) - half;
                                        let ix = i32::from(ox) + i32::from(kx) - half;
                                        if iy < 0
                                            || ix < 0
                                            || iy >= i32::from(in_shape.height)
                                            || ix >= i32::from(in_shape.width)
                                        {
                                            continue;
                                        }
                                        let w_idx = ((usize::from(oc)
                                            * usize::from(in_shape.channels)
                                            + usize::from(ic))
                                            * usize::from(*kernel)
                                            + usize::from(ky))
                                            * usize::from(*kernel)
                                            + usize::from(kx);
                                        acc += weights[w_idx]
                                            * input[in_shape.index(ic, iy as u16, ix as u16)];
                                    }
                                }
                            }
                            pre[out_shape.index(oc, oy, ox)] = acc;
                        }
                    }
                }
                *last_input = input.to_vec();
                *last_preact = pre.clone();
                pre.iter().map(|&v| relu1(v)).collect()
            }
            RateLayer::Pool { in_shape, window } => {
                let out_shape = Shape::new(
                    in_shape.channels,
                    in_shape.height / *window,
                    in_shape.width / *window,
                );
                let mut out = vec![0.0f32; out_shape.len()];
                let area = f32::from(*window) * f32::from(*window);
                for c in 0..in_shape.channels {
                    for y in 0..out_shape.height {
                        for x in 0..out_shape.width {
                            let mut acc = 0.0;
                            for dy in 0..*window {
                                for dx in 0..*window {
                                    acc += input
                                        [in_shape.index(c, y * *window + dy, x * *window + dx)];
                                }
                            }
                            out[out_shape.index(c, y, x)] = acc / area;
                        }
                    }
                }
                out
            }
            RateLayer::Dense {
                in_shape,
                outputs,
                weights,
                last_input,
                last_preact,
                is_output,
                ..
            } => {
                let inputs = in_shape.len();
                let mut pre = vec![0.0f32; usize::from(*outputs)];
                for (o, out) in pre.iter_mut().enumerate() {
                    let row = &weights[o * inputs..(o + 1) * inputs];
                    *out = row.iter().zip(input).map(|(&w, &x)| w * x).sum();
                }
                *last_input = input.to_vec();
                *last_preact = pre.clone();
                if *is_output {
                    pre
                } else {
                    pre.iter().map(|&v| relu1(v)).collect()
                }
            }
        }
    }

    /// Backpropagates `grad_output`, accumulating weight gradients and
    /// returning the gradient with respect to the layer input.
    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        match self {
            RateLayer::Conv {
                in_shape,
                out_channels,
                kernel,
                weights,
                grads,
                last_input,
                last_preact,
            } => {
                let out_shape = Shape::new(*out_channels, in_shape.height, in_shape.width);
                let half = i32::from(*kernel / 2);
                let mut grad_input = vec![0.0f32; in_shape.len()];
                for oc in 0..*out_channels {
                    for oy in 0..in_shape.height {
                        for ox in 0..in_shape.width {
                            let o_idx = out_shape.index(oc, oy, ox);
                            let gpre = grad_output[o_idx] * relu1_grad(last_preact[o_idx]);
                            if gpre == 0.0 {
                                continue;
                            }
                            for ic in 0..in_shape.channels {
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        let iy = i32::from(oy) + i32::from(ky) - half;
                                        let ix = i32::from(ox) + i32::from(kx) - half;
                                        if iy < 0
                                            || ix < 0
                                            || iy >= i32::from(in_shape.height)
                                            || ix >= i32::from(in_shape.width)
                                        {
                                            continue;
                                        }
                                        let w_idx = ((usize::from(oc)
                                            * usize::from(in_shape.channels)
                                            + usize::from(ic))
                                            * usize::from(*kernel)
                                            + usize::from(ky))
                                            * usize::from(*kernel)
                                            + usize::from(kx);
                                        let i_idx = in_shape.index(ic, iy as u16, ix as u16);
                                        grads[w_idx] += gpre * last_input[i_idx];
                                        grad_input[i_idx] += gpre * weights[w_idx];
                                    }
                                }
                            }
                        }
                    }
                }
                grad_input
            }
            RateLayer::Pool { in_shape, window } => {
                let out_shape = Shape::new(
                    in_shape.channels,
                    in_shape.height / *window,
                    in_shape.width / *window,
                );
                let mut grad_input = vec![0.0f32; in_shape.len()];
                let area = f32::from(*window) * f32::from(*window);
                for c in 0..in_shape.channels {
                    for y in 0..out_shape.height {
                        for x in 0..out_shape.width {
                            let g = grad_output[out_shape.index(c, y, x)] / area;
                            for dy in 0..*window {
                                for dx in 0..*window {
                                    grad_input
                                        [in_shape.index(c, y * *window + dy, x * *window + dx)] +=
                                        g;
                                }
                            }
                        }
                    }
                }
                grad_input
            }
            RateLayer::Dense {
                in_shape,
                outputs,
                weights,
                grads,
                last_input,
                last_preact,
                is_output,
            } => {
                let inputs = in_shape.len();
                let mut grad_input = vec![0.0f32; inputs];
                for o in 0..usize::from(*outputs) {
                    let gpre = if *is_output {
                        grad_output[o]
                    } else {
                        grad_output[o] * relu1_grad(last_preact[o])
                    };
                    if gpre == 0.0 {
                        continue;
                    }
                    for i in 0..inputs {
                        grads[o * inputs + i] += gpre * last_input[i];
                        grad_input[i] += gpre * weights[o * inputs + i];
                    }
                }
                grad_input
            }
        }
    }
}

/// A sequential floating-point rate network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateNetwork {
    input_shape: Shape,
    layers: Vec<RateLayer>,
}

impl RateNetwork {
    /// Builds a rate network from a topology with random (He-style) weight
    /// initialization.
    ///
    /// # Errors
    ///
    /// Propagates topology shape errors.
    pub fn from_topology<R: Rng>(topology: &Topology, rng: &mut R) -> Result<Self, ModelError> {
        let shapes = topology.shapes()?;
        let mut layers = Vec::with_capacity(topology.stages.len());
        for (i, (stage, in_shape)) in topology.stages.iter().zip(shapes.iter()).enumerate() {
            let is_last = i + 1 == topology.stages.len();
            match *stage {
                StageSpec::Conv {
                    out_channels,
                    kernel,
                } => {
                    let fan_in =
                        usize::from(in_shape.channels) * usize::from(kernel) * usize::from(kernel);
                    let count = usize::from(out_channels) * fan_in;
                    let limit = (6.0 / fan_in as f32).sqrt();
                    let weights = (0..count).map(|_| rng.gen_range(-limit..limit)).collect();
                    layers.push(RateLayer::Conv {
                        in_shape: *in_shape,
                        out_channels,
                        kernel,
                        weights,
                        grads: vec![0.0; count],
                        last_input: Vec::new(),
                        last_preact: Vec::new(),
                    });
                }
                StageSpec::Pool { window } => {
                    layers.push(RateLayer::Pool {
                        in_shape: *in_shape,
                        window,
                    });
                }
                StageSpec::Dense { outputs } => {
                    let fan_in = in_shape.len();
                    let count = usize::from(outputs) * fan_in;
                    let limit = (6.0 / fan_in as f32).sqrt();
                    let weights = (0..count).map(|_| rng.gen_range(-limit..limit)).collect();
                    layers.push(RateLayer::Dense {
                        in_shape: *in_shape,
                        outputs,
                        weights,
                        grads: vec![0.0; count],
                        last_input: Vec::new(),
                        last_preact: Vec::new(),
                        is_output: is_last,
                    });
                }
            }
        }
        Ok(Self {
            input_shape: topology.input,
            layers,
        })
    }

    /// Shape of the input rate map.
    #[must_use]
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The layers of the network.
    #[must_use]
    pub fn layers(&self) -> &[RateLayer] {
        &self.layers
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights().len()).sum()
    }

    /// Forward pass over a flattened `[C, H, W]` rate input; returns the
    /// logits of the classifier head.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the input length does not
    /// match the input shape.
    pub fn forward(&mut self, input: &[f32]) -> Result<Vec<f32>, ModelError> {
        if input.len() != self.input_shape.len() {
            return Err(ModelError::ShapeMismatch {
                location: "rate network input".to_owned(),
                expected: self.input_shape.as_tuple(),
                found: (1, 1, input.len() as u16),
            });
        }
        let mut activation = input.to_vec();
        for layer in &mut self.layers {
            activation = layer.forward(&activation);
        }
        Ok(activation)
    }

    /// Backward pass from the gradient of the loss with respect to the logits.
    /// Gradients accumulate until [`RateNetwork::apply_gradients`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the gradient length does not
    /// match the classifier output.
    pub fn backward(&mut self, grad_logits: &[f32]) -> Result<(), ModelError> {
        let out_len = self
            .layers
            .last()
            .map(|l| l.output_shape().len())
            .unwrap_or(0);
        if grad_logits.len() != out_len {
            return Err(ModelError::ShapeMismatch {
                location: "rate network output gradient".to_owned(),
                expected: (1, 1, out_len as u16),
                found: (1, 1, grad_logits.len() as u16),
            });
        }
        let mut grad = grad_logits.to_vec();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        Ok(())
    }

    /// Applies the accumulated gradients (averaged over `batch_size` samples)
    /// with the given optimizer and clears them.
    pub fn apply_gradients(&mut self, optimizer: &mut SgdOptimizer, batch_size: usize) {
        let scale = 1.0 / batch_size.max(1) as f32;
        let mut params = Vec::with_capacity(self.parameter_count());
        let mut grads = Vec::with_capacity(self.parameter_count());
        for layer in &self.layers {
            match layer {
                RateLayer::Conv {
                    weights, grads: g, ..
                }
                | RateLayer::Dense {
                    weights, grads: g, ..
                } => {
                    params.extend_from_slice(weights);
                    grads.extend(g.iter().map(|&v| v * scale));
                }
                RateLayer::Pool { .. } => {}
            }
        }
        optimizer.step(&mut params, &grads);
        let mut offset = 0usize;
        for layer in &mut self.layers {
            match layer {
                RateLayer::Conv {
                    weights, grads: g, ..
                }
                | RateLayer::Dense {
                    weights, grads: g, ..
                } => {
                    let len = weights.len();
                    weights.copy_from_slice(&params[offset..offset + len]);
                    offset += len;
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                RateLayer::Pool { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_topology() -> Topology {
        Topology::tiny(Shape::new(1, 6, 6), 2, 3)
    }

    fn network(seed: u64) -> RateNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        RateNetwork::from_topology(&tiny_topology(), &mut rng).unwrap()
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut net = network(1);
        let input = vec![0.5; 36];
        let logits = net.forward(&input).unwrap();
        assert_eq!(logits.len(), 3);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_rejects_wrong_input_length() {
        let mut net = network(1);
        assert!(net.forward(&[0.0; 10]).is_err());
    }

    #[test]
    fn backward_rejects_wrong_gradient_length() {
        let mut net = network(1);
        let _ = net.forward(&[0.1; 36]).unwrap();
        assert!(net.backward(&[0.0; 2]).is_err());
        assert!(net.backward(&[0.0; 3]).is_ok());
    }

    #[test]
    fn gradient_check_on_dense_layer() {
        // Finite-difference check of dL/dw for a single dense weight, with
        // L = logits[0] (so dL/dlogits = [1, 0, 0]).
        let mut net = network(2);
        let input: Vec<f32> = (0..36).map(|i| (i as f32) / 72.0).collect();
        let _ = net.forward(&input).unwrap();
        net.backward(&[1.0, 0.0, 0.0]).unwrap();
        // Pick the classifier layer (last) and its first weight.
        let (analytic, numeric) = {
            let layer_index = net.layers.len() - 1;
            let analytic = match &net.layers[layer_index] {
                RateLayer::Dense { grads, .. } => grads[0],
                _ => panic!("expected dense"),
            };
            let eps = 1e-3f32;
            let mut plus = net.clone();
            if let RateLayer::Dense { weights, .. } = &mut plus.layers[layer_index] {
                weights[0] += eps;
            }
            let mut minus = net.clone();
            if let RateLayer::Dense { weights, .. } = &mut minus.layers[layer_index] {
                weights[0] -= eps;
            }
            let lp = plus.forward(&input).unwrap()[0];
            let lm = minus.forward(&input).unwrap()[0];
            (analytic, (lp - lm) / (2.0 * eps))
        };
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn gradient_check_on_conv_layer() {
        let mut net = network(3);
        let input: Vec<f32> = (0..36).map(|i| ((i % 7) as f32) / 10.0).collect();
        let _ = net.forward(&input).unwrap();
        net.backward(&[0.5, -0.5, 1.0]).unwrap();
        let loss = |n: &mut RateNetwork, input: &[f32]| {
            let l = n.forward(input).unwrap();
            0.5 * l[0] - 0.5 * l[1] + l[2]
        };
        let analytic = match &net.layers[0] {
            RateLayer::Conv { grads, .. } => grads[4],
            _ => panic!("expected conv"),
        };
        let eps = 1e-3f32;
        let mut plus = net.clone();
        if let RateLayer::Conv { weights, .. } = &mut plus.layers[0] {
            weights[4] += eps;
        }
        let mut minus = net.clone();
        if let RateLayer::Conv { weights, .. } = &mut minus.layers[0] {
            weights[4] -= eps;
        }
        let numeric = (loss(&mut plus, &input) - loss(&mut minus, &input)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn apply_gradients_changes_weights_and_clears_grads() {
        let mut net = network(4);
        let mut opt = SgdOptimizer::new(0.1, 0.0, net.parameter_count());
        let input = vec![0.3; 36];
        let _ = net.forward(&input).unwrap();
        net.backward(&[1.0, 0.0, 0.0]).unwrap();
        let before: Vec<f32> = net.layers()[0].weights().to_vec();
        net.apply_gradients(&mut opt, 1);
        let after: Vec<f32> = net.layers()[0].weights().to_vec();
        assert_ne!(before, after);
        if let RateLayer::Conv { grads, .. } = &net.layers[0] {
            assert!(grads.iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn relu1_and_its_gradient() {
        assert_eq!(relu1(-0.5), 0.0);
        assert_eq!(relu1(0.5), 0.5);
        assert_eq!(relu1(1.5), 1.0);
        assert_eq!(relu1_grad(-0.5), 0.0);
        assert_eq!(relu1_grad(0.5), 1.0);
        assert_eq!(relu1_grad(1.5), 0.0);
    }

    #[test]
    fn parameter_count_matches_topology() {
        let net = network(5);
        assert_eq!(
            net.parameter_count(),
            tiny_topology().weight_count().unwrap()
        );
    }
}

//! Stochastic gradient descent with momentum.

use serde::{Deserialize, Serialize};

/// Plain SGD with classical momentum over a flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdOptimizer {
    learning_rate: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl SgdOptimizer {
    /// Creates an optimizer for `parameter_count` parameters.
    #[must_use]
    pub fn new(learning_rate: f32, momentum: f32, parameter_count: usize) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: vec![0.0; parameter_count],
        }
    }

    /// Learning rate currently in use.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Updates the learning rate (e.g. for a decay schedule).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        self.learning_rate = learning_rate;
    }

    /// Applies one update step: `v = m*v + g; w -= lr * v`.
    ///
    /// # Panics
    ///
    /// Panics if `parameters` and `gradients` do not have the length the
    /// optimizer was created with.
    pub fn step(&mut self, parameters: &mut [f32], gradients: &[f32]) {
        assert_eq!(
            parameters.len(),
            self.velocity.len(),
            "parameter count mismatch"
        );
        assert_eq!(
            gradients.len(),
            self.velocity.len(),
            "gradient count mismatch"
        );
        for ((w, &g), v) in parameters
            .iter_mut()
            .zip(gradients)
            .zip(self.velocity.iter_mut())
        {
            *v = self.momentum * *v + g;
            *w -= self.learning_rate * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_parameters_against_the_gradient() {
        let mut opt = SgdOptimizer::new(0.1, 0.0, 2);
        let mut params = vec![1.0, -1.0];
        opt.step(&mut params, &[1.0, -1.0]);
        assert!(params[0] < 1.0);
        assert!(params[1] > -1.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut with_momentum = SgdOptimizer::new(0.1, 0.9, 1);
        let mut params_momentum = vec![0.0];
        let mut without = SgdOptimizer::new(0.1, 0.0, 1);
        let mut params_plain = vec![0.0];
        for _ in 0..5 {
            with_momentum.step(&mut params_momentum, &[1.0]);
            without.step(&mut params_plain, &[1.0]);
        }
        assert!(params_momentum[0] < params_plain[0]);
    }

    #[test]
    fn converges_on_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 with gradient 2(w - 3).
        let mut opt = SgdOptimizer::new(0.1, 0.5, 1);
        let mut params = vec![0.0f32];
        for _ in 0..100 {
            let grad = 2.0 * (params[0] - 3.0);
            opt.step(&mut params, &[grad]);
        }
        assert!((params[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut opt = SgdOptimizer::new(0.1, 0.0, 1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = SgdOptimizer::new(0.1, 0.0, 2);
        let mut params = vec![0.0];
        opt.step(&mut params, &[0.0]);
    }
}

//! Softmax and cross-entropy loss.

/// Numerically-stable softmax.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|&e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

/// Cross-entropy of a probability vector against a one-hot target class.
///
/// Returns a large finite value rather than infinity when the target
/// probability underflows.
#[must_use]
pub fn cross_entropy(probabilities: &[f32], target: usize) -> f32 {
    probabilities
        .get(target)
        .map(|&p| -(p.max(1e-12)).ln())
        .unwrap_or(30.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn cross_entropy_is_low_for_confident_correct_predictions() {
        let p = softmax(&[10.0, 0.0, 0.0]);
        assert!(cross_entropy(&p, 0) < 0.01);
        assert!(cross_entropy(&p, 1) > 1.0);
    }

    #[test]
    fn cross_entropy_handles_out_of_range_targets() {
        let p = softmax(&[0.0, 0.0]);
        assert!(cross_entropy(&p, 5).is_finite());
    }

    #[test]
    fn cross_entropy_never_returns_infinity() {
        assert!(cross_entropy(&[0.0, 1.0], 0).is_finite());
    }
}

//! Conversion of trained rate networks into spiking networks.
//!
//! Two targets are supported, matching the two columns of paper Table I:
//!
//! * [`to_lif_network`] — the `SNE-LIF-4b` network: weights quantized to the
//!   4-bit hardware grid, firing thresholds chosen as `round(1/scale)` so
//!   that the spiking rates approximate the trained activations, zero leak.
//!   The resulting network uses integer-valued weights and is bit-exact with
//!   the cycle simulator's datapath.
//! * [`to_srm_network`] — the floating-point SRM baseline: the trained
//!   weights are used unchanged with near-ideal integrator dynamics
//!   (subtractive reset at threshold 1), standing in for the SLAYER-trained
//!   SRM reference.

use serde::{Deserialize, Serialize};

use super::rate::{RateLayer, RateNetwork};
use crate::layer::{ConvLayer, DenseLayer, NeuronConfig, PoolLayer};
use crate::network::Network;
use crate::neuron::{LifParams, SrmParams};
use crate::quant::QuantizedWeights;
use crate::ModelError;

/// Per-layer details of a quantized conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionReport {
    /// Quantization scale of each stateful layer, in network order.
    pub scales: Vec<f32>,
    /// Firing threshold chosen for each stateful layer, in network order.
    pub thresholds: Vec<i16>,
    /// Worst-case absolute weight quantization error per stateful layer.
    pub max_errors: Vec<f32>,
}

/// Converts a trained rate network into the quantized `SNE-LIF-4b` spiking
/// network executed by the accelerator.
///
/// # Errors
///
/// Propagates layer-construction and shape errors.
pub fn to_lif_network(rate: &RateNetwork) -> Result<(Network, ConversionReport), ModelError> {
    let mut network = Network::new(rate.input_shape());
    let mut report = ConversionReport {
        scales: Vec::new(),
        thresholds: Vec::new(),
        max_errors: Vec::new(),
    };

    for layer in rate.layers() {
        match layer {
            RateLayer::Conv {
                in_shape,
                out_channels,
                kernel,
                weights,
                ..
            } => {
                let q = QuantizedWeights::from_floats(weights);
                let threshold = threshold_from_scale(q.scale);
                let params = LifParams {
                    leak: 0,
                    threshold,
                    ..LifParams::default()
                };
                let mut conv =
                    ConvLayer::new(*in_shape, *out_channels, *kernel, NeuronConfig::Lif(params))?;
                conv.set_weights(q.values.iter().map(|&v| f32::from(v)).collect())?;
                report.scales.push(q.scale);
                report.thresholds.push(threshold);
                report.max_errors.push(q.max_error(weights));
                network.push(conv)?;
            }
            RateLayer::Pool { in_shape, window } => {
                network.push(PoolLayer::new(*in_shape, *window)?)?;
            }
            RateLayer::Dense {
                in_shape,
                outputs,
                weights,
                ..
            } => {
                let q = QuantizedWeights::from_floats(weights);
                let threshold = threshold_from_scale(q.scale);
                let params = LifParams {
                    leak: 0,
                    threshold,
                    ..LifParams::default()
                };
                let mut dense = DenseLayer::new(*in_shape, *outputs, NeuronConfig::Lif(params))?;
                dense.set_weights(q.values.iter().map(|&v| f32::from(v)).collect())?;
                report.scales.push(q.scale);
                report.thresholds.push(threshold);
                report.max_errors.push(q.max_error(weights));
                network.push(dense)?;
            }
        }
    }
    Ok((network, report))
}

/// Converts a trained rate network into the floating-point SRM baseline
/// spiking network.
///
/// # Errors
///
/// Propagates layer-construction and shape errors.
pub fn to_srm_network(rate: &RateNetwork) -> Result<Network, ModelError> {
    // Near-ideal integrator: negligible membrane decay, instantaneous
    // synaptic kernel, subtractive reset at a unit threshold. This preserves
    // the trained rates as faithfully as the SRM formulation allows.
    let srm = SrmParams {
        tau_membrane: 1e6,
        tau_synapse: 1e-3,
        threshold: 1.0,
        refractory_drop: 1.0,
    };
    let config = NeuronConfig::Srm(srm);
    let mut network = Network::new(rate.input_shape());
    for layer in rate.layers() {
        match layer {
            RateLayer::Conv {
                in_shape,
                out_channels,
                kernel,
                weights,
                ..
            } => {
                let mut conv = ConvLayer::new(*in_shape, *out_channels, *kernel, config)?;
                conv.set_weights(weights.clone())?;
                network.push(conv)?;
            }
            RateLayer::Pool { in_shape, window } => {
                network.push(PoolLayer::new(*in_shape, *window)?)?;
            }
            RateLayer::Dense {
                in_shape,
                outputs,
                weights,
                ..
            } => {
                let mut dense = DenseLayer::new(*in_shape, *outputs, config)?;
                dense.set_weights(weights.clone())?;
                network.push(dense)?;
            }
        }
    }
    Ok(network)
}

/// Maps a quantization scale to a hardware firing threshold: the trained
/// activation saturates at 1.0, which corresponds to `1/scale` in quantized
/// units; the threshold is clamped to the representable 8-bit state range.
fn threshold_from_scale(scale: f32) -> i16 {
    let ideal = (1.0 / scale.max(f32::MIN_POSITIVE)).round();
    ideal.clamp(1.0, 127.0) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_event::{Event, EventStream};

    fn trained_like_network() -> RateNetwork {
        let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
        let mut rng = StdRng::seed_from_u64(9);
        RateNetwork::from_topology(&topology, &mut rng).unwrap()
    }

    #[test]
    fn lif_conversion_produces_integer_weights_and_valid_thresholds() {
        let rate = trained_like_network();
        let (network, report) = to_lif_network(&rate).unwrap();
        assert_eq!(network.len(), 3);
        assert_eq!(report.scales.len(), 2);
        assert!(report.thresholds.iter().all(|&t| (1..=127).contains(&t)));
        assert!(report.max_errors.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn srm_conversion_preserves_float_weights() {
        let rate = trained_like_network();
        let network = to_srm_network(&rate).unwrap();
        assert_eq!(network.len(), 3);
        assert_eq!(network.output_shape(), Shape::new(3, 1, 1));
    }

    #[test]
    fn converted_networks_run_on_event_streams() {
        let rate = trained_like_network();
        let (mut lif, _) = to_lif_network(&rate).unwrap();
        let mut srm = to_srm_network(&rate).unwrap();
        let mut stream = EventStream::new(8, 8, 2, 12);
        for t in 0..12 {
            stream.push(Event::update(t, 0, 3, 3)).unwrap();
            stream.push(Event::update(t, 1, 4, 4)).unwrap();
        }
        let lif_result = lif.run_stream(&stream).unwrap();
        let srm_result = srm.run_stream(&stream).unwrap();
        assert_eq!(lif_result.output_spike_counts.len(), 3);
        assert_eq!(srm_result.output_spike_counts.len(), 3);
    }

    #[test]
    fn threshold_from_scale_clamps_to_state_range() {
        assert_eq!(threshold_from_scale(1.0), 1);
        assert_eq!(threshold_from_scale(0.1), 10);
        assert_eq!(threshold_from_scale(0.001), 127);
        assert_eq!(threshold_from_scale(100.0), 1);
    }
}

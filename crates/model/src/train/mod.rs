//! Rate-based surrogate trainer.
//!
//! The paper trains its networks with SLAYER (PyTorch, GPU). This module is
//! the Rust stand-in: networks are trained in floating point on *spike rates*
//! (spike counts averaged over the inference window) with a hard-sigmoid
//! surrogate activation, then converted to spiking networks — either the
//! quantized `SNE-LIF-4b` variant the accelerator executes or the `SRM`
//! float baseline — so that the comparison of paper Table I (baseline vs
//! quantized accelerator network) is preserved.
//!
//! The trainer is intentionally small (plain SGD with momentum, no data
//! augmentation); it is sized for the synthetic surrogate datasets of
//! `sne-event::datasets`, not for the real DVS recordings.

mod convert;
mod loss;
mod optimizer;
mod rate;

pub use convert::{to_lif_network, to_srm_network, ConversionReport};
pub use loss::{cross_entropy, softmax};
pub use optimizer::SgdOptimizer;
pub use rate::{RateLayer, RateNetwork};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sne_event::datasets::EventDataset;
use sne_event::EventTensor;

use crate::topology::Topology;
use crate::ModelError;

/// Hyper-parameters of the rate-based trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training range.
    pub epochs: usize,
    /// Samples per parameter update.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 8,
            learning_rate: 0.05,
            momentum: 0.9,
            seed: 42,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean cross-entropy loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// A trained rate network together with its training history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// The trained floating-point network.
    pub network: RateNetwork,
    /// The topology the network was built from.
    pub topology: Topology,
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
}

/// Converts a labeled event stream into the rate-coded input vector the
/// trainer consumes (per-position mean spike rate over the window).
#[must_use]
pub fn rate_input(stream: &sne_event::EventStream) -> Vec<f32> {
    let tensor = EventTensor::from_stream(stream);
    let g = tensor.geometry();
    tensor
        .spike_counts_per_position()
        .iter()
        .map(|&c| c as f32 / g.timesteps as f32)
        .collect()
}

/// Trains a topology on a dataset index range with the rate-based surrogate.
///
/// # Errors
///
/// Returns [`ModelError::EmptyTrainingSet`] if the training range or the batch
/// size is empty, and propagates topology/shape errors.
pub fn train<D: EventDataset>(
    topology: &Topology,
    dataset: &D,
    train_indices: std::ops::Range<u64>,
    config: &TrainConfig,
) -> Result<TrainOutcome, ModelError> {
    if train_indices.is_empty() || config.batch_size == 0 || config.epochs == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut network = RateNetwork::from_topology(topology, &mut rng)?;
    let mut optimizer = SgdOptimizer::new(
        config.learning_rate,
        config.momentum,
        network.parameter_count(),
    );
    let classes = topology.classes() as usize;

    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut in_batch = 0usize;

        for index in train_indices.clone() {
            let sample = dataset.sample(index);
            let input = rate_input(&sample.stream);
            let logits = network.forward(&input)?;
            let probs = softmax(&logits);
            loss_sum += cross_entropy(&probs, sample.label);
            if argmax(&logits) == sample.label {
                correct += 1;
            }
            // dL/dlogits for softmax + cross-entropy.
            let mut grad: Vec<f32> = probs;
            if sample.label < classes {
                grad[sample.label] -= 1.0;
            }
            network.backward(&grad)?;
            seen += 1;
            in_batch += 1;
            if in_batch == config.batch_size {
                network.apply_gradients(&mut optimizer, in_batch);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            network.apply_gradients(&mut optimizer, in_batch);
        }
        history.push(EpochStats {
            epoch,
            mean_loss: loss_sum / seen as f32,
            accuracy: correct as f64 / seen as f64,
        });
    }

    Ok(TrainOutcome {
        network,
        topology: topology.clone(),
        history,
    })
}

pub(crate) fn argmax(values: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;
    use sne_event::datasets::{MotionPattern, PatternDataset};

    fn dataset() -> PatternDataset {
        PatternDataset::new(
            16,
            16,
            2,
            20,
            vec![
                MotionPattern::TranslatingBar {
                    speed: 1.5,
                    width: 3,
                },
                MotionPattern::PulsingRing {
                    period: 10.0,
                    max_radius_fraction: 0.8,
                },
            ],
            11,
        )
    }

    #[test]
    fn rate_input_has_one_entry_per_position() {
        let sample = dataset().sample(0);
        let input = rate_input(&sample.stream);
        assert_eq!(input.len(), 16 * 16 * 2);
        assert!(input.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(input.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn training_reduces_loss_on_a_separable_task() {
        let topology = Topology::tiny(Shape::new(2, 16, 16), 4, 2);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 4,
            learning_rate: 0.1,
            ..Default::default()
        };
        let outcome = train(&topology, &dataset(), 0..16, &config).unwrap();
        assert_eq!(outcome.history.len(), 4);
        let first = outcome.history.first().unwrap().mean_loss;
        let last = outcome.history.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn empty_training_range_is_rejected() {
        let topology = Topology::tiny(Shape::new(2, 16, 16), 4, 2);
        assert!(matches!(
            train(&topology, &dataset(), 0..0, &TrainConfig::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let zero_batch = TrainConfig {
            batch_size: 0,
            ..Default::default()
        };
        assert!(train(&topology, &dataset(), 0..4, &zero_batch).is_err());
    }

    #[test]
    fn argmax_returns_first_max() {
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}

//! Sequential event-driven networks.

use sne_event::{EventStream, EventTensor};

use crate::layer::{EventLayer, LayerKind};
use crate::tensor::{Frame, Shape};
use crate::ModelError;

/// Per-layer statistics collected while running a network.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerRunStats {
    /// Layer description (e.g. `conv 2x32,3x3`).
    pub description: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Number of output neurons.
    pub neurons: usize,
    /// Input spikes consumed over the whole run.
    pub input_spikes: u64,
    /// Output spikes produced over the whole run.
    pub output_spikes: u64,
    /// Synaptic operations performed over the whole run.
    pub synaptic_ops: u64,
    /// Output activity: output spikes / (neurons × timesteps).
    pub output_activity: f64,
}

/// Result of running a network over a full event stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Spike count of every neuron of the final layer, flattened.
    pub output_spike_counts: Vec<u32>,
    /// Per-layer statistics.
    pub layers: Vec<LayerRunStats>,
    /// Total synaptic operations across all layers.
    pub total_synaptic_ops: u64,
    /// Number of timesteps processed.
    pub timesteps: u32,
    /// Total number of input spikes of the first layer.
    pub input_spikes: u64,
}

impl RunResult {
    /// Index of the output neuron with the highest spike count (classification
    /// by rate coding). Ties resolve to the lowest index.
    #[must_use]
    pub fn predicted_class(&self) -> usize {
        self.output_spike_counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Mean output activity across all stateful layers (the quantity the
    /// paper reports as "network activity", 1.2 %–4.9 % on DVS-Gesture).
    #[must_use]
    pub fn mean_activity(&self) -> f64 {
        let stateful: Vec<&LayerRunStats> = self
            .layers
            .iter()
            .filter(|l| l.kind != LayerKind::Pooling)
            .collect();
        if stateful.is_empty() {
            0.0
        } else {
            stateful.iter().map(|l| l.output_activity).sum::<f64>() / stateful.len() as f64
        }
    }
}

/// A sequential event-driven network (the eCNN of the paper).
///
/// # Example
///
/// ```
/// use sne_model::layer::{ConvLayer, NeuronConfig, PoolLayer};
/// use sne_model::{Network, Shape};
///
/// let input = Shape::new(2, 8, 8);
/// let mut network = Network::new(input);
/// network.push(ConvLayer::new(input, 4, 3, NeuronConfig::default_lif())?)?;
/// network.push(PoolLayer::new(Shape::new(4, 8, 8), 2)?)?;
/// assert_eq!(network.output_shape().as_tuple(), (4, 4, 4));
/// # Ok::<(), sne_model::ModelError>(())
/// ```
pub struct Network {
    input_shape: Shape,
    layers: Vec<Box<dyn EventLayer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("input_shape", &self.input_shape)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.describe()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Network {
    /// Creates an empty network accepting frames of the given shape.
    #[must_use]
    pub fn new(input_shape: Shape) -> Self {
        Self {
            input_shape,
            layers: Vec::new(),
        }
    }

    /// Appends a layer, checking that its input shape matches the current
    /// output shape of the network.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the shapes do not chain.
    pub fn push<L: EventLayer + 'static>(&mut self, layer: L) -> Result<(), ModelError> {
        let expected = self.output_shape();
        if layer.input_shape() != expected {
            return Err(ModelError::ShapeMismatch {
                location: format!("layer {}", self.layers.len()),
                expected: expected.as_tuple(),
                found: layer.input_shape().as_tuple(),
            });
        }
        self.layers.push(Box::new(layer));
        Ok(())
    }

    /// Shape of the input frames.
    #[must_use]
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Shape of the output frames (equals the input shape for an empty
    /// network).
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        self.layers
            .last()
            .map_or(self.input_shape, |l| l.output_shape())
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers of the network.
    #[must_use]
    pub fn layers(&self) -> &[Box<dyn EventLayer>] {
        &self.layers
    }

    /// Total number of neurons across all layers.
    #[must_use]
    pub fn num_neurons(&self) -> usize {
        self.layers.iter().map(|l| l.num_neurons()).sum()
    }

    /// Resets all neuron state (start of a new inference).
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.reset();
        }
    }

    /// Processes one input frame (one timestep) through the whole network and
    /// returns the output frame of the last layer.
    pub fn step(&mut self, input: &Frame) -> Frame {
        let mut frame = input.clone();
        for layer in &mut self.layers {
            frame = layer.step(&frame);
        }
        frame
    }

    /// Runs a full inference over a dense spike tensor, resetting the network
    /// state first, and collects per-layer statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] if the tensor geometry does not
    /// match the network input shape, or [`ModelError::EmptyNetwork`] if the
    /// network has no layers.
    pub fn run(&mut self, input: &EventTensor) -> Result<RunResult, ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::EmptyNetwork);
        }
        let g = input.geometry();
        let tensor_shape = Shape::new(g.channels, g.height, g.width);
        if tensor_shape != self.input_shape {
            return Err(ModelError::ShapeMismatch {
                location: "network input".to_owned(),
                expected: self.input_shape.as_tuple(),
                found: tensor_shape.as_tuple(),
            });
        }

        self.reset();
        let mut stats: Vec<LayerRunStats> = self
            .layers
            .iter()
            .map(|l| LayerRunStats {
                description: l.describe(),
                kind: l.kind(),
                neurons: l.num_neurons(),
                input_spikes: 0,
                output_spikes: 0,
                synaptic_ops: 0,
                output_activity: 0.0,
            })
            .collect();
        let out_len = self.output_shape().len();
        let mut output_counts = vec![0u32; out_len];
        let mut input_spikes_total = 0u64;

        for t in 0..g.timesteps {
            // Build the input frame of this timestep.
            let mut frame = Frame::zeros(self.input_shape);
            for ch in 0..g.channels {
                for y in 0..g.height {
                    for x in 0..g.width {
                        if input.get(t, ch, x, y).unwrap_or(false) {
                            frame.set(ch, y, x, true);
                        }
                    }
                }
            }
            input_spikes_total += frame.spike_count() as u64;

            for (layer, stat) in self.layers.iter_mut().zip(stats.iter_mut()) {
                stat.input_spikes += frame.spike_count() as u64;
                stat.synaptic_ops += layer.synaptic_ops(&frame);
                frame = layer.step(&frame);
                stat.output_spikes += frame.spike_count() as u64;
            }
            for (count, &bit) in output_counts.iter_mut().zip(frame.as_slice()) {
                if bit {
                    *count += 1;
                }
            }
        }

        for stat in &mut stats {
            let denom = stat.neurons as f64 * f64::from(g.timesteps);
            stat.output_activity = if denom > 0.0 {
                stat.output_spikes as f64 / denom
            } else {
                0.0
            };
        }
        let total_synaptic_ops = stats.iter().map(|s| s.synaptic_ops).sum();
        Ok(RunResult {
            output_spike_counts: output_counts,
            layers: stats,
            total_synaptic_ops,
            timesteps: g.timesteps,
            input_spikes: input_spikes_total,
        })
    }

    /// Runs a full inference over a sparse event stream (converted to the
    /// dense tensor view first).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Network::run`].
    pub fn run_stream(&mut self, input: &EventStream) -> Result<RunResult, ModelError> {
        self.run(&EventTensor::from_stream(input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvLayer, DenseLayer, NeuronConfig, PoolLayer};
    use crate::neuron::LifParams;
    use sne_event::Event;

    fn lif(leak: i16, threshold: i16) -> NeuronConfig {
        NeuronConfig::Lif(LifParams {
            leak,
            threshold,
            ..LifParams::default()
        })
    }

    fn small_network() -> Network {
        let input = Shape::new(1, 4, 4);
        let mut n = Network::new(input);
        let mut conv = ConvLayer::new(input, 2, 3, lif(0, 2)).unwrap();
        let weights: Vec<f32> = vec![1.0; conv.weight_count()];
        conv.set_weights(weights).unwrap();
        n.push(conv).unwrap();
        n.push(PoolLayer::new(Shape::new(2, 4, 4), 2).unwrap())
            .unwrap();
        let mut dense = DenseLayer::new(Shape::new(2, 2, 2), 3, lif(0, 1)).unwrap();
        let weights: Vec<f32> = vec![1.0; 8 * 3];
        dense.set_weights(weights).unwrap();
        n.push(dense).unwrap();
        n
    }

    #[test]
    fn push_checks_shape_chaining() {
        let input = Shape::new(1, 4, 4);
        let mut n = Network::new(input);
        n.push(ConvLayer::new(input, 2, 3, NeuronConfig::default_lif()).unwrap())
            .unwrap();
        // Wrong input shape must be rejected.
        let bad = PoolLayer::new(Shape::new(1, 4, 4), 2).unwrap();
        assert!(matches!(n.push(bad), Err(ModelError::ShapeMismatch { .. })));
    }

    #[test]
    fn output_shape_tracks_last_layer() {
        let n = small_network();
        assert_eq!(n.output_shape(), Shape::new(3, 1, 1));
        assert_eq!(n.len(), 3);
        assert!(!n.is_empty());
        assert_eq!(n.num_neurons(), 2 * 16 + 8 + 3);
    }

    #[test]
    fn empty_network_cannot_run() {
        let mut n = Network::new(Shape::new(1, 4, 4));
        let stream = EventStream::new(4, 4, 1, 5);
        assert!(matches!(
            n.run_stream(&stream),
            Err(ModelError::EmptyNetwork)
        ));
    }

    #[test]
    fn run_rejects_mismatched_geometry() {
        let mut n = small_network();
        let stream = EventStream::new(8, 8, 1, 5);
        assert!(matches!(
            n.run_stream(&stream),
            Err(ModelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn run_produces_spikes_and_stats() {
        let mut n = small_network();
        let mut stream = EventStream::new(4, 4, 1, 6);
        for t in 0..6 {
            stream.push(Event::update(t, 0, 1, 1)).unwrap();
            stream.push(Event::update(t, 0, 2, 2)).unwrap();
        }
        let result = n.run_stream(&stream).unwrap();
        assert_eq!(result.timesteps, 6);
        assert_eq!(result.input_spikes, 12);
        assert_eq!(result.layers.len(), 3);
        assert!(result.total_synaptic_ops > 0);
        assert!(result.output_spike_counts.iter().any(|&c| c > 0));
        // Convolution SOPs dominate: each spike updates 9 positions x 2 channels.
        assert_eq!(result.layers[0].synaptic_ops, 12 * 9 * 2);
    }

    #[test]
    fn rerun_is_deterministic_thanks_to_reset() {
        let mut n = small_network();
        let mut stream = EventStream::new(4, 4, 1, 6);
        for t in 0..6 {
            stream.push(Event::update(t, 0, 1, 1)).unwrap();
        }
        let a = n.run_stream(&stream).unwrap();
        let b = n.run_stream(&stream).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn predicted_class_is_argmax() {
        let result = RunResult {
            output_spike_counts: vec![1, 5, 3],
            layers: Vec::new(),
            total_synaptic_ops: 0,
            timesteps: 1,
            input_spikes: 0,
        };
        assert_eq!(result.predicted_class(), 1);
        let tie = RunResult {
            output_spike_counts: vec![5, 5, 3],
            ..result
        };
        assert_eq!(tie.predicted_class(), 0);
    }

    #[test]
    fn mean_activity_ignores_pooling_layers() {
        let mut n = small_network();
        let mut stream = EventStream::new(4, 4, 1, 6);
        for t in 0..6 {
            stream.push(Event::update(t, 0, 1, 1)).unwrap();
        }
        let result = n.run_stream(&stream).unwrap();
        let activity = result.mean_activity();
        assert!(activity > 0.0 && activity <= 1.0);
    }
}

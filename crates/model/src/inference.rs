//! Classification, accuracy evaluation and activity measurement.

use serde::{Deserialize, Serialize};
use sne_event::datasets::EventDataset;

use crate::network::{Network, RunResult};
use crate::ModelError;

/// Outcome of classifying one event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// Index of the predicted class.
    pub predicted: usize,
    /// Output spike counts per class.
    pub spike_counts: Vec<u32>,
    /// Mean network activity during the inference (drives the energy model).
    pub activity: f64,
    /// Total synaptic operations performed.
    pub synaptic_ops: u64,
}

/// Accuracy evaluation over a dataset slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Number of evaluated samples.
    pub samples: usize,
    /// Number of correctly classified samples.
    pub correct: usize,
    /// Mean network activity across samples.
    pub mean_activity: f64,
    /// Minimum per-sample activity observed.
    pub min_activity: f64,
    /// Maximum per-sample activity observed.
    pub max_activity: f64,
    /// Mean synaptic operations per inference.
    pub mean_synaptic_ops: f64,
    /// Mean input spikes per inference.
    pub mean_input_spikes: f64,
    /// Confusion matrix in row-major `[true][predicted]` order.
    pub confusion: Vec<Vec<usize>>,
}

impl Evaluation {
    /// Classification accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.correct as f64 / self.samples as f64
        }
    }
}

/// Classifies one event stream with a spiking network.
///
/// # Errors
///
/// Propagates [`Network::run`] errors (shape mismatch, empty network).
pub fn classify(
    network: &mut Network,
    stream: &sne_event::EventStream,
) -> Result<Classification, ModelError> {
    let result = network.run_stream(stream)?;
    Ok(classification_from(&result))
}

fn classification_from(result: &RunResult) -> Classification {
    Classification {
        predicted: result.predicted_class(),
        spike_counts: result.output_spike_counts.clone(),
        activity: result.mean_activity(),
        synaptic_ops: result.total_synaptic_ops,
    }
}

/// Evaluates a network over a contiguous index range of a dataset.
///
/// # Errors
///
/// Propagates [`Network::run`] errors. Returns [`ModelError::EmptyTrainingSet`]
/// if the index range is empty.
pub fn evaluate<D: EventDataset>(
    network: &mut Network,
    dataset: &D,
    indices: std::ops::Range<u64>,
) -> Result<Evaluation, ModelError> {
    if indices.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    let classes = dataset.num_classes();
    let mut confusion = vec![vec![0usize; classes]; classes];
    let mut correct = 0usize;
    let mut samples = 0usize;
    let mut activity_sum = 0.0;
    let mut min_activity = f64::INFINITY;
    let mut max_activity = 0.0f64;
    let mut sop_sum = 0.0;
    let mut input_spike_sum = 0.0;

    for index in indices {
        let sample = dataset.sample(index);
        let result = network.run_stream(&sample.stream)?;
        let classification = classification_from(&result);
        if classification.predicted == sample.label {
            correct += 1;
        }
        confusion[sample.label][classification.predicted.min(classes - 1)] += 1;
        activity_sum += classification.activity;
        min_activity = min_activity.min(classification.activity);
        max_activity = max_activity.max(classification.activity);
        sop_sum += classification.synaptic_ops as f64;
        input_spike_sum += result.input_spikes as f64;
        samples += 1;
    }

    Ok(Evaluation {
        samples,
        correct,
        mean_activity: activity_sum / samples as f64,
        min_activity,
        max_activity,
        mean_synaptic_ops: sop_sum / samples as f64,
        mean_input_spikes: input_spike_sum / samples as f64,
        confusion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::NeuronConfig;
    use crate::topology::Topology;
    use crate::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_event::datasets::MotionPattern;
    use sne_event::datasets::{EventDataset, PatternDataset};
    use sne_event::{Event, EventStream};

    fn dataset() -> PatternDataset {
        PatternDataset::new(
            16,
            16,
            2,
            20,
            vec![
                MotionPattern::TranslatingBar {
                    speed: 1.0,
                    width: 2,
                },
                MotionPattern::OrbitingBlob {
                    angular_speed: 0.3,
                    radius_fraction: 0.6,
                    blob_radius: 2,
                },
            ],
            3,
        )
    }

    fn network() -> Network {
        let mut rng = StdRng::seed_from_u64(5);
        Topology::tiny(Shape::new(2, 16, 16), 4, 2)
            .build_random(NeuronConfig::default_lif(), &mut rng)
            .unwrap()
    }

    #[test]
    fn classify_returns_a_valid_class() {
        let mut net = network();
        let sample = dataset().sample(0);
        let c = classify(&mut net, &sample.stream).unwrap();
        assert!(c.predicted < 2);
        assert_eq!(c.spike_counts.len(), 2);
        assert!(c.activity >= 0.0 && c.activity <= 1.0);
    }

    #[test]
    fn evaluate_builds_a_consistent_confusion_matrix() {
        let mut net = network();
        let eval = evaluate(&mut net, &dataset(), 0..6).unwrap();
        assert_eq!(eval.samples, 6);
        let confusion_total: usize = eval.confusion.iter().flatten().sum();
        assert_eq!(confusion_total, 6);
        assert!(eval.accuracy() >= 0.0 && eval.accuracy() <= 1.0);
        assert!(eval.min_activity <= eval.max_activity);
        assert!(eval.mean_input_spikes > 0.0);
    }

    #[test]
    fn empty_range_is_rejected() {
        let mut net = network();
        assert!(matches!(
            evaluate(&mut net, &dataset(), 5..5),
            Err(ModelError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn evaluation_accuracy_handles_zero_samples() {
        let eval = Evaluation {
            samples: 0,
            correct: 0,
            mean_activity: 0.0,
            min_activity: 0.0,
            max_activity: 0.0,
            mean_synaptic_ops: 0.0,
            mean_input_spikes: 0.0,
            confusion: Vec::new(),
        };
        assert_eq!(eval.accuracy(), 0.0);
    }

    #[test]
    fn classify_propagates_shape_errors() {
        let mut net = network();
        let mut stream = EventStream::new(8, 8, 2, 20);
        stream.push(Event::update(0, 0, 1, 1)).unwrap();
        assert!(classify(&mut net, &stream).is_err());
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced while building or running the functional model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two consecutive layers disagree on the tensor shape between them.
    ShapeMismatch {
        /// Human-readable location (layer index or name).
        location: String,
        /// Shape the producing side emits, as `(channels, height, width)`.
        expected: (u16, u16, u16),
        /// Shape the consuming side received.
        found: (u16, u16, u16),
    },
    /// A layer parameter is invalid (zero kernel, zero channels, …).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// The network has no layers.
    EmptyNetwork,
    /// A quantization scale is not positive or not finite.
    InvalidScale(f32),
    /// Training was asked to run with an empty dataset or zero batch size.
    EmptyTrainingSet,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                location,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch at {location}: expected {}x{}x{}, found {}x{}x{}",
                expected.0, expected.1, expected.2, found.0, found.1, found.2
            ),
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::EmptyNetwork => write!(f, "network has no layers"),
            Self::InvalidScale(scale) => {
                write!(f, "quantization scale {scale} must be positive and finite")
            }
            Self::EmptyTrainingSet => write!(
                f,
                "training requires at least one sample and a non-zero batch size"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            ModelError::ShapeMismatch {
                location: "layer 2".to_owned(),
                expected: (32, 16, 16),
                found: (32, 8, 8),
            },
            ModelError::InvalidParameter {
                name: "kernel",
                reason: "must be odd".to_owned(),
            },
            ModelError::EmptyNetwork,
            ModelError::InvalidScale(-1.0),
            ModelError::EmptyTrainingSet,
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}

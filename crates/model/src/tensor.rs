//! Small dense tensor types used by the functional model.
//!
//! The reference model operates on per-timestep *frames*: binary spike frames
//! ([`Frame`]) for spiking inference and real-valued rate maps ([`RateMap`])
//! for the rate-based surrogate trainer. Both are row-major `[C, H, W]`
//! volumes with a shared [`Shape`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a `[channels, height, width]` volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Number of channels.
    pub channels: u16,
    /// Height in neurons/pixels.
    pub height: u16,
    /// Width in neurons/pixels.
    pub width: u16,
}

impl Shape {
    /// Creates a shape.
    #[must_use]
    pub fn new(channels: u16, height: u16, width: u16) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.channels) * usize::from(self.height) * usize::from(self.width)
    }

    /// Returns `true` if any dimension is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels == 0 || self.height == 0 || self.width == 0
    }

    /// Row-major linear index of `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinates are out of range.
    #[must_use]
    pub fn index(&self, c: u16, y: u16, x: u16) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (usize::from(c) * usize::from(self.height) + usize::from(y)) * usize::from(self.width)
            + usize::from(x)
    }

    /// Spatial size `height * width`.
    #[must_use]
    pub fn spatial(&self) -> usize {
        usize::from(self.height) * usize::from(self.width)
    }

    /// Shape as the `(channels, height, width)` tuple used in error messages.
    #[must_use]
    pub fn as_tuple(&self) -> (u16, u16, u16) {
        (self.channels, self.height, self.width)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// A binary spike frame (one timestep of a feature map).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    shape: Shape,
    data: Vec<bool>,
}

impl Frame {
    /// Creates an all-zero frame.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Self {
            data: vec![false; shape.len()],
            shape,
        }
    }

    /// Shape of the frame.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Spike bit at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn get(&self, c: u16, y: u16, x: u16) -> bool {
        self.data[self.shape.index(c, y, x)]
    }

    /// Sets the spike bit at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set(&mut self, c: u16, y: u16, x: u16, value: bool) {
        let idx = self.shape.index(c, y, x);
        self.data[idx] = value;
    }

    /// Number of set bits.
    #[must_use]
    pub fn spike_count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Fraction of set bits.
    #[must_use]
    pub fn activity(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.spike_count() as f64 / self.data.len() as f64
        }
    }

    /// Iterates over the coordinates of set bits as `(c, y, x)`.
    pub fn spikes(&self) -> impl Iterator<Item = (u16, u16, u16)> + '_ {
        let shape = self.shape;
        self.data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| {
                let x = (i % usize::from(shape.width)) as u16;
                let rest = i / usize::from(shape.width);
                let y = (rest % usize::from(shape.height)) as u16;
                let c = (rest / usize::from(shape.height)) as u16;
                (c, y, x)
            })
    }

    /// Underlying data as a slice (row-major `[C, H, W]`).
    #[must_use]
    pub fn as_slice(&self) -> &[bool] {
        &self.data
    }
}

/// A real-valued activation map used by the rate-based trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateMap {
    shape: Shape,
    data: Vec<f32>,
}

impl RateMap {
    /// Creates an all-zero map.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a map from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    #[must_use]
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "rate map data does not match its shape"
        );
        Self { shape, data }
    }

    /// Shape of the map.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Value at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn get(&self, c: u16, y: u16, x: u16) -> f32 {
        self.data[self.shape.index(c, y, x)]
    }

    /// Sets the value at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set(&mut self, c: u16, y: u16, x: u16, value: f32) {
        let idx = self.shape.index(c, y, x);
        self.data[idx] = value;
    }

    /// Underlying data as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Underlying data as a mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Builds a rate map by averaging binary frames over time.
    #[must_use]
    pub fn from_frames(frames: &[Frame]) -> Self {
        assert!(!frames.is_empty(), "cannot average zero frames");
        let shape = frames[0].shape();
        let mut data = vec![0.0f32; shape.len()];
        for frame in frames {
            assert_eq!(frame.shape(), shape, "all frames must share a shape");
            for (acc, &bit) in data.iter_mut().zip(frame.as_slice()) {
                if bit {
                    *acc += 1.0;
                }
            }
        }
        let n = frames.len() as f32;
        for value in &mut data {
            *value /= n;
        }
        Self { shape, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_index() {
        let s = Shape::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.spatial(), 12);
        assert!(!s.is_empty());
        assert!(Shape::new(0, 3, 4).is_empty());
    }

    #[test]
    fn frame_set_get_and_counts() {
        let mut f = Frame::zeros(Shape::new(2, 3, 4));
        f.set(1, 2, 3, true);
        f.set(0, 0, 0, true);
        assert!(f.get(1, 2, 3));
        assert!(!f.get(0, 1, 1));
        assert_eq!(f.spike_count(), 2);
        assert!((f.activity() - 2.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn frame_spikes_iterates_coordinates() {
        let mut f = Frame::zeros(Shape::new(2, 3, 4));
        f.set(1, 2, 3, true);
        f.set(0, 1, 2, true);
        let spikes: Vec<_> = f.spikes().collect();
        assert_eq!(spikes.len(), 2);
        assert!(spikes.contains(&(1, 2, 3)));
        assert!(spikes.contains(&(0, 1, 2)));
    }

    #[test]
    fn rate_map_from_frames_averages() {
        let shape = Shape::new(1, 1, 2);
        let mut a = Frame::zeros(shape);
        a.set(0, 0, 0, true);
        let mut b = Frame::zeros(shape);
        b.set(0, 0, 0, true);
        b.set(0, 0, 1, true);
        let rate = RateMap::from_frames(&[a, b]);
        assert!((rate.get(0, 0, 0) - 1.0).abs() < 1e-6);
        assert!((rate.get(0, 0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rate_map_from_vec_checks_length() {
        let _ = RateMap::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn display_shape() {
        assert_eq!(Shape::new(32, 16, 8).to_string(), "32x16x8");
    }
}

//! Quantization utilities: 4-bit synaptic weights and 8-bit membrane state.
//!
//! The SNE stores synaptic weights on 4 bits (two's complement, `-8..=7`) and
//! the membrane potential on 8 bits (`-128..=127`), see paper §III-D.4 and
//! Table II. Training happens in floating point (in the `train` module); the
//! helpers here map trained weights to the hardware integer grid with a
//! per-layer scale, and provide the saturating arithmetic of the datapath.

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// Smallest representable 4-bit weight.
pub const WEIGHT_MIN: i8 = -8;
/// Largest representable 4-bit weight.
pub const WEIGHT_MAX: i8 = 7;
/// Smallest representable 8-bit membrane state.
pub const STATE_MIN: i8 = i8::MIN;
/// Largest representable 8-bit membrane state.
pub const STATE_MAX: i8 = i8::MAX;
/// Number of bits used for synaptic weights.
pub const WEIGHT_BITS: u8 = 4;
/// Number of bits used for the membrane state.
pub const STATE_BITS: u8 = 8;

/// Clamps a 64-bit value into an arbitrary `[lo, hi]` interval and narrows it
/// to 32 bits.
#[must_use]
pub fn clamp_i64(value: i64, lo: i64, hi: i64) -> i32 {
    value.clamp(lo, hi) as i32
}

/// Saturating addition on the 8-bit membrane grid.
#[must_use]
pub fn saturating_state_add(state: i32, delta: i32) -> i32 {
    clamp_i64(
        i64::from(state) + i64::from(delta),
        i64::from(STATE_MIN),
        i64::from(STATE_MAX),
    )
}

/// Quantizes a single floating-point weight to the 4-bit grid with the given
/// scale (`w_q = round(w / scale)` clamped to `[-8, 7]`).
///
/// # Errors
///
/// Returns [`ModelError::InvalidScale`] if `scale` is not positive and finite.
pub fn quantize_weight(weight: f32, scale: f32) -> Result<i8, ModelError> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(ModelError::InvalidScale(scale));
    }
    let q = (weight / scale).round();
    Ok(q.clamp(f32::from(WEIGHT_MIN), f32::from(WEIGHT_MAX)) as i8)
}

/// Reconstructs the floating-point value of a quantized weight.
#[must_use]
pub fn dequantize_weight(weight: i8, scale: f32) -> f32 {
    f32::from(weight) * scale
}

/// Chooses the per-layer quantization scale that maps the largest absolute
/// weight onto the edge of the 4-bit grid (symmetric max-abs calibration).
///
/// Returns 1.0 for an all-zero weight set so that quantization is still
/// well defined.
#[must_use]
pub fn calibrate_scale(weights: &[f32]) -> f32 {
    let max_abs = weights.iter().fold(0.0f32, |acc, &w| acc.max(w.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / f32::from(WEIGHT_MAX)
    }
}

/// A set of weights quantized to the 4-bit hardware grid, together with the
/// scale needed to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    /// Quantized values on the `[-8, 7]` grid.
    pub values: Vec<i8>,
    /// Scale such that `float ≈ value * scale`.
    pub scale: f32,
}

impl QuantizedWeights {
    /// Quantizes a float weight vector with max-abs calibration.
    #[must_use]
    pub fn from_floats(weights: &[f32]) -> Self {
        let scale = calibrate_scale(weights);
        let values = weights
            .iter()
            .map(|&w| quantize_weight(w, scale).expect("calibrated scale is positive"))
            .collect();
        Self { values, scale }
    }

    /// Quantizes with an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScale`] if `scale` is not positive and
    /// finite.
    pub fn with_scale(weights: &[f32], scale: f32) -> Result<Self, ModelError> {
        let values = weights
            .iter()
            .map(|&w| quantize_weight(w, scale))
            .collect::<Result<_, _>>()?;
        Ok(Self { values, scale })
    }

    /// Reconstructed floating-point weights.
    #[must_use]
    pub fn to_floats(&self) -> Vec<f32> {
        self.values
            .iter()
            .map(|&v| dequantize_weight(v, self.scale))
            .collect()
    }

    /// Worst-case absolute quantization error over the original weights.
    #[must_use]
    pub fn max_error(&self, original: &[f32]) -> f32 {
        self.to_floats()
            .iter()
            .zip(original)
            .map(|(q, o)| (q - o).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_grid_is_4_bits() {
        assert_eq!(i32::from(WEIGHT_MAX) - i32::from(WEIGHT_MIN) + 1, 16);
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        assert_eq!(quantize_weight(0.26, 0.1).unwrap(), 3);
        assert_eq!(quantize_weight(-0.26, 0.1).unwrap(), -3);
        assert_eq!(quantize_weight(10.0, 0.1).unwrap(), WEIGHT_MAX);
        assert_eq!(quantize_weight(-10.0, 0.1).unwrap(), WEIGHT_MIN);
    }

    #[test]
    fn invalid_scales_are_rejected() {
        assert!(quantize_weight(1.0, 0.0).is_err());
        assert!(quantize_weight(1.0, -1.0).is_err());
        assert!(quantize_weight(1.0, f32::NAN).is_err());
        assert!(quantize_weight(1.0, f32::INFINITY).is_err());
    }

    #[test]
    fn calibration_maps_max_to_grid_edge() {
        let weights = [0.5, -1.4, 0.7];
        let scale = calibrate_scale(&weights);
        assert_eq!(quantize_weight(-1.4, scale).unwrap(), -7);
        // Zero weights quantize to zero.
        assert_eq!(quantize_weight(0.0, scale).unwrap(), 0);
    }

    #[test]
    fn zero_weights_calibrate_to_unit_scale() {
        assert_eq!(calibrate_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(calibrate_scale(&[]), 1.0);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let weights: Vec<f32> = (-20..=20).map(|i| i as f32 * 0.05).collect();
        let q = QuantizedWeights::from_floats(&weights);
        // Max-abs calibration bounds the error of in-range weights by scale/2.
        assert!(q.max_error(&weights) <= q.scale / 2.0 + 1e-6);
    }

    #[test]
    fn saturating_state_add_clamps_both_ends() {
        assert_eq!(saturating_state_add(120, 20), i32::from(STATE_MAX));
        assert_eq!(saturating_state_add(-120, -20), i32::from(STATE_MIN));
        assert_eq!(saturating_state_add(10, 5), 15);
    }

    #[test]
    fn dequantize_inverts_quantize_on_grid_points() {
        let scale = 0.25;
        for v in WEIGHT_MIN..=WEIGHT_MAX {
            let f = dequantize_weight(v, scale);
            assert_eq!(quantize_weight(f, scale).unwrap(), v);
        }
    }

    #[test]
    fn with_scale_propagates_errors() {
        assert!(QuantizedWeights::with_scale(&[1.0], 0.0).is_err());
        let q = QuantizedWeights::with_scale(&[1.0, -0.5], 0.5).unwrap();
        assert_eq!(q.values, vec![2, -1]);
    }
}

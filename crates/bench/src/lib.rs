//! Shared helpers for the benchmark binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see `DESIGN.md` for the experiment index); the helpers
//! here build the workloads and networks those binaries share.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sne::compile::CompiledNetwork;
use sne::SneAccelerator;
use sne_event::{Event, EventStream};
use sne_model::topology::Topology;
use sne_model::Shape;
use sne_sim::SneConfig;

/// The slice counts swept by Fig. 4 and Fig. 5.
pub const SLICE_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Input activity range the paper measures on IBM DVS-Gesture (§IV-B).
pub const DVS_GESTURE_ACTIVITY_RANGE: (f64, f64) = (0.012, 0.049);

/// Builds a small eCNN (two accelerated layers) with random 4-bit weights on
/// a `resolution x resolution` two-polarity input, used as the benchmark
/// workload when a trained network is not needed.
///
/// # Panics
///
/// Panics if the topology cannot be compiled (it always can for the
/// resolutions used by the benches).
#[must_use]
pub fn benchmark_network(
    resolution: u16,
    hidden_channels: u16,
    classes: u16,
    seed: u64,
) -> CompiledNetwork {
    let topology = Topology::tiny(
        Shape::new(2, resolution, resolution),
        hidden_channels,
        classes,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    CompiledNetwork::random(&topology, &mut rng).expect("benchmark topology compiles")
}

/// Builds the paper's Fig. 6 topology at a reduced resolution, compiled with
/// random 4-bit weights.
///
/// # Panics
///
/// Panics if the topology cannot be compiled (requires `resolution >= 16`).
#[must_use]
pub fn fig6_network(resolution: u16, classes: u16, seed: u64) -> CompiledNetwork {
    let topology = Topology::paper_fig6(Shape::new(2, resolution, resolution), classes);
    let mut rng = StdRng::seed_from_u64(seed);
    CompiledNetwork::random(&topology, &mut rng).expect("fig6 topology compiles")
}

/// Generates a deterministic input stream with approximately the requested
/// activity for a square two-polarity input.
#[must_use]
pub fn workload(resolution: u16, timesteps: u32, activity: f64, seed: u64) -> EventStream {
    sne::proportionality::stream_with_activity(
        (2, resolution, resolution),
        timesteps,
        activity,
        seed,
    )
}

/// The worst-case power-benchmark layer of §IV-A.2: every input event causes
/// a state update on every cluster of every slice. A dense layer whose output
/// count equals the engine's neuron capacity has exactly that property.
///
/// # Panics
///
/// Panics if the mapping cannot be constructed (it always can for the paper
/// configurations).
#[must_use]
pub fn full_activity_mapping(config: &SneConfig) -> sne_sim::LayerMapping {
    use sne_sim::mapping::{LifHardwareParams, MapShape};
    let outputs = config.total_neurons().min(usize::from(u16::MAX)) as u16;
    let input = MapShape::new(1, 1, 16);
    let weights = vec![1i8; usize::from(outputs) * input.len()];
    sne_sim::LayerMapping::dense(
        input,
        outputs,
        weights,
        LifHardwareParams {
            leak: 0,
            threshold: 100,
        },
    )
    .expect("full-activity mapping is valid")
}

/// Input stream for the power benchmark: events spread over 100 timesteps
/// (the paper's benchmark layer spreads its input over 100 timesteps).
#[must_use]
pub fn full_activity_stream(events_per_timestep: usize) -> EventStream {
    let mut stream = EventStream::new(16, 1, 1, 100);
    for t in 0..100 {
        for i in 0..events_per_timestep {
            stream.push_unchecked(Event::update(t, 0, (i % 16) as u16, 0));
        }
    }
    stream
}

/// Convenience: one accelerator per slice count of the sweep.
#[must_use]
pub fn accelerator_sweep() -> Vec<(usize, SneAccelerator)> {
    SLICE_SWEEP
        .iter()
        .map(|&s| (s, SneAccelerator::new(SneConfig::with_slices(s))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_network_compiles_and_runs() {
        let network = benchmark_network(8, 2, 3, 1);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(1));
        let stream = workload(8, 8, 0.05, 2);
        let result = accelerator.run(&network, &stream).unwrap();
        assert!(result.stats.total_cycles > 0);
    }

    #[test]
    fn full_activity_mapping_touches_every_cluster() {
        let config = SneConfig::with_slices(2);
        let mapping = full_activity_mapping(&config);
        assert_eq!(mapping.total_output_neurons(), config.total_neurons());
    }

    #[test]
    fn workload_activity_is_close_to_request() {
        let stream = workload(16, 50, 0.03, 3);
        assert!((stream.activity() - 0.03).abs() < 0.01);
    }

    #[test]
    fn accelerator_sweep_covers_the_paper_configs() {
        let sweep = accelerator_sweep();
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[3].1.config().num_slices, 8);
    }
}

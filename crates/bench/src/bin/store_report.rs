//! Measures the durable session store (DESIGN.md §14) and emits a
//! machine-readable `BENCH_store.json`, with **bit-exact round-trip and
//! corruption-rejection asserted before any timing is reported**. Phases:
//!
//! 1. **Codec** — `snapshot_client`/`restore_client` throughput on a
//!    mid-stream client of the 16x16 bench network, with the decoded
//!    state asserted equal to the live one.
//! 2. **Store** — `park`/`load` latency through `SessionStore`, under
//!    both fsync policies: `Never` is the serve default for benchmarks,
//!    `Always` is what the crash-recovery harness runs and is priced
//!    here so the durability cost stays visible.
//! 3. **Recovery** — a store of parked sessions plus three injected
//!    faults (flipped byte, truncated snapshot, torn `.tmp`) is
//!    re-opened and scanned with full validation: every intact session
//!    must be adopted, every fault counted and deleted.
//! 4. **Format gates** — bad magic, header corruption, payload flips,
//!    truncations and a re-sealed future `FORMAT_VERSION` must each fail
//!    with their precise error, never decode.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin store_report            # full run
//! cargo run --release -p sne_bench --bin store_report -- --smoke # CI smoke
//! cargo run --release -p sne_bench --bin store_report -- --out x.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use sne::artifact::RuntimeArtifact;
use sne::batch::LatencySummary;
use sne::sne_store::{
    fnv1a, FsyncPolicy, Header, SessionStore, StoreError, FORMAT_VERSION, HEADER_LEN,
};
use sne::SneError;
use sne_bench::benchmark_network;
use sne_event::EventStream;
use sne_sim::{ExecStrategy, SneConfig};

/// Chunks pushed before the measured snapshot is taken: the state is
/// mid-stream, not a trivial all-zeros reset.
const WARMUP_CHUNKS: usize = 4;

struct OpResult {
    iters: usize,
    latency: LatencySummary,
    mb_per_s: f64,
}

/// Times `iters` runs of `op`, returning per-op latency and throughput
/// in snapshot megabytes per second.
fn time_op(iters: usize, bytes_per_op: usize, mut op: impl FnMut()) -> OpResult {
    let mut samples = Vec::with_capacity(iters);
    let start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        op();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = start.elapsed().as_secs_f64();
    OpResult {
        iters,
        latency: LatencySummary::from_samples_us(&samples),
        mb_per_s: (iters * bytes_per_op) as f64 / elapsed / 1e6,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sne-store-report-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hex(id: &str) -> String {
    id.bytes().map(|b| format!("{b:02x}")).collect()
}

/// The recovery validation the serve layer runs at boot: an O(1) header
/// probe against the registered artifact's digest, then a full decode
/// proof before adoption.
fn validates(artifact: &RuntimeArtifact, bytes: &[u8]) -> bool {
    let Ok(header) = Header::parse(bytes) else {
        return false;
    };
    header.artifact_digest == artifact.state_digest() && artifact.restore_client(bytes).is_ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_store.json".to_owned());

    let (codec_iters, park_never_iters, park_always_iters, recovery_sessions) = if smoke {
        (40, 40, 8, 12)
    } else {
        (400, 400, 64, 64)
    };

    // The same 16x16 two-layer eCNN the serve bench runs: the snapshot is
    // a realistically sized mid-stream client state, not a toy.
    let network = benchmark_network(16, 8, 5, 5);
    let artifact = RuntimeArtifact::new(network, SneConfig::with_slices(4)).expect("artifact");
    let mut engine = artifact.new_engine(ExecStrategy::Sequential);
    let mut client = artifact.new_client();
    let feed = sne::proportionality::stream_with_activity((2, 16, 16), 24, 0.03, 4242);
    let chunks: Vec<EventStream> = feed.chunks(4).collect();
    for chunk in chunks.iter().take(WARMUP_CHUNKS) {
        artifact
            .push(&mut engine, &mut client, chunk, true)
            .unwrap();
    }
    let bytes = artifact.snapshot_client(&client);
    let snapshot_bytes = bytes.len();

    // Gate first, time second: the decode must reproduce the live state
    // bit-identically before any throughput number means anything.
    assert_eq!(
        artifact.restore_client(&bytes).unwrap(),
        client,
        "snapshot round-trip is not bit-identical"
    );
    let artifact_bytes = artifact.snapshot_artifact();
    let reloaded = RuntimeArtifact::restore_artifact(&artifact_bytes).unwrap();
    assert_eq!(
        reloaded.state_digest(),
        artifact.state_digest(),
        "artifact snapshot round-trip changed the state digest"
    );

    println!(
        "durable store: {snapshot_bytes} B client snapshot, {} B artifact snapshot (16x16 eCNN, slices 4)",
        artifact_bytes.len()
    );
    println!("round-trip bit-exactness: verified before timing");
    println!();

    // ---- codec phase -------------------------------------------------------
    let encode = time_op(codec_iters, snapshot_bytes, || {
        std::hint::black_box(artifact.snapshot_client(&client));
    });
    let decode = time_op(codec_iters, snapshot_bytes, || {
        std::hint::black_box(artifact.restore_client(&bytes).unwrap());
    });
    println!(
        "encode {:>4} iters: {:>7.1} MB/s   p50 {:>7.1} us   p99 {:>7.1} us",
        encode.iters, encode.mb_per_s, encode.latency.p50_us, encode.latency.p99_us
    );
    println!(
        "decode {:>4} iters: {:>7.1} MB/s   p50 {:>7.1} us   p99 {:>7.1} us",
        decode.iters, decode.mb_per_s, decode.latency.p50_us, decode.latency.p99_us
    );

    // ---- store phase -------------------------------------------------------
    // Re-parking one hot id is exactly the serve write path: every push
    // replaces that session's snapshot through a tmp-file rename.
    let dir = scratch_dir("ops");
    let mut results = Vec::new();
    for (name, policy, iters) in [
        ("park_fsync_never", FsyncPolicy::Never, park_never_iters),
        ("park_fsync_always", FsyncPolicy::Always, park_always_iters),
    ] {
        let mut store = SessionStore::open(dir.join(name), policy).expect("store opens");
        let result = time_op(iters, snapshot_bytes, || {
            store.park("hot", &bytes).expect("park");
        });
        println!(
            "{name:<18} {:>4} iters: {:>7.1} MB/s   p50 {:>7.1} us   p99 {:>7.1} us",
            result.iters, result.mb_per_s, result.latency.p50_us, result.latency.p99_us
        );
        results.push((name, result));
    }
    let store = SessionStore::open(dir.join("park_fsync_never"), FsyncPolicy::Never).unwrap();
    let load = time_op(park_never_iters, snapshot_bytes, || {
        let loaded = store.load("hot").expect("load").expect("present");
        std::hint::black_box(loaded);
    });
    println!(
        "{:<18} {:>4} iters: {:>7.1} MB/s   p50 {:>7.1} us   p99 {:>7.1} us",
        "load", load.iters, load.mb_per_s, load.latency.p50_us, load.latency.p99_us
    );
    results.push(("load", load));

    // ---- recovery phase ----------------------------------------------------
    // A populated store plus three injected faults: a flipped byte inside
    // one snapshot, a truncated snapshot, and a torn in-flight `.tmp`.
    let recovery_dir = scratch_dir("recovery");
    {
        let mut store = SessionStore::open(&recovery_dir, FsyncPolicy::Never).unwrap();
        for s in 0..recovery_sessions {
            store.park(&format!("r{s}"), &bytes).unwrap();
        }
    }
    let victim = recovery_dir.join(format!("s{}.snap", hex("r0")));
    let mut flipped = std::fs::read(&victim).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&victim, &flipped).unwrap();
    std::fs::write(recovery_dir.join("s6a756e6b.snap"), &bytes[..21]).unwrap();
    std::fs::write(recovery_dir.join("s746f726e.tmp"), b"torn mid-write").unwrap();

    let scan_start = Instant::now();
    let mut store = SessionStore::open(&recovery_dir, FsyncPolicy::Never).unwrap();
    let report = store
        .recover(|_, candidate| validates(&artifact, candidate))
        .expect("recovery scan");
    let scan_ms = scan_start.elapsed().as_secs_f64() * 1e3;
    let recovered = report.recovered.len();
    assert_eq!(
        recovered,
        recovery_sessions - 1,
        "every intact session must be adopted"
    );
    assert_eq!(
        report.discarded, 3,
        "flipped + truncated + torn must each be a counted discard"
    );
    assert!(!victim.exists(), "discarded snapshots must be deleted");
    println!(
        "recover {recovery_sessions} sessions + 3 faults: {recovered} adopted, {} discarded, {scan_ms:.1} ms ({:.1} us/snapshot)",
        report.discarded,
        scan_ms * 1e3 / recovery_sessions as f64
    );

    // ---- format gates ------------------------------------------------------
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        artifact.restore_client(&wrong_magic),
        Err(SneError::Snapshot(StoreError::BadMagic))
    ));
    let mut bad_header = bytes.clone();
    bad_header[9] ^= 0x10;
    assert!(matches!(
        artifact.restore_client(&bad_header),
        Err(SneError::Snapshot(StoreError::HeaderCorrupt))
    ));
    let mut bad_payload = bytes.clone();
    let last = bad_payload.len() - 1;
    bad_payload[last] ^= 0x01;
    assert!(matches!(
        artifact.restore_client(&bad_payload),
        Err(SneError::Snapshot(StoreError::DigestMismatch { .. }))
    ));
    for cut in [3, HEADER_LEN - 1, bytes.len() - 1] {
        assert!(artifact.restore_client(&bytes[..cut]).is_err());
    }
    // A future format version, re-sealed the way a real v2 writer would:
    // refused as UnsupportedVersion, never misread with v1 rules.
    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let reseal = fnv1a(&future[..HEADER_LEN - 8]);
    future[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&reseal.to_le_bytes());
    assert!(matches!(
        artifact.restore_client(&future),
        Err(SneError::Snapshot(StoreError::UnsupportedVersion(v))) if v == FORMAT_VERSION + 1
    ));
    println!(
        "format gates: magic, header checksum, payload digest, truncation, version — all refused"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&recovery_dir);

    // ---- report ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"store_report\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"format_version\": {FORMAT_VERSION},\n"));
    json.push_str(&format!(
        "  \"workload\": {{\"network\": \"tiny_16x16\", \"slices\": 4, \"warmup_chunks\": {WARMUP_CHUNKS}}},\n"
    ));
    json.push_str(&format!(
        "  \"snapshot_bytes\": {snapshot_bytes},\n  \"artifact_snapshot_bytes\": {},\n",
        artifact_bytes.len()
    ));
    let mut ops: Vec<(&str, &OpResult)> = vec![("encode", &encode), ("decode", &decode)];
    ops.extend(results.iter().map(|(n, r)| (*n, r)));
    json.push_str("  \"ops\": {\n");
    for (i, (name, r)) in ops.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"iters\": {}, \"mb_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}}}{}\n",
            r.iters,
            r.mb_per_s,
            r.latency.p50_us,
            r.latency.p99_us,
            r.latency.mean_us,
            if i + 1 < ops.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"recovery\": {{\"sessions\": {recovery_sessions}, \"injected_faults\": 3, \"recovered\": {recovered}, \"discarded\": {}, \"scan_ms\": {scan_ms:.2}}},\n",
        report.discarded
    ));
    json.push_str(
        "  \"gates\": {\"round_trip_bit_exact\": true, \"corruption_rejected\": true, \"future_version_refused\": true}\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");

    println!();
    println!("wrote {out_path}");
}

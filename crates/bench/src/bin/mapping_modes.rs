//! Compares the two SNE mapping modes of §III-D.5 on the same workload:
//! time-multiplexed execution through external memory versus pipelined
//! layer-per-slice execution through the C-XBAR.

use sne::SneAccelerator;
use sne_bench::{benchmark_network, workload};
use sne_sim::SneConfig;

fn main() {
    println!("Mapping modes — time-multiplexed vs pipelined layer-per-slice (8 slices)");
    println!();
    let network = benchmark_network(16, 8, 11, 5);
    let stream = workload(16, 100, 0.02, 41);
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));

    let tm = accelerator
        .run(&network, &stream)
        .expect("time-multiplexed run succeeds");
    let pipelined = accelerator
        .run_pipelined(&network, &stream)
        .expect("pipelined run succeeds");

    for (label, result) in [("time-multiplexed", &tm), ("pipelined", &pipelined)] {
        println!(
            "{label:<17} | cycles {:>10} | {:8.3} ms | {:7.1} inf/s | {:8.2} uJ | prediction {}",
            result.stats.total_cycles,
            result.inference_time_ms,
            result.inference_rate,
            result.energy.energy_uj,
            result.predicted_class
        );
    }
    println!();
    println!(
        "speedup of the pipelined mode: {:.2}x (functional results identical: {})",
        tm.inference_time_ms / pipelined.inference_time_ms,
        tm.output_spike_counts == pipelined.output_spike_counts
    );
    println!();
    println!("The pipelined mode requires every layer to fit its slice allocation in a");
    println!("single pass; larger layers (e.g. the full Fig. 6 network) must fall back");
    println!("to the time-multiplexed mode through external memory.");
}

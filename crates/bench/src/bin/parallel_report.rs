//! Measures the wall-clock scaling of the parallel executor and emits a
//! machine-readable `BENCH_parallel.json`, tracking the threading trajectory
//! from PR to PR (the companion of `BENCH_session.json`).
//!
//! Two workloads, each swept over 1/2/4/8 host worker threads:
//!
//! * `batch16` — a 16-lane [`BatchRunner`] serving 16 Fig. 6 streams, lanes
//!   driven on worker threads (the fleet-serving scenario);
//! * `engine_slices` — one engine's per-slice worker fan-out inside a single
//!   inference.
//!
//! The binary asserts that every thread count produces **bit-identical**
//! aggregate statistics before reporting any timing. Note the measured
//! speedups are bounded by the host's available parallelism (recorded in the
//! JSON as `host_parallelism`): on a single-core runner all thread counts
//! legitimately measure ~1.0x.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin parallel_report                   # full sweep
//! cargo run --release -p sne_bench --bin parallel_report -- --smoke        # CI smoke
//! cargo run --release -p sne_bench --bin parallel_report -- --threads auto # 1 vs auto
//! cargo run --release -p sne_bench --bin parallel_report -- --threads 4    # 1 vs 4
//! cargo run --release -p sne_bench --bin parallel_report -- --out x.json
//! ```
//!
//! `--threads auto` sweeps only the sequential baseline against
//! [`ExecStrategy::auto`] — the self-tuning strategy that resolves to
//! `Sequential` on a single-core host (where the full sweep can only
//! document spawn overhead, e.g. the 0.48x engine_slices point an earlier
//! 1-core artifact recorded) and to the host's available parallelism
//! otherwise.

use std::time::Instant;

use sne::batch::BatchRunner;
use sne::session::InferenceSession;
use sne::ExecStrategy;
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Sweep {
    name: &'static str,
    /// `(threads, mean wall-clock ms per run)` in sweep order.
    points: Vec<(usize, f64)>,
}

impl Sweep {
    fn mean_ms(&self, threads: usize) -> f64 {
        self.points
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, ms)| *ms)
            .unwrap_or(f64::NAN)
    }

    fn speedup(&self, threads: usize) -> f64 {
        self.mean_ms(1) / self.mean_ms(threads)
    }
}

fn measure(iterations: u32, mut run: impl FnMut() -> u64) -> f64 {
    let _ = run(); // warm-up: thread pools, page faults, lazy buffers
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..iterations {
        checksum = checksum.wrapping_add(run());
    }
    assert!(checksum > 0, "benchmark workload produced no cycles");
    start.elapsed().as_secs_f64() * 1e3 / f64::from(iterations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let batch_iterations: u32 = if smoke { 2 } else { 15 };
    let engine_iterations: u32 = if smoke { 5 } else { 60 };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    // --threads auto (or N) restricts the sweep to the sequential baseline
    // plus that one strategy; the default sweeps 1/2/4/8.
    let threads_arg = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1).cloned());
    let auto_threads = ExecStrategy::auto().threads();
    let sweep: Vec<usize> = match threads_arg.as_deref() {
        Some("auto") => {
            let mut s = vec![1];
            if auto_threads > 1 {
                s.push(auto_threads);
            }
            s
        }
        Some(n) => {
            let n: usize = n
                .parse()
                .unwrap_or_else(|_| panic!("--threads expects a number or \"auto\", got {n:?}"));
            let mut s = vec![1];
            if n > 1 {
                s.push(n);
            }
            s
        }
        None => THREAD_SWEEP.to_vec(),
    };

    let network = fig6_network(32, 11, 5);
    let config = SneConfig::with_slices(8);
    let streams: Vec<_> = (0..16).map(|i| workload(32, 12, 0.01, 100 + i)).collect();

    // --- batch16: 16 lanes over 16 streams, lanes on worker threads -------
    let mut batch_reference: Option<sne::BatchReport> = None;
    let mut batch = Sweep {
        name: "batch16",
        points: Vec::new(),
    };
    for &threads in &sweep {
        let mut runner = BatchRunner::with_exec(
            network.clone(),
            config,
            16,
            ExecStrategy::from_threads(threads),
        )
        .unwrap();
        // Bit-exactness gate: every thread count must reproduce the
        // sequential report (modulo the recorded thread count itself and
        // the host-measured serving telemetry, which varies run to run).
        let mut report = runner.run(&streams).unwrap();
        report.threads = 1;
        report.queue_latency = Default::default();
        report.service_latency = Default::default();
        report.lane_utilization.clear();
        report.utilization_spread = 0.0;
        report.steals = 0;
        report.affinity_hits = 0;
        report.affinity_misses = 0;
        match &batch_reference {
            None => batch_reference = Some(report),
            Some(reference) => assert_eq!(
                &report, reference,
                "batch report at {threads} threads diverged from sequential"
            ),
        }
        let mean = measure(batch_iterations, || {
            runner.run(&streams).unwrap().total_stats.total_cycles
        });
        batch.points.push((threads, mean));
    }

    // --- engine_slices: per-slice fan-out inside one inference ------------
    let mut engine_reference: Option<u64> = None;
    let mut engine = Sweep {
        name: "engine_slices",
        points: Vec::new(),
    };
    for &threads in &sweep {
        let mut session = InferenceSession::with_exec(
            network.clone(),
            config,
            ExecStrategy::from_threads(threads),
        )
        .unwrap();
        let cycles = session.infer(&streams[0]).unwrap().stats.total_cycles;
        match engine_reference {
            None => engine_reference = Some(cycles),
            Some(reference) => assert_eq!(
                cycles, reference,
                "engine stats at {threads} threads diverged from sequential"
            ),
        }
        let mean = measure(engine_iterations, || {
            session.infer(&streams[0]).unwrap().stats.total_cycles
        });
        engine.points.push((threads, mean));
    }

    let sweeps = [&batch, &engine];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_scaling\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!(
        "  \"auto_resolves_to\": {auto_threads},\n  \"threads_arg\": \"{}\",\n",
        threads_arg.as_deref().unwrap_or("sweep")
    ));
    json.push_str(&format!(
        "  \"iterations\": {{\"batch16\": {batch_iterations}, \"engine_slices\": {engine_iterations}}},\n"
    ));
    json.push_str(
        "  \"workload\": {\"network\": \"fig6_32x32\", \"timesteps\": 12, \"activity\": 0.01, \"slices\": 8, \"lanes\": 16, \"streams\": 16},\n",
    );
    json.push_str("  \"strategy\": \"threads=1 is Sequential, otherwise Threaded(n)\",\n");
    for (i, sweep) in sweeps.iter().enumerate() {
        json.push_str(&format!("  \"{}\": {{\n", sweep.name));
        for (j, (threads, mean)) in sweep.points.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {{\"mean_ms\": {:.3}, \"speedup_vs_1\": {:.3}}}{}\n",
                threads,
                mean,
                sweep.speedup(*threads),
                if j + 1 < sweep.points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  }}{}\n",
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");

    println!(
        "Parallel executor scaling — Fig. 6 @ 32x32, 1 % activity, 8 slices (host parallelism: {host_parallelism})"
    );
    println!();
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "sweep", "threads", "ms/run", "speedup"
    );
    for sweep in sweeps {
        for (threads, mean) in &sweep.points {
            println!(
                "{:<16} {:>10} {:>12.3} {:>9.2}x",
                sweep.name,
                threads,
                mean,
                sweep.speedup(*threads)
            );
        }
    }
    println!();
    let headline = *sweep.last().unwrap_or(&1);
    println!(
        "batch16 speedup at {} threads: {:.2}x (bit-exact across all thread counts: verified; auto resolves to {} on this host)",
        headline,
        batch.speedup(headline),
        auto_threads
    );
    println!("wrote {out_path}");
}

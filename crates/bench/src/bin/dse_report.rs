//! Design-space exploration report: sweeps slices, clusters per slice and
//! TDM neurons per cluster with the calibrated models and prints the
//! area/performance Pareto front (the "configurable engine" exploration the
//! paper's conclusion motivates).

use sne_energy::dse::{format_design_point, SweepSpace};

fn main() {
    let space = SweepSpace::default();
    let mut points = space.evaluate();
    points.sort_by(|a, b| {
        a.area_kge
            .partial_cmp(&b.area_kge)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    println!("Design-space exploration ({} configurations)", points.len());
    println!();
    println!("full sweep (sorted by area):");
    for point in &points {
        println!("  {}", format_design_point(point));
    }

    let mut front = space.pareto_front();
    front.sort_by(|a, b| {
        a.area_kge
            .partial_cmp(&b.area_kge)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!();
    println!("Pareto front (max GSOP/s, min area):");
    for point in &front {
        println!("  {}", format_design_point(point));
    }
    println!();
    println!("The published 8-slice, 16-cluster, 64-neuron instance sits on the front:");
    let paper = points
        .iter()
        .find(|p| p.slices == 8 && p.clusters_per_slice == 16 && p.neurons_per_cluster == 64);
    if let Some(point) = paper {
        println!("  {}", format_design_point(point));
    }
}

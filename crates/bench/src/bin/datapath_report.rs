//! Measures the compiled sparse datapath (plan) against the naive mapping
//! walk and emits a machine-readable `BENCH_datapath.json`, tracking the
//! host-time trajectory of the event datapath from PR to PR (the companion of
//! `BENCH_session.json` and `BENCH_parallel.json`).
//!
//! The workload is the Fig. 6 @ 32x32 / 12-timestep session inference, swept
//! over three input activities (0.1 %, 1 %, 10 %). For every activity the
//! binary first asserts that the plan and the naive oracle produce the
//! **bit-identical** inference result, and only then times both datapaths.
//! Two headline numbers come out:
//!
//! * `speedup_at_1pct` — plan vs naive host time on the 1 %-activity Fig. 6
//!   workload (the PR's ≥2x acceptance metric);
//! * `plan_host_us_ratio_0p1_vs_10pct` — plan host time at 0.1 % activity
//!   over plan host time at 10 % activity: energy proportionality of the
//!   *host* datapath (the modelled cycles were proportional all along).
//!
//! ```bash
//! cargo run --release -p sne_bench --bin datapath_report                 # full run
//! cargo run --release -p sne_bench --bin datapath_report -- --smoke     # CI smoke
//! cargo run --release -p sne_bench --bin datapath_report -- --out x.json
//! ```

use std::time::Instant;

use sne::session::InferenceSession;
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

/// The swept input activities: 0.1 %, 1 % (the session-bench anchor), 10 %.
const ACTIVITIES: [f64; 3] = [0.001, 0.01, 0.1];

struct Point {
    activity: f64,
    input_events: u64,
    naive_us: f64,
    plan_us: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.naive_us / self.plan_us
    }
}

/// Measures two closures by alternating batches and taking each side's
/// median batch mean: interleaving cancels machine drift between the two
/// measurement phases and the median rejects interference outliers, so the
/// reported ratio reflects the datapaths, not the host's scheduling noise.
fn measure_pair_us(
    batches: u32,
    batch_iterations: u32,
    mut a: impl FnMut() -> u64,
    mut b: impl FnMut() -> u64,
) -> (f64, f64) {
    let mut checksum = a().wrapping_add(b()); // warm-up: lazy buffers, page faults
    let batch = |run: &mut dyn FnMut() -> u64| {
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..batch_iterations {
            sum = sum.wrapping_add(run());
        }
        (
            start.elapsed().as_secs_f64() * 1e6 / f64::from(batch_iterations),
            sum,
        )
    };
    let mut a_means = Vec::new();
    let mut b_means = Vec::new();
    for _ in 0..batches {
        let (mean, sum) = batch(&mut a);
        a_means.push(mean);
        checksum = checksum.wrapping_add(sum);
        let (mean, sum) = batch(&mut b);
        b_means.push(mean);
        checksum = checksum.wrapping_add(sum);
    }
    assert!(checksum > 0, "benchmark workload produced no cycles");
    let median = |means: &mut Vec<f64>| {
        means.sort_by(f64::total_cmp);
        means[means.len() / 2]
    };
    (median(&mut a_means), median(&mut b_means))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_datapath.json".to_owned());
    let (batches, batch_iterations): (u32, u32) = if smoke { (1, 3) } else { (9, 10) };
    let iterations = batches * batch_iterations;

    let config = SneConfig::with_slices(8);
    let network = fig6_network(32, 11, 5);
    let plan_entries: usize = network
        .build_plans()
        .iter()
        .map(|p| p.table_entries())
        .sum();

    let mut points = Vec::new();
    for (i, &activity) in ACTIVITIES.iter().enumerate() {
        let stream = workload(32, 12, activity, 7 + i as u64);

        let mut planned = InferenceSession::new(network.clone(), config).unwrap();
        let mut naive = InferenceSession::new(network.clone(), config).unwrap();
        naive.set_plan_enabled(false);

        // Bit-exactness gate: the compiled datapath must reproduce the naive
        // oracle exactly — outputs, stats, energy — before anything is timed.
        let plan_result = planned.infer(&stream).unwrap();
        let naive_result = naive.infer(&stream).unwrap();
        assert_eq!(
            plan_result, naive_result,
            "plan and naive datapaths diverged at activity {activity}"
        );

        let (naive_us, plan_us) = measure_pair_us(
            batches,
            batch_iterations,
            || naive.infer(&stream).unwrap().stats.total_cycles,
            || planned.infer(&stream).unwrap().stats.total_cycles,
        );
        points.push(Point {
            activity,
            input_events: plan_result.input_events(),
            naive_us,
            plan_us,
        });
    }

    let at = |a: f64| points.iter().find(|p| p.activity == a).unwrap();
    let speedup_at_1pct = at(0.01).speedup();
    let proportionality_ratio = at(0.001).plan_us / at(0.1).plan_us;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"datapath\",\n");
    json.push_str("  \"datapath\": \"plan\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"iterations\": {iterations},\n"));
    json.push_str(
        "  \"workload\": {\"network\": \"fig6_32x32\", \"timesteps\": 12, \"slices\": 8},\n",
    );
    json.push_str(&format!("  \"plan_table_entries\": {plan_entries},\n"));
    json.push_str("  \"bit_exact\": true,\n");
    json.push_str("  \"activities\": {\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"input_events\": {}, \"naive_us\": {:.2}, \"plan_us\": {:.2}, \"speedup\": {:.3}}}{}\n",
            p.activity,
            p.input_events,
            p.naive_us,
            p.plan_us,
            p.speedup(),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"speedup_at_1pct\": {speedup_at_1pct:.3},\n"));
    json.push_str(&format!(
        "  \"plan_host_us_ratio_0p1_vs_10pct\": {proportionality_ratio:.4},\n"
    ));
    json.push_str(&format!(
        "  \"proportionality_demonstrated\": {}\n",
        proportionality_ratio <= 0.5
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_datapath.json");

    println!("Sparse datapath — compiled plan vs naive mapping walk (Fig. 6 @ 32x32, 8 slices)");
    println!("plan tables: {plan_entries} entries (bit-exact with the naive oracle: verified)");
    println!();
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>9}",
        "activity", "events", "naive us", "plan us", "speedup"
    );
    for p in &points {
        println!(
            "{:<10} {:>10} {:>12.1} {:>12.1} {:>8.2}x",
            format!("{:.1}%", p.activity * 100.0),
            p.input_events,
            p.naive_us,
            p.plan_us,
            p.speedup()
        );
    }
    println!();
    println!("speedup at 1% activity: {speedup_at_1pct:.2}x (target >= 2x)");
    println!(
        "plan host time, 0.1% vs 10% activity: {proportionality_ratio:.4} (target <= 0.5: energy-proportional host time)"
    );
    println!("wrote {out_path}");

    if !smoke {
        // Regression guards (smoke runs skip them — 3 iterations are too
        // noisy to judge by). The speedup gate sits below the 2x headline on
        // purpose: the measured ratio is ~2.1x, and a genuine datapath
        // regression lands far below 1.8, while shared-runner noise does
        // not — the committed full-run artifact is what demonstrates >= 2x.
        assert!(
            speedup_at_1pct >= 1.8,
            "plan datapath regressed: expected ~2x over naive at 1% activity"
        );
        assert!(
            proportionality_ratio <= 0.5,
            "host time must be activity-proportional (0.1% <= 0.5x of 10%)"
        );
    }
}

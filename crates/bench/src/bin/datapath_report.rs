//! Measures the compiled sparse datapath (plan) against the naive mapping
//! walk and emits a machine-readable `BENCH_datapath.json`, tracking the
//! host-time trajectory of the event datapath from PR to PR (the companion of
//! `BENCH_session.json` and `BENCH_parallel.json`).
//!
//! The workload is the Fig. 6 @ 32x32 session inference over 48 timesteps
//! (long enough that the 0.1 % point carries ~200 input events and its ratio
//! is measurement-stable), swept over three input activities (0.1 %, 1 %,
//! 10 %). For every activity the binary first asserts that the compiled plan
//! reproduces the naive oracle **bit-identically** and that the blocked
//! kernel reproduces the scalar oracle bit-identically, and only then times
//! the datapaths. Three headline numbers come out:
//!
//! * `speedup_at_1pct` — plan vs naive host time at 1 % activity (the
//!   longstanding ≥2x acceptance metric);
//! * `speedup_at_0p1pct` — plan vs naive at 0.1 % activity: the sparse floor
//!   where per-run setup used to dominate;
//! * `speedup_blocked_vs_scalar_at_1pct` — the blocked/SIMD kernel against
//!   the scalar oracle on the same plan datapath.
//!
//! The host-time floor is decomposed by two zero-activity runs (48 and 96
//! timesteps): extrapolating to zero timesteps isolates the per-run `setup_us`
//! from the per-timestep floor, and subtracting the 48-timestep floor from an
//! active run isolates each activity's event-side cost — so the JSON shows
//! *where* low-activity host time goes, not just the total.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin datapath_report                    # full run
//! cargo run --release -p sne_bench --bin datapath_report -- --smoke        # CI smoke
//! cargo run --release -p sne_bench --bin datapath_report -- --kernel scalar
//! cargo run --release -p sne_bench --bin datapath_report -- --out x.json
//! ```

use std::time::Instant;

use sne::session::InferenceSession;
use sne_bench::{fig6_network, workload};
use sne_sim::simd::BLOCK_LANES;
use sne_sim::{Kernel, SneConfig};

/// The swept input activities: 0.1 %, 1 % (the session-bench anchor), 10 %.
const ACTIVITIES: [f64; 3] = [0.001, 0.01, 0.1];

/// Timesteps of every measured workload (and of the shorter floor anchor).
const TIMESTEPS: u32 = 48;

struct Point {
    activity: f64,
    input_events: u64,
    naive_us: f64,
    plan_us: f64,
    /// Plan host time of the scalar oracle kernel, from the dedicated
    /// scalar-vs-blocked interleaved pair (not rescaled onto `plan_us`).
    scalar_plan_us: f64,
    /// Plan host time of the blocked kernel from that same pair.
    blocked_plan_us: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.naive_us / self.plan_us
    }

    /// Blocked-vs-scalar ratio from the same interleaved pair, so machine
    /// drift between measurement phases cannot fake (or hide) a kernel win.
    fn kernel_speedup(&self) -> f64 {
        self.scalar_plan_us / self.blocked_plan_us
    }
}

/// Measures two closures by alternating batches and taking each side's
/// median batch mean: interleaving cancels machine drift between the two
/// measurement phases and the median rejects interference outliers, so the
/// reported ratio reflects the datapaths, not the host's scheduling noise.
fn measure_pair_us(
    batches: u32,
    batch_iterations: u32,
    mut a: impl FnMut() -> u64,
    mut b: impl FnMut() -> u64,
) -> (f64, f64) {
    let mut checksum = a().wrapping_add(b()); // warm-up: lazy buffers, page faults
    let batch = |run: &mut dyn FnMut() -> u64| {
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..batch_iterations {
            sum = sum.wrapping_add(run());
        }
        (
            start.elapsed().as_secs_f64() * 1e6 / f64::from(batch_iterations),
            sum,
        )
    };
    let mut a_means = Vec::new();
    let mut b_means = Vec::new();
    for _ in 0..batches {
        let (mean, sum) = batch(&mut a);
        a_means.push(mean);
        checksum = checksum.wrapping_add(sum);
        let (mean, sum) = batch(&mut b);
        b_means.push(mean);
        checksum = checksum.wrapping_add(sum);
    }
    assert!(checksum > 0, "benchmark workload produced no cycles");
    let median = |means: &mut Vec<f64>| {
        means.sort_by(f64::total_cmp);
        means[means.len() / 2]
    };
    (median(&mut a_means), median(&mut b_means))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_datapath.json".to_owned());
    let kernel_arg = args
        .iter()
        .position(|a| a == "--kernel")
        .and_then(|i| args.get(i + 1).cloned());
    let kernel = match kernel_arg.as_deref() {
        None => Kernel::auto(),
        Some(name) => Kernel::parse(name).unwrap_or_else(|| {
            eprintln!("unknown kernel {name:?} (expected scalar|blocked|auto)");
            std::process::exit(2);
        }),
    };
    let (batches, batch_iterations): (u32, u32) = if smoke { (1, 3) } else { (9, 8) };
    let iterations = batches * batch_iterations;

    let config = SneConfig::with_slices(8);
    let network = fig6_network(32, 11, 5);
    let plans = network.build_plans();
    let plan_entries: usize = plans.iter().map(|p| p.table_entries()).sum();
    let plan_bytes: usize = plans.iter().map(|p| p.table_bytes()).sum();
    drop(plans);

    let session = |kernel: Kernel, plan: bool| -> InferenceSession {
        let mut s = InferenceSession::new(network.clone(), config).unwrap();
        s.set_kernel(kernel);
        s.set_plan_enabled(plan);
        s
    };

    // Host-time floor decomposition: two zero-activity runs bracket the
    // per-run setup (extrapolated to zero timesteps) and the per-timestep
    // floor; both datapaths are measured so the floor is attributable.
    let zero_short = workload(32, TIMESTEPS, 0.0, 7);
    let zero_long = workload(32, 2 * TIMESTEPS, 0.0, 7);
    let mut floor_plan_short = session(kernel, true);
    let mut floor_plan_long = session(kernel, true);
    let (zero_short_plan_us, zero_long_plan_us) = measure_pair_us(
        batches,
        batch_iterations,
        || {
            floor_plan_short
                .infer(&zero_short)
                .unwrap()
                .stats
                .total_cycles
        },
        || {
            floor_plan_long
                .infer(&zero_long)
                .unwrap()
                .stats
                .total_cycles
        },
    );
    let mut floor_naive_short = session(kernel, false);
    let mut floor_naive_long = session(kernel, false);
    let (zero_short_naive_us, _) = measure_pair_us(
        batches,
        batch_iterations,
        || {
            floor_naive_short
                .infer(&zero_short)
                .unwrap()
                .stats
                .total_cycles
        },
        || {
            floor_naive_long
                .infer(&zero_long)
                .unwrap()
                .stats
                .total_cycles
        },
    );
    let setup_us = (2.0 * zero_short_plan_us - zero_long_plan_us).max(0.0);
    let timestep_floor_us =
        (zero_long_plan_us - zero_short_plan_us).max(0.0) / f64::from(TIMESTEPS);

    let mut points = Vec::new();
    for (i, &activity) in ACTIVITIES.iter().enumerate() {
        let stream = workload(32, TIMESTEPS, activity, 7 + i as u64);

        let mut planned = session(kernel, true);
        let mut naive = session(kernel, false);
        let mut scalar_planned = session(Kernel::Scalar, true);
        let mut blocked_planned = session(Kernel::Blocked, true);

        // Bit-exactness gates, asserted before anything is timed: the
        // compiled datapath must reproduce the naive oracle exactly, and the
        // blocked kernel must reproduce the scalar oracle exactly — outputs,
        // stats, energy.
        let plan_result = planned.infer(&stream).unwrap();
        let naive_result = naive.infer(&stream).unwrap();
        assert_eq!(
            plan_result, naive_result,
            "plan and naive datapaths diverged at activity {activity}"
        );
        let scalar_result = scalar_planned.infer(&stream).unwrap();
        let blocked_result = blocked_planned.infer(&stream).unwrap();
        assert_eq!(
            blocked_result, scalar_result,
            "blocked and scalar kernels diverged at activity {activity}"
        );

        let (naive_us, plan_us) = measure_pair_us(
            batches,
            batch_iterations,
            || naive.infer(&stream).unwrap().stats.total_cycles,
            || planned.infer(&stream).unwrap().stats.total_cycles,
        );
        let (scalar_plan_us, blocked_plan_us) = measure_pair_us(
            batches,
            batch_iterations,
            || scalar_planned.infer(&stream).unwrap().stats.total_cycles,
            || blocked_planned.infer(&stream).unwrap().stats.total_cycles,
        );
        points.push(Point {
            activity,
            input_events: plan_result.input_events(),
            naive_us,
            plan_us,
            scalar_plan_us,
            blocked_plan_us,
        });
    }

    let at = |a: f64| points.iter().find(|p| p.activity == a).unwrap();
    let speedup_at_1pct = at(0.01).speedup();
    let speedup_at_0p1pct = at(0.001).speedup();
    let kernel_speedup_at_1pct = at(0.01).kernel_speedup();
    let proportionality_ratio = at(0.001).plan_us / at(0.1).plan_us;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"datapath\",\n");
    json.push_str("  \"datapath\": \"plan\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"kernel\": \"{}\",\n", kernel.name()));
    json.push_str(&format!(
        "  \"kernel_vectorized\": {},\n",
        kernel.is_vectorized()
    ));
    json.push_str(&format!("  \"block_lanes\": {BLOCK_LANES},\n"));
    json.push_str(&format!("  \"iterations\": {iterations},\n"));
    json.push_str(&format!(
        "  \"workload\": {{\"network\": \"fig6_32x32\", \"timesteps\": {TIMESTEPS}, \"slices\": 8}},\n",
    ));
    json.push_str(&format!("  \"plan_table_entries\": {plan_entries},\n"));
    json.push_str(&format!("  \"plan_table_bytes\": {plan_bytes},\n"));
    json.push_str("  \"bit_exact\": true,\n");
    json.push_str("  \"phases\": {\n");
    json.push_str(&format!("    \"setup_us\": {setup_us:.2},\n"));
    json.push_str(&format!(
        "    \"timestep_floor_us\": {timestep_floor_us:.4},\n"
    ));
    json.push_str(&format!(
        "    \"zero_floor_plan_us\": {zero_short_plan_us:.2},\n"
    ));
    json.push_str(&format!(
        "    \"zero_floor_naive_us\": {zero_short_naive_us:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"activities\": {\n");
    for (i, p) in points.iter().enumerate() {
        let event_us = (p.plan_us - zero_short_plan_us).max(0.0);
        json.push_str(&format!(
            "    \"{}\": {{\"input_events\": {}, \"naive_us\": {:.2}, \"plan_us\": {:.2}, \"scalar_plan_us\": {:.2}, \"event_us\": {:.2}, \"speedup\": {:.3}, \"kernel_speedup\": {:.3}}}{}\n",
            p.activity,
            p.input_events,
            p.naive_us,
            p.plan_us,
            p.scalar_plan_us,
            event_us,
            p.speedup(),
            p.kernel_speedup(),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"speedup_at_1pct\": {speedup_at_1pct:.3},\n"));
    json.push_str(&format!(
        "  \"speedup_at_0p1pct\": {speedup_at_0p1pct:.3},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_blocked_vs_scalar_at_1pct\": {kernel_speedup_at_1pct:.3},\n"
    ));
    json.push_str(&format!(
        "  \"plan_host_us_ratio_0p1_vs_10pct\": {proportionality_ratio:.4},\n"
    ));
    json.push_str(&format!(
        "  \"proportionality_demonstrated\": {}\n",
        proportionality_ratio <= 0.5
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_datapath.json");

    println!(
        "Sparse datapath — compiled plan vs naive mapping walk (Fig. 6 @ 32x32, 8 slices, {TIMESTEPS} ts)"
    );
    println!(
        "kernel: {} ({} lanes{}) | plan tables: {} entries, {} bytes resident | bit-exact: verified",
        kernel.name(),
        BLOCK_LANES,
        if kernel.is_vectorized() {
            ", vectorized"
        } else {
            ""
        },
        plan_entries,
        plan_bytes
    );
    println!(
        "floor: setup {setup_us:.1} us/run + {timestep_floor_us:.2} us/timestep (zero-activity plan {zero_short_plan_us:.1} us, naive {zero_short_naive_us:.1} us)"
    );
    println!();
    println!(
        "{:<10} {:>8} {:>11} {:>11} {:>11} {:>10} {:>9} {:>8}",
        "activity", "events", "naive us", "plan us", "scalar us", "event us", "speedup", "kernel"
    );
    for p in &points {
        println!(
            "{:<10} {:>8} {:>11.1} {:>11.1} {:>11.1} {:>10.1} {:>8.2}x {:>7.2}x",
            format!("{:.1}%", p.activity * 100.0),
            p.input_events,
            p.naive_us,
            p.plan_us,
            p.scalar_plan_us,
            (p.plan_us - zero_short_plan_us).max(0.0),
            p.speedup(),
            p.kernel_speedup()
        );
    }
    println!();
    println!("speedup at 1% activity: {speedup_at_1pct:.2}x (target >= 2x)");
    println!("speedup at 0.1% activity: {speedup_at_0p1pct:.2}x (target >= 1.8x)");
    println!("blocked vs scalar at 1% activity: {kernel_speedup_at_1pct:.2}x (target >= 1.3x)");
    println!(
        "plan host time, 0.1% vs 10% activity: {proportionality_ratio:.4} (target <= 0.5: energy-proportional host time)"
    );
    println!("wrote {out_path}");

    if !smoke {
        // Regression guards (smoke runs skip them — 3 iterations are too
        // noisy to judge by). Each gate sits below its headline on purpose:
        // a genuine datapath regression lands far below the gate, while
        // shared-runner noise does not — the committed full-run artifact is
        // what demonstrates the headline ratios.
        assert!(
            speedup_at_1pct >= 1.8,
            "plan datapath regressed: expected ~2.5x over naive at 1% activity"
        );
        assert!(
            speedup_at_0p1pct >= 1.6,
            "sparse floor regressed: expected ~1.9x over naive at 0.1% activity"
        );
        assert!(
            proportionality_ratio <= 0.5,
            "host time must be activity-proportional (0.1% <= 0.5x of 10%)"
        );
        if kernel == Kernel::Blocked && Kernel::host_default() == Kernel::Blocked {
            assert!(
                kernel_speedup_at_1pct >= 1.15,
                "blocked kernel regressed: expected ~1.35x over scalar at 1% activity"
            );
        }
    }
}

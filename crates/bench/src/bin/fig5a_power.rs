//! Regenerates Fig. 5a: power consumption versus number of slices at the
//! paper's benchmark activity (all clusters updating, ~5 % output activity).

use sne_bench::{full_activity_mapping, full_activity_stream, SLICE_SWEEP};
use sne_energy::report::format_power_row;
use sne_energy::PowerModel;
use sne_sim::{Engine, SneConfig};

fn main() {
    let model = PowerModel::default();
    println!("Fig. 5a — SNE power at the worst-case benchmark layer (mW)");
    println!("paper reference: dynamic power dominates; 11.29 mW total at 8 slices");
    println!();
    for slices in SLICE_SWEEP {
        let config = SneConfig::with_slices(slices);
        // Run the benchmark layer on the cycle simulator to obtain the
        // measured cluster utilization, then feed it to the power model.
        let mut engine = Engine::new(config);
        let mapping = full_activity_mapping(&config);
        let stream = full_activity_stream(8);
        let stats = engine
            .run_layer(&mapping, &stream)
            .expect("power benchmark layer runs")
            .stats;
        let measured = model.breakdown_for_run(&config, &stats);
        let nominal = model.breakdown_at_activity(&config, 1.0);
        println!("{}", format_power_row(slices, &nominal));
        println!(
            "           measured benchmark-layer utilization {:5.1}% -> {:6.2} mW",
            stats.cluster_utilization() * 100.0,
            measured.total()
        );
    }
}

//! Measures the compile-once/run-many speedup and emits a machine-readable
//! `BENCH_session.json`, so the performance trajectory of the execution
//! runtime is tracked from PR to PR.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin session_report                      # full run
//! cargo run --release -p sne_bench --bin session_report -- --smoke          # CI smoke
//! cargo run --release -p sne_bench --bin session_report -- --threads 4      # threaded engine
//! cargo run --release -p sne_bench --bin session_report -- --threads auto   # host-sized
//! cargo run --release -p sne_bench --bin session_report -- --out x.json
//! ```

use std::time::Instant;

use sne::batch::{BatchRunner, LatencySummary};
use sne::session::InferenceSession;
use sne::{ExecStrategy, SneAccelerator};
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

struct PathResult {
    name: &'static str,
    mean_us: f64,
    total_ms: f64,
    iterations: u32,
}

fn measure(name: &'static str, iterations: u32, mut run: impl FnMut() -> u64) -> PathResult {
    // One warm-up call keeps one-time costs out of the mean.
    let _ = run();
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..iterations {
        checksum = checksum.wrapping_add(run());
    }
    let elapsed = start.elapsed();
    // Keep the checksum observable so the calls cannot be optimized away.
    assert!(checksum > 0, "benchmark workload produced no cycles");
    let total_ms = elapsed.as_secs_f64() * 1e3;
    PathResult {
        name,
        mean_us: total_ms * 1e3 / f64::from(iterations),
        total_ms,
        iterations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_session.json".to_owned());
    // Engine execution strategy: --threads N fans the per-slice workers of
    // every measured path out over N host threads; --threads auto sizes the
    // fan-out to the host (sequential on a 1-core machine, where spawning
    // can only lose). Bit-identical results either way; the JSON records the
    // resolved strategy so artifacts are comparable.
    let threads_arg = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1).cloned());
    let exec = match threads_arg.as_deref() {
        Some("auto") => ExecStrategy::auto(),
        Some(n) => ExecStrategy::from_threads(n.parse().unwrap_or(1)),
        None => ExecStrategy::Sequential,
    };
    let iterations: u32 = if smoke { 5 } else { 100 };

    let config = SneConfig::with_slices(8);
    let stream = workload(32, 12, 0.01, 7);

    // Old path: compile + allocate + run, per call.
    let per_call = measure("per_call_compile_and_run", iterations, || {
        let network = fig6_network(32, 11, 5);
        let mut accelerator = SneAccelerator::with_exec(config, exec);
        accelerator
            .run(&network, &stream)
            .unwrap()
            .stats
            .total_cycles
    });

    // Middle ground: compile once, per-call accelerator entry point.
    let network = fig6_network(32, 11, 5);
    let mut accelerator = SneAccelerator::with_exec(config, exec);
    let reference = accelerator.run(&network, &stream).unwrap();
    let accel_reuse = measure("accelerator_reuse", iterations, || {
        accelerator
            .run(&network, &stream)
            .unwrap()
            .stats
            .total_cycles
    });

    // New path: one persistent session, repeated inference.
    let mut session = InferenceSession::with_exec(network.clone(), config, exec).unwrap();
    let session_result = session.infer(&stream).unwrap();
    let session_reuse = measure("session_infer", iterations, || {
        session.infer(&stream).unwrap().stats.total_cycles
    });

    // Streaming: same feed in 4-timestep chunks through one session.
    let mut streaming = InferenceSession::with_exec(network, config, exec).unwrap();
    let session_push = measure("session_push_chunks", iterations, || {
        streaming.reset();
        stream
            .chunks(4)
            .map(|c| streaming.push(&c).unwrap().stats.total_cycles)
            .sum()
    });

    let identical = reference.output_spike_counts == session_result.output_spike_counts
        && reference.predicted_class == session_result.predicted_class;
    let speedup = per_call.mean_us / session_reuse.mean_us;

    // Serving fleet: the work-stealing scheduler over a 4-lane/8-stream
    // workload, one worker per lane. Two measurements:
    //  - a closed burst (submit-all, drain) for fleet throughput and the
    //    modelled makespan, after a warmup batch that absorbs worker
    //    startup;
    //  - a paced open-loop phase (arrivals near the measured service rate,
    //    the serving steady state) for the gated latency/utilization row —
    //    a closed burst cannot gate queue-wait, since every job then waits
    //    on the backlog ahead of it by construction.
    let batch_streams: Vec<_> = (0..8).map(|i| workload(32, 12, 0.01, 70 + i)).collect();
    let mut runner = BatchRunner::with_exec(
        fig6_network(32, 11, 5),
        config,
        4,
        ExecStrategy::threaded(4),
    )
    .expect("runner builds");
    let _warmup = runner.run(&batch_streams).expect("warmup batch runs");
    let batch = runner.run(&batch_streams).expect("batch runs");

    let pace =
        std::time::Duration::from_micros((batch.service_latency.p50_us * 1.25).max(50.0) as u64);
    for stream in &batch_streams {
        let _ = runner.submit(stream.clone());
        std::thread::sleep(pace);
    }
    let paced_records = runner.drain();
    let paced_queue: Vec<f64> = paced_records.iter().map(|r| r.queue_us).collect();
    let paced_service: Vec<f64> = paced_records.iter().map(|r| r.service_us).collect();
    let paced_queue_summary = LatencySummary::from_samples_us(&paced_queue);
    let paced_service_summary = LatencySummary::from_samples_us(&paced_service);
    let mut paced_busy_us = vec![0.0f64; runner.lanes()];
    for record in &paced_records {
        paced_busy_us[record.lane] += record.service_us;
    }
    let paced_busy_mean = paced_busy_us.iter().sum::<f64>() / paced_busy_us.len() as f64;
    let paced_busy_min = paced_busy_us.iter().copied().fold(f64::INFINITY, f64::min);
    let paced_spread = if paced_busy_mean > 0.0 {
        (paced_busy_min / paced_busy_mean).min(1.0)
    } else {
        0.0
    };
    let queue_to_service_p50 = if paced_service_summary.p50_us > 0.0 {
        paced_queue_summary.p50_us / paced_service_summary.p50_us
    } else {
        0.0
    };

    // The fairness gates this report exists to keep honest — they run in
    // smoke mode too, so CI trips the moment a scheduler change re-grows
    // the one-hot-lane collapse or queueing beyond the hardware.
    assert!(
        batch.utilization_spread >= 0.25,
        "closed-burst lane collapse: utilization {:?} (spread {:.3})",
        batch.lane_utilization,
        batch.utilization_spread
    );
    // Paced placement is gated on job counts, not busy-time: wall-clock
    // service on a time-sliced host attributes arbitrarily across
    // interleaved lanes, but a collapsed placement leaves a lane at zero
    // jobs regardless of the clock (the busy-time spread stays reported
    // in the JSON as a trajectory metric).
    let mut paced_lane_jobs = vec![0usize; runner.lanes()];
    for record in &paced_records {
        paced_lane_jobs[record.lane] += 1;
    }
    assert!(
        paced_lane_jobs.iter().all(|&n| n >= 1),
        "paced serving starved a lane: {paced_lane_jobs:?} (busy {paced_busy_us:?})"
    );
    assert!(
        paced_queue_summary.p50_us <= 2.0 * paced_service_summary.p50_us,
        "paced arrivals queue on the scheduler: queue p50 {:.1} us vs service p50 {:.1} us",
        paced_queue_summary.p50_us,
        paced_service_summary.p50_us
    );

    let paths = [&per_call, &accel_reuse, &session_reuse, &session_push];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"session_reuse\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"iterations\": {},\n", iterations));
    json.push_str("  \"datapath\": \"plan\",\n");
    json.push_str(&format!("  \"threads\": {},\n", exec.threads()));
    json.push_str(&format!(
        "  \"strategy\": \"{}\",\n",
        if exec.is_parallel() {
            "threaded"
        } else {
            "sequential"
        }
    ));
    json.push_str(
        "  \"workload\": {\"network\": \"fig6_32x32\", \"timesteps\": 12, \"activity\": 0.01, \"slices\": 8},\n",
    );
    json.push_str("  \"paths\": {\n");
    for (i, p) in paths.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"mean_us\": {:.2}, \"total_ms\": {:.3}, \"iterations\": {}}}{}\n",
            p.name,
            p.mean_us,
            p.total_ms,
            p.iterations,
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"batch\": {{\"lanes\": {}, \"streams\": {}, \"threads\": {}, \"queue_p50_us\": {:.1}, \"queue_p99_us\": {:.1}, \"service_p50_us\": {:.1}, \"service_p95_us\": {:.1}, \"service_p99_us\": {:.1}, \"lane_utilization\": [{}], \"utilization_spread\": {:.3}, \"steals\": {}}},\n",
        batch.lanes,
        batch.results.len(),
        batch.threads,
        batch.queue_latency.p50_us,
        batch.queue_latency.p99_us,
        batch.service_latency.p50_us,
        batch.service_latency.p95_us,
        batch.service_latency.p99_us,
        batch
            .lane_utilization
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        batch.utilization_spread,
        batch.steals
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"lanes\": {}, \"streams\": {}, \"pace_us\": {}, \"queue_p50_us\": {:.1}, \"queue_p99_us\": {:.1}, \"service_p50_us\": {:.1}, \"service_p99_us\": {:.1}, \"queue_to_service_p50\": {:.3}, \"lane_busy_us\": [{}], \"utilization_spread\": {:.3}}},\n",
        runner.lanes(),
        paced_records.len(),
        pace.as_micros(),
        paced_queue_summary.p50_us,
        paced_queue_summary.p99_us,
        paced_service_summary.p50_us,
        paced_service_summary.p99_us,
        queue_to_service_p50,
        paced_busy_us
            .iter()
            .map(|u| format!("{u:.1}"))
            .collect::<Vec<_>>()
            .join(", "),
        paced_spread
    ));
    json.push_str(&format!(
        "  \"speedup_session_vs_per_call\": {:.3},\n",
        speedup
    ));
    json.push_str(&format!("  \"functionally_identical\": {}\n", identical));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_session.json");

    println!("Session runtime — compile-once/run-many vs per-call (8 slices, Fig. 6 @ 32x32, 1 % activity)");
    println!();
    for p in paths {
        println!("{:<26} {:>10.2} us/inference", p.name, p.mean_us);
    }
    println!();
    println!("session vs per-call speedup: {speedup:.2}x (functionally identical: {identical})");
    println!(
        "batch fleet ({} lanes, {} streams): service p50 {:.0} us / p99 {:.0} us, queue p99 {:.0} us, utilization [{}] (spread {:.2}, steals {})",
        batch.lanes,
        batch.results.len(),
        batch.service_latency.p50_us,
        batch.service_latency.p99_us,
        batch.queue_latency.p99_us,
        batch
            .lane_utilization
            .iter()
            .map(|u| format!("{u:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
        batch.utilization_spread,
        batch.steals
    );
    println!(
        "paced serving ({} us between arrivals): queue p50 {:.0} us vs service p50 {:.0} us ({:.2}x), spread {:.2}",
        pace.as_micros(),
        paced_queue_summary.p50_us,
        paced_service_summary.p50_us,
        queue_to_service_p50,
        paced_spread
    );
    println!("wrote {out_path}");
    assert!(
        identical,
        "session and accelerator paths must agree functionally"
    );
}

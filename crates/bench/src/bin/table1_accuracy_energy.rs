//! Regenerates Table I: classification accuracy (SRM baseline vs the
//! quantized SNE-LIF-4b network), energy per inference and inference rate on
//! the two event-based datasets.
//!
//! The real NMNIST and IBM DVS-Gesture recordings are replaced by the
//! synthetic surrogates of `sne-event::datasets` (see `DESIGN.md` §4), and
//! the networks are reduced versions of the paper topology so the whole
//! experiment runs in seconds on a laptop. Accuracy numbers therefore
//! measure the same *comparison* the paper makes (does 4-bit quantization
//! cost accuracy relative to the SRM baseline?) but are not comparable in
//! absolute terms to the published 92.8 % / 97.88 %.

use sne::compile::CompiledNetwork;
use sne::report::DatasetReport;
use sne::SneAccelerator;
use sne_energy::report::format_table1_row;
use sne_event::datasets::{EventDataset, GestureDataset, NmnistDataset};
use sne_model::inference::evaluate;
use sne_model::topology::Topology;
use sne_model::train::{to_srm_network, train, TrainConfig};
use sne_model::Shape;
use sne_sim::SneConfig;

struct DatasetOutcome {
    name: String,
    srm_accuracy: f64,
    lif_accuracy: f64,
    report: DatasetReport,
}

fn run_dataset<D: EventDataset>(name: &str, dataset: &D, topology: &Topology) -> DatasetOutcome {
    let train_range = 0..40u64;
    let test_range = 40..60u64;
    let config = TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.08,
        ..TrainConfig::default()
    };
    let outcome = train(topology, dataset, train_range, &config).expect("training succeeds");

    // SRM baseline accuracy (functional model).
    let mut srm = to_srm_network(&outcome.network).expect("SRM conversion succeeds");
    let srm_eval =
        evaluate(&mut srm, dataset, test_range.clone()).expect("SRM evaluation succeeds");

    // Quantized SNE-LIF-4b accuracy, measured on the cycle-accurate engine.
    let compiled =
        CompiledNetwork::from_rate_network(&outcome.network).expect("compilation succeeds");
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let mut results = Vec::new();
    let mut correct = Vec::new();
    for index in test_range {
        let sample = dataset.sample(index);
        let result = accelerator
            .run(&compiled, &sample.stream)
            .expect("inference succeeds");
        correct.push(result.predicted_class == sample.label);
        results.push(result);
    }
    let report = DatasetReport::from_results(name, &results, &correct);
    DatasetOutcome {
        name: name.to_owned(),
        srm_accuracy: srm_eval.accuracy(),
        lif_accuracy: report.accuracy,
        report,
    }
}

fn main() {
    println!("Table I — accuracy, energy per inference and inference rate");
    println!("paper reference:");
    println!("  NMNIST        | SRM 97.81% | SNE-LIF-4b 97.88% | 43-142 uJ/inf  | 261-79.5 inf/s");
    println!("  IBM DVS Gest. | SRM 92.42% | SNE-LIF-4b 92.80% | 80-261 uJ/inf  | 141-43 inf/s");
    println!();
    println!("reproduction on synthetic surrogate datasets (reduced networks):");

    let gesture = GestureDataset::new(16, 48, 42);
    let gesture_topology = Topology::tiny(Shape::new(2, 16, 16), 8, 11);
    let g = run_dataset("DVS-Gesture-like", &gesture, &gesture_topology);

    let nmnist = NmnistDataset::new(48, 7);
    let nmnist_topology = Topology::tiny(Shape::new(2, 34, 34), 8, 10);
    let n = run_dataset("NMNIST-like", &nmnist, &nmnist_topology);

    for outcome in [&n, &g] {
        println!(
            "{}",
            format_table1_row(
                &outcome.name,
                outcome.srm_accuracy,
                outcome.lif_accuracy,
                (outcome.report.min_energy_uj, outcome.report.max_energy_uj),
                (outcome.report.max_rate, outcome.report.min_rate),
            )
        );
    }
    println!();
    println!("details:");
    for outcome in [&n, &g] {
        println!("  {}", outcome.report.to_row());
        println!(
            "  {}: quantization accuracy delta (LIF-4b - SRM) = {:+.1} pp",
            outcome.name,
            (outcome.lif_accuracy - outcome.srm_accuracy) * 100.0
        );
    }
}

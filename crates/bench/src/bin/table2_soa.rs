//! Regenerates Table II: comparison with state-of-the-art neuromorphic
//! platforms, plus the 0.9 V extrapolation of §IV-C.

use sne_energy::comparison::{comparison_table, efficiency_improvement_over};
use sne_energy::report::format_platform_row;
use sne_energy::voltage::VoltageScaling;
use sne_energy::EnergyModel;
use sne_sim::SneConfig;

fn main() {
    let config = SneConfig::with_slices(8);
    println!("Table II — state-of-the-art comparison");
    println!(
        "{:<16} {:<8} {:<5} {:<9} {:<12} {:<9} {:>8} {:>9} {:>7} {:>7} {:>8} {:>7} {:>8} {:<5} {:>5}",
        "Name", "Impl.", "Tech", "Neuron", "Learning", "Type", "Neurons", "um2/neur", "GOP/s",
        "TOP/s/W", "pJ/SOP", "MHz", "mW", "bits", "V"
    );
    for record in comparison_table(&config) {
        println!("{}", format_platform_row(&record));
    }
    println!();
    if let Some(improvement) = efficiency_improvement_over(&config, "Tianjic") {
        println!("SNE efficiency improvement over Tianjic: {improvement:.2}x (paper: 3.55x)");
    }

    let energy = EnergyModel::new();
    let scaling = VoltageScaling::default();
    let e08 = energy.nominal_energy_per_sop_pj(&config);
    let eff08 = energy.nominal_efficiency_tsops_w(&config);
    println!(
        "0.9 V extrapolation: {:.3} pJ/SOP, {:.2} TSOP/s/W (paper: 0.248 pJ/SOP, 4.03 TSOP/s/W)",
        scaling.scale_energy(e08, 0.9),
        scaling.scale_efficiency(eff08, 0.9)
    );
}

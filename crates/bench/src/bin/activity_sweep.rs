//! Regenerates the §IV-B best/worst-case analysis: inference time, inference
//! rate and energy per inference at the 1.2 % and 4.9 % activity extremes
//! measured on IBM DVS-Gesture.

use sne::SneAccelerator;
use sne_bench::{fig6_network, workload, DVS_GESTURE_ACTIVITY_RANGE};
use sne_sim::SneConfig;

fn main() {
    println!("§IV-B — best/worst case inference time, rate and energy (8 slices)");
    println!(
        "paper reference: 7.1 ms / 23.12 ms, 141 / 43 inf/s, 80 / 261 uJ at 1.2% / 4.9% activity"
    );
    println!();

    // Reduced-resolution Fig. 6 network: the absolute times differ from the
    // paper's full-resolution deployment, but the ratio between the activity
    // extremes (the energy-proportionality claim) is preserved.
    let network = fig6_network(32, 11, 9);
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let (best, worst) = DVS_GESTURE_ACTIVITY_RANGE;

    let mut rows = Vec::new();
    for (label, activity) in [("best case (1.2%)", best), ("worst case (4.9%)", worst)] {
        let stream = workload(32, 100, activity, 17);
        let result = accelerator
            .run(&network, &stream)
            .expect("inference succeeds");
        println!(
            "{label:<18} | events {:>7} | {:8.3} ms | {:7.1} inf/s | {:8.2} uJ | {:.3} pJ/SOP",
            result.input_events(),
            result.inference_time_ms,
            result.inference_rate,
            result.energy.energy_uj,
            result.energy.energy_per_sop_pj
        );
        rows.push(result);
    }

    let time_ratio = rows[1].inference_time_ms / rows[0].inference_time_ms;
    let energy_ratio = rows[1].energy.energy_uj / rows[0].energy.energy_uj;
    println!();
    println!(
        "worst/best time ratio {:.2}x, energy ratio {:.2}x (paper: 23.12/7.1 = 3.26x, 261/80 = 3.26x)",
        time_ratio, energy_ratio
    );
}

//! Regenerates Fig. 5b: performance (GSOP/s) and energy per synaptic
//! operation (pJ/SOP) versus number of slices.

use sne_bench::SLICE_SWEEP;
use sne_energy::report::format_perf_row;
use sne_energy::{EnergyModel, PerformanceModel};
use sne_sim::SneConfig;

fn main() {
    let energy = EnergyModel::new();
    let performance = PerformanceModel::new();
    println!("Fig. 5b — SNE performance and energy per operation");
    println!("paper reference: 6.4/12.8/25.6/51.2 GSOP/s, 0.221 pJ/SOP at 8 slices");
    println!();
    for slices in SLICE_SWEEP {
        let config = SneConfig::with_slices(slices);
        let gsops = performance.peak_gsops(&config);
        let pj = energy.nominal_energy_per_sop_pj(&config);
        println!("{}", format_perf_row(slices, gsops, pj));
        println!(
            "           efficiency {:.2} TSOP/s/W, event latency {:.0} ns",
            energy.nominal_efficiency_tsops_w(&config),
            performance.event_latency_ns(&config)
        );
    }
}

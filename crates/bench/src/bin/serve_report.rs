//! Measures the serving front-end end to end over loopback HTTP and emits a
//! machine-readable `BENCH_serve.json`, with **bit-exactness against a
//! direct session asserted before any timing**. Four phases:
//!
//! 1. **Closed-loop** — 1/4/16 keep-alive clients issuing back-to-back
//!    requests: throughput and p50/p99 request latency per level.
//! 2. **Streaming sessions** — concurrent chunked sessions over keep-alive
//!    connections, exercising the scheduler's affinity hints (the
//!    `affinity_hits + affinity_misses > 0` telemetry gate).
//! 3. **Open-loop** — a fixed arrival-rate sweep (fractions of the measured
//!    closed-loop capacity). Latency is measured from each request's
//!    *scheduled* arrival, so queueing delay at over-capacity rates is not
//!    coordinated away; per-response server-side queue/service breakdowns
//!    identify what saturates first.
//! 4. **Idle soak** — thousands of parked keep-alive connections held
//!    through a quiet window: process CPU over the window must stay ~idle
//!    and every parked connection must still answer afterwards.
//! 5. **Durable tier** — the server runs with a park-to-disk session store
//!    (DESIGN.md §14) and a warm capacity smaller than the session count
//!    driven here, so LRU demotion and fault-in both fire; the report
//!    asserts the durability counters are live and records them.
//!
//! The closed-loop phase runs as a **shard sweep**: a 1-shard arm and an
//! N-shard arm (N from host parallelism, capped), each against a freshly
//! started server, so the report pins both the single-reactor baseline and
//! the multi-core scaling factor. `--shards N` pins a single arm instead.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin serve_report                   # full run (1-vs-N sweep)
//! cargo run --release -p sne_bench --bin serve_report -- --smoke        # CI smoke
//! cargo run --release -p sne_bench --bin serve_report -- --shards 2     # pin one arm, skip the sweep
//! cargo run --release -p sne_bench --bin serve_report -- --phase open   # open-loop + soak only
//! cargo run --release -p sne_bench --bin serve_report -- --out x.json
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sne::batch::LatencySummary;
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_bench::benchmark_network;
use sne_event::EventStream;
use sne_serve::client::{self, Connection};
use sne_serve::{FsyncPolicy, Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

/// Closed-loop concurrency levels (clients issuing back-to-back requests).
const CLIENT_LEVELS: [usize; 3] = [1, 4, 16];
/// Engines in the served model's pool.
const LANES: usize = 4;
/// Open-loop offered rates as fractions of measured closed-loop capacity.
const OPEN_FRACTIONS_FULL: [f64; 4] = [0.5, 0.8, 1.1, 1.5];
const OPEN_FRACTIONS_SMOKE: [f64; 2] = [0.8, 1.5];
/// Committed p99 at the 1-client closed-loop level (the regression floor),
/// evaluated on the 1-shard arm where one ran: sharding buys throughput and
/// the single-request path must not pay for it.
const P99_1CLIENT_FLOOR_US: f64 = 699.0;
/// Per-core throughput target, scaled by min(host cores, LANES): the engine
/// pool has LANES lanes, so cores beyond that stop adding serve capacity.
const THROUGHPUT_FLOOR_RPS_PER_CORE: f64 = 4800.0;
/// On a multi-core host the N-shard arm must clear this multiple of the
/// 1-shard arm's best closed-loop throughput (full runs only).
const SHARD_SPEEDUP_FLOOR: f64 = 1.5;
/// Top shard count for the automatic 1-vs-N sweep.
const SWEEP_SHARD_CAP: usize = 8;
/// Idle-soak CPU budget as a fraction of the soak window.
const SOAK_CPU_BUDGET: f64 = 0.10;
/// Warm-session capacity of the served model: the durability phase drives
/// more sessions than this so LRU park-to-disk demotion actually fires.
const WARM_CAPACITY: usize = 8;

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Closed,
    Open,
    All,
}

struct LevelResult {
    clients: usize,
    requests: u32,
    throughput_rps: f64,
    latency: LatencySummary,
}

struct OpenResult {
    offered_rps: f64,
    achieved_rps: f64,
    sent: u64,
    ok: u64,
    shed: u64,
    failed: u64,
    latency: LatencySummary,
    queue_mean_us: f64,
    service_mean_us: f64,
}

struct SoakResult {
    connections: usize,
    window_s: f64,
    cpu_ms: f64,
    failed_requests: u64,
}

/// This process's cumulative CPU time (user + system) in milliseconds,
/// from `/proc/self/stat` (0.0 where unavailable — the soak gate then
/// passes trivially on non-Linux hosts).
fn process_cpu_ms() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // Fields after the parenthesized comm; utime/stime are stat fields
    // 14/15, i.e. indices 11/12 past the comm, in clock ticks (100 Hz).
    let rest = stat.rsplit_once(')').map_or("", |(_, r)| r);
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let tick = |i: usize| -> f64 { fields.get(i).and_then(|v| v.parse().ok()).unwrap_or(0.0) };
    (tick(11) + tick(12)) * 1000.0 / 100.0
}

/// Runs `clients` closed-loop client threads, each on one persistent
/// keep-alive connection, for `per_client` requests each.
fn run_level(addr: SocketAddr, bodies: &[String], clients: usize, per_client: u32) -> LevelResult {
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect failed");
                    let mut samples = Vec::with_capacity(per_client as usize);
                    for i in 0..per_client {
                        let body = &bodies[(c + i as usize * clients) % bodies.len()];
                        let sent = Instant::now();
                        let (status, response) =
                            conn.post("/v1/infer", body).expect("request failed");
                        assert_eq!(status, 200, "{response}");
                        samples.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    LevelResult {
        clients,
        requests: latencies.len() as u32,
        throughput_rps: latencies.len() as f64 / elapsed,
        latency: LatencySummary::from_samples_us(&latencies),
    }
}

/// Streaming-session phase: `sessions` concurrent chunked sessions, each
/// over one keep-alive connection, pushing `chunks` chunks then closing.
/// This is what makes the scheduler's affinity telemetry live: every push
/// after a session's first carries the parked lane hint.
fn run_streaming(addr: SocketAddr, sessions: usize, chunks: usize) -> LevelResult {
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let feed = sne::proportionality::stream_with_activity(
                        (2, 16, 16),
                        (chunks * 4) as u32,
                        0.03,
                        7000 + s as u64,
                    );
                    let mut conn = Connection::connect(addr).expect("connect failed");
                    let mut samples = Vec::with_capacity(chunks);
                    for (i, chunk) in feed.chunks(4).enumerate() {
                        let body = client::infer_body("bench", &chunk);
                        let path = format!("/v1/stream/bench-s{s}/push");
                        let sent = Instant::now();
                        let (status, response) = conn.post(&path, &body).expect("push failed");
                        assert_eq!(status, 200, "push {i}: {response}");
                        samples.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                    let (status, response) = conn
                        .post(&format!("/v1/stream/bench-s{s}/close"), "")
                        .expect("close failed");
                    assert_eq!(status, 200, "{response}");
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    LevelResult {
        clients: sessions,
        requests: latencies.len() as u32,
        throughput_rps: latencies.len() as f64 / elapsed,
        latency: LatencySummary::from_samples_us(&latencies),
    }
}

/// Open-loop run at a fixed offered rate: arrival `k` is *due* at
/// `t0 + k/rate`; a pool of sender threads serves the schedule and each
/// request's latency is measured from its due time, so when the server
/// falls behind the wait shows up in the numbers instead of silently
/// stretching the arrival process.
fn run_open_loop(
    addr: SocketAddr,
    bodies: &[String],
    offered_rps: f64,
    window: Duration,
    senders: usize,
) -> OpenResult {
    let total = ((offered_rps * window.as_secs_f64()) as usize).max(senders);
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<f64>, u64, u64, u64, f64, f64)> = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..senders)
            .map(|_| {
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect failed");
                    let mut latencies = Vec::new();
                    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
                    let (mut queue_us, mut service_us) = (0.0f64, 0.0f64);
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        let due = t0 + Duration::from_secs_f64(k as f64 / offered_rps);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        match conn.post("/v1/infer", &bodies[k % bodies.len()]) {
                            Ok((200, body)) => {
                                ok += 1;
                                latencies.push(due.elapsed().as_secs_f64() * 1e6);
                                if let Ok(doc) = Json::parse(&body) {
                                    queue_us +=
                                        doc.get("queue_us").and_then(Json::as_f64).unwrap_or(0.0);
                                    service_us +=
                                        doc.get("service_us").and_then(Json::as_f64).unwrap_or(0.0);
                                }
                            }
                            Ok((429, _)) => shed += 1,
                            Ok(_) => failed += 1,
                            Err(_) => {
                                failed += 1;
                                if let Ok(fresh) = Connection::connect(addr) {
                                    conn = fresh;
                                }
                            }
                        }
                    }
                    (latencies, ok, shed, failed, queue_us, service_us)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sender thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
    let (mut queue_total, mut service_total) = (0.0f64, 0.0f64);
    for (l, o, s, f, q, sv) in per_thread {
        latencies.extend(l);
        ok += o;
        shed += s;
        failed += f;
        queue_total += q;
        service_total += sv;
    }
    OpenResult {
        offered_rps,
        achieved_rps: ok as f64 / elapsed,
        sent: total as u64,
        ok,
        shed,
        failed,
        latency: LatencySummary::from_samples_us(&latencies),
        queue_mean_us: if ok > 0 { queue_total / ok as f64 } else { 0.0 },
        service_mean_us: if ok > 0 {
            service_total / ok as f64
        } else {
            0.0
        },
    }
}

/// Idle-connection soak: `target` keep-alive connections parked through a
/// quiet `window` (process CPU measured across it), then one probe request
/// over every parked connection — all must still answer.
fn run_soak(addr: SocketAddr, target: usize, window: Duration) -> SoakResult {
    let mut parked = Vec::with_capacity(target);
    for i in 0..target {
        parked.push(Connection::connect(addr).expect("soak connect failed"));
        if i % 64 == 63 {
            // Give the reactor's accept loop a scheduling quantum so the
            // listener backlog never overflows.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Quiesce (late ACKs, accept bursts), then measure the quiet window.
    std::thread::sleep(Duration::from_millis(300));
    let cpu_before = process_cpu_ms();
    std::thread::sleep(window);
    let cpu_ms = process_cpu_ms() - cpu_before;
    // Every parked connection must still be live.
    let mut failed = 0u64;
    for conn in &mut parked {
        let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
        match conn.get("/healthz") {
            Ok((200, _)) => {}
            _ => failed += 1,
        }
    }
    SoakResult {
        connections: target,
        window_s: window.as_secs_f64(),
        cpu_ms,
        failed_requests: failed,
    }
}

/// Durable-tier exercise: `sessions` streaming sessions (more than the
/// warm capacity) pushed round-robin over one connection for `rounds`
/// passes, so LRU demotion to disk and fault-in from disk both fire
/// deterministically, then every session closes with a summary — cold
/// ones included. Returns the push latencies.
fn run_durability(addr: SocketAddr, sessions: usize, rounds: usize) -> LevelResult {
    let start = Instant::now();
    let mut conn = Connection::connect(addr).expect("connect failed");
    let mut samples = Vec::with_capacity(sessions * rounds);
    for r in 0..rounds {
        for s in 0..sessions {
            let feed = sne::proportionality::stream_with_activity(
                (2, 16, 16),
                4,
                0.03,
                8600 + (r * sessions + s) as u64,
            );
            let body = client::infer_body("bench", &feed);
            let sent = Instant::now();
            let (status, response) = conn
                .post(&format!("/v1/stream/park-{s}/push"), &body)
                .expect("push failed");
            assert_eq!(status, 200, "round {r} session {s}: {response}");
            samples.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    for s in 0..sessions {
        let (status, response) = conn
            .post(&format!("/v1/stream/park-{s}/close"), "")
            .expect("close failed");
        assert_eq!(status, 200, "close {s}: {response}");
    }
    let elapsed = start.elapsed().as_secs_f64();
    LevelResult {
        clients: sessions,
        requests: samples.len() as u32,
        throughput_rps: samples.len() as f64 / elapsed,
        latency: LatencySummary::from_samples_us(&samples),
    }
}

/// Gate: every served result must be BIT-identical to a direct session
/// call before anything is timed — over a keep-alive connection, like all
/// the traffic that follows. Runs once per sweep arm: every shard count
/// must honour the same contract.
fn assert_bit_exact(
    addr: SocketAddr,
    session: &mut InferenceSession,
    streams: &[EventStream],
    bodies: &[String],
) {
    let mut conn = Connection::connect(addr).expect("connect failed");
    for (stream, body) in streams.iter().zip(bodies) {
        let expected = session.infer(stream).unwrap();
        let (status, body) = conn.post("/v1/infer", body).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("predicted_class").and_then(Json::as_u64),
            Some(expected.predicted_class as u64),
            "served prediction diverged from the direct session"
        );
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles),
            "served cycles diverged from the direct session"
        );
        assert_eq!(
            doc.get("energy_uj")
                .and_then(Json::as_f64)
                .map(f64::to_bits),
            Some(expected.energy.energy_uj.to_bits()),
            "served energy diverged bit-wise from the direct session"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let shards_arg: Option<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--shards takes a positive integer"));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let phase = match args
        .iter()
        .position(|a| a == "--phase")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("closed") => Phase::Closed,
        Some("open") => Phase::Open,
        Some("all") | None => Phase::All,
        Some(other) => panic!("unknown --phase {other} (closed|open|all)"),
    };
    let per_client: u32 = if smoke { 6 } else { 200 };

    // A 16x16 two-layer eCNN: small enough that the HTTP wire is a visible
    // fraction of the request, large enough to exercise the whole datapath.
    let network = Arc::new(benchmark_network(16, 8, 5, 5));
    let config = SneConfig::with_slices(4);
    let streams: Vec<EventStream> = (0..8)
        .map(|i| sne::proportionality::stream_with_activity((2, 16, 16), 12, 0.03, 900 + i))
        .collect();
    let bodies: Vec<String> = streams
        .iter()
        .map(|s| client::infer_body("bench", s))
        .collect();

    // Shard sweep: a 1-shard baseline arm and an N-shard arm (the last arm
    // is "primary" and runs every phase); `--shards` pins a single arm.
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let sweep: Vec<usize> = match shards_arg {
        Some(n) => vec![n.max(1)],
        None => vec![1, host.clamp(2, SWEEP_SHARD_CAP)],
    };
    let primary_shards = *sweep.last().expect("sweep is never empty");
    let mut session =
        InferenceSession::new(Arc::clone(&network) as Arc<CompiledNetwork>, config).unwrap();

    println!("Serving front-end over loopback HTTP ({LANES}-engine pool, 16x16 eCNN, 12 timesteps, 3 % activity)");
    println!("reactor shard sweep {sweep:?} on {host} host core(s); bit-exactness vs direct session verified per arm");
    println!();

    // ---- shard sweep: closed-loop baseline arms ----------------------------
    let mut sweep_arms: Vec<(usize, Vec<LevelResult>)> = Vec::new();
    if phase != Phase::Open {
        for &arm_shards in &sweep[..sweep.len() - 1] {
            let server = ServerBuilder::new()
                .register(
                    "bench",
                    Arc::clone(&network),
                    config,
                    LANES,
                    ExecStrategy::Sequential,
                )
                .expect("model registers")
                .reactor_shards(arm_shards)
                .start("127.0.0.1:0")
                .expect("server starts");
            assert_bit_exact(server.addr(), &mut session, &streams, &bodies);
            // Untimed warmup: a fresh server's first requests pay one-time
            // costs (allocator pool growth, lazy registration, frequency
            // ramp) that would otherwise land in the tail percentiles.
            let _ = run_level(server.addr(), &bodies, 2, if smoke { 4 } else { 60 });
            let mut arm_levels = Vec::new();
            for clients in CLIENT_LEVELS {
                let level = run_level(server.addr(), &bodies, clients, per_client);
                println!(
                    "closed [{arm_shards} shard] {:>2} clients: {:>8.1} req/s   p50 {:>8.1} us   p99 {:>8.1} us",
                    level.clients, level.throughput_rps, level.latency.p50_us, level.latency.p99_us
                );
                arm_levels.push(level);
            }
            server.shutdown();
            sweep_arms.push((arm_shards, arm_levels));
        }
    }

    // The primary bench server runs the durable tier for real: every push
    // parks a snapshot (write-ahead, FsyncPolicy::Never keeps the wire
    // numbers about the datapath, not the disk), and the warm capacity is
    // small enough that the durability phase forces demotion + fault-in.
    let store_dir = std::env::temp_dir().join(format!("sne-serve-report-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = ServerBuilder::new()
        .register(
            "bench",
            Arc::clone(&network),
            config,
            LANES,
            ExecStrategy::Sequential,
        )
        .expect("model registers")
        .reactor_shards(primary_shards)
        .durable_store(&store_dir)
        .fsync_policy(FsyncPolicy::Never)
        .session_capacity(WARM_CAPACITY)
        .start("127.0.0.1:0")
        .expect("server starts");
    let addr = server.addr();
    assert_bit_exact(addr, &mut session, &streams, &bodies);

    // ---- closed-loop phase (primary arm) -----------------------------------
    let mut levels = Vec::new();
    let mut streaming: Option<LevelResult> = None;
    if phase != Phase::Open {
        // Same untimed warmup as the sweep arms: this server is fresh too.
        let _ = run_level(addr, &bodies, 2, if smoke { 4 } else { 60 });
        for clients in CLIENT_LEVELS {
            let level = run_level(addr, &bodies, clients, per_client);
            println!(
                "closed [{primary_shards} shard] {:>2} clients: {:>8.1} req/s   p50 {:>8.1} us   p99 {:>8.1} us",
                level.clients, level.throughput_rps, level.latency.p50_us, level.latency.p99_us
            );
            levels.push(level);
        }
        let (sessions, chunks) = if smoke { (4, 6) } else { (8, 12) };
        let result = run_streaming(addr, sessions, chunks);
        println!(
            "stream  {:>2} sessions: {:>7.1} push/s  p50 {:>8.1} us   p99 {:>8.1} us",
            result.clients, result.throughput_rps, result.latency.p50_us, result.latency.p99_us
        );
        streaming = Some(result);
    }

    // ---- open-loop phase ---------------------------------------------------
    let mut open_results = Vec::new();
    let mut soak: Option<SoakResult> = None;
    if phase != Phase::Closed {
        // Capacity estimate drives the offered-rate sweep: best closed-loop
        // level when that phase ran, a short probe otherwise.
        let capacity = levels
            .iter()
            .map(|l| l.throughput_rps)
            .fold(f64::NAN, f64::max);
        let capacity = if capacity.is_nan() {
            let probe = run_level(addr, &bodies, 8, if smoke { 8 } else { 100 });
            println!(
                "probe    8 clients: {:>8.1} req/s (capacity estimate)",
                probe.throughput_rps
            );
            probe.throughput_rps
        } else {
            capacity
        };
        let fractions: &[f64] = if smoke {
            &OPEN_FRACTIONS_SMOKE
        } else {
            &OPEN_FRACTIONS_FULL
        };
        let window = if smoke {
            Duration::from_millis(400)
        } else {
            Duration::from_millis(2500)
        };
        let senders = if smoke { 8 } else { 64 };
        for &fraction in fractions {
            let offered = capacity * fraction;
            let result = run_open_loop(addr, &bodies, offered, window, senders);
            println!(
                "open   {:>7.0} rps offered: {:>8.1} achieved   p50 {:>9.1} us   p99 {:>9.1} us   queue {:>8.1} us   shed {}",
                result.offered_rps,
                result.achieved_rps,
                result.latency.p50_us,
                result.latency.p99_us,
                result.queue_mean_us,
                result.shed
            );
            open_results.push(result);
        }

        // Idle soak: parked keep-alive connections must cost ~nothing.
        let (target, window) = if smoke {
            (256, Duration::from_secs(1))
        } else {
            (5000, Duration::from_secs(2))
        };
        let result = run_soak(addr, target, window);
        println!(
            "soak   {:>5} parked keep-alive conns over {:.1} s: {:.1} ms CPU, {} failed probes",
            result.connections, result.window_s, result.cpu_ms, result.failed_requests
        );
        soak = Some(result);
    }

    // ---- durable-tier phase ------------------------------------------------
    // More sessions than the warm capacity, pushed round-robin: park-to-disk
    // demotion and fault-in must both fire, and every close — cold sessions
    // included — must still produce a summary.
    let (park_sessions, park_rounds) = if smoke {
        (WARM_CAPACITY + 2, 2)
    } else {
        (WARM_CAPACITY + 4, 3)
    };
    let durability_level = run_durability(addr, park_sessions, park_rounds);
    println!(
        "durable {:>2} sessions: {:>7.1} push/s  p50 {:>8.1} us   p99 {:>8.1} us   (warm capacity {WARM_CAPACITY})",
        durability_level.clients,
        durability_level.throughput_rps,
        durability_level.latency.p50_us,
        durability_level.latency.p99_us
    );

    // ---- telemetry + gates -------------------------------------------------
    let (status, stats_body) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&stats_body).unwrap();
    let completed = stats.get("completed").and_then(Json::as_u64).unwrap();
    let errors = stats.get("errors").and_then(Json::as_u64).unwrap();
    assert_eq!(errors, 0, "server recorded errors during the bench");
    let model = stats.get("models").and_then(|m| m.get("bench")).unwrap();
    let field = |key: &str| model.get(key).and_then(Json::as_u64).unwrap();
    let workers = field("workers");
    let steals = field("steals");
    let coalesced = field("coalesced");
    let affinity_hits = field("affinity_hits");
    let affinity_misses = field("affinity_misses");
    assert_eq!(field("pending"), 0, "backlog left after the bench");

    // Per-shard accept/open/eviction counters from the primary server: the
    // stats endpoint must expose exactly one block per reactor shard.
    let shard_counters: Vec<(u64, u64, u64)> = stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("stats exposes per-shard counters")
        .iter()
        .map(|shard| {
            let gauge = |key: &str| shard.get(key).and_then(Json::as_u64).unwrap();
            (gauge("accepted"), gauge("open"), gauge("evictions"))
        })
        .collect();
    assert_eq!(
        shard_counters.len(),
        primary_shards,
        "stats shard blocks disagree with the configured shard count"
    );
    if streaming.is_some() {
        // The telemetry gate: the streaming phase must leave the affinity
        // counters live — a zeroed pair means the hint path is dead again.
        assert!(
            affinity_hits + affinity_misses > 0,
            "streaming phase ran but scheduler affinity telemetry is dead"
        );
    }

    // The durability gate: the round-robin phase oversubscribed the warm
    // capacity, so both directions of the disk tier must have fired, and
    // closing every session must have reclaimed every snapshot.
    let durability = stats
        .get("durability")
        .expect("durable server exposes durability stats");
    let dur = |key: &str| durability.get(key).and_then(Json::as_u64).unwrap();
    let parked_to_disk = dur("parked_to_disk");
    let faulted_in = dur("faulted_in");
    assert!(
        parked_to_disk > 0,
        "oversubscribed warm capacity but no session was demoted to disk"
    );
    assert!(
        faulted_in > 0,
        "cold sessions were pushed to but none faulted in from disk"
    );
    assert_eq!(dur("cold_sessions"), 0, "closes left cold sessions behind");
    assert_eq!(
        dur("corrupt_discarded"),
        0,
        "the store discarded snapshots during a clean bench"
    );

    // The committed p99 floor holds on the 1-shard arm: the single-request
    // path must not pay for the sharding machinery.
    let one_shard_levels = sweep_arms
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, l)| l)
        .or_else(|| (primary_shards == 1).then_some(&levels));
    let p99_1client = one_shard_levels
        .and_then(|arm| arm.iter().find(|l| l.clients == 1))
        .map(|l| l.latency.p99_us);
    if let Some(p99) = p99_1client {
        let floor = if smoke {
            // Smoke runs are tiny and often share noisy CI hosts: gate
            // loosely, the full run enforces the committed floor.
            P99_1CLIENT_FLOOR_US * 10.0
        } else {
            P99_1CLIENT_FLOOR_US
        };
        assert!(
            p99 <= floor,
            "1-shard 1-client p99 {p99:.1} us regressed past the {floor:.1} us floor"
        );
    }

    // Best sustained rate across every measured arm and phase: the sweep
    // arms ran the same workload on the same host, so they count.
    let best_rps = levels
        .iter()
        .chain(sweep_arms.iter().flat_map(|(_, arm)| arm.iter()))
        .map(|l| l.throughput_rps)
        .chain(open_results.iter().map(|r| r.achieved_rps))
        .fold(0.0f64, f64::max);
    // The absolute floor scales with usable cores: lanes cap how many
    // engines can run, so cores past LANES stop adding serve capacity.
    let throughput_floor_rps = THROUGHPUT_FLOOR_RPS_PER_CORE * host.min(LANES) as f64;
    let throughput_met = best_rps >= throughput_floor_rps;
    // The documented fallback: on a small host the bound must be
    // queue-wait (inference capacity), not connection handling — the
    // per-response breakdown at the top offered rate shows which.
    let queue_bound = open_results
        .last()
        .is_some_and(|top| top.queue_mean_us > top.service_mean_us);
    if !open_results.is_empty() && !smoke {
        assert!(
            throughput_met || queue_bound,
            "throughput {best_rps:.1} rps under the {throughput_floor_rps:.0} floor \
             ({THROUGHPUT_FLOOR_RPS_PER_CORE}/core x {} usable cores) and the top offered rate \
             is not queue-bound (queue-wait must dominate service when capacity saturates)",
            host.min(LANES)
        );
    }

    // Multi-core scaling gate: the N-shard arm must actually buy throughput
    // over the 1-shard baseline. Only meaningful when both arms ran and the
    // host has cores to scale onto; smoke runs are too short to gate.
    let best_closed =
        |arm: &[LevelResult]| arm.iter().map(|l| l.throughput_rps).fold(0.0f64, f64::max);
    let shard_speedup = sweep_arms
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, l)| best_closed(l))
        .filter(|base| *base > 0.0 && primary_shards > 1 && !levels.is_empty())
        .map(|base| best_closed(&levels) / base);
    if let Some(speedup) = shard_speedup {
        println!(
            "shard speedup: {primary_shards} shards vs 1 shard = {speedup:.2}x best closed-loop"
        );
        if !smoke && host >= 2 {
            assert!(
                speedup >= SHARD_SPEEDUP_FLOOR,
                "{primary_shards}-shard arm only {speedup:.2}x the 1-shard arm on a {host}-core \
                 host (floor {SHARD_SPEEDUP_FLOOR}x)"
            );
        }
    }
    if let Some(soak) = &soak {
        assert_eq!(
            soak.failed_requests, 0,
            "parked keep-alive connections failed their post-soak probes"
        );
        let budget_ms = soak.window_s * 1000.0 * SOAK_CPU_BUDGET;
        assert!(
            soak.cpu_ms <= budget_ms,
            "idle soak burned {:.1} ms CPU over {:.1} s (budget {budget_ms:.0} ms): parked \
             connections are not free",
            soak.cpu_ms,
            soak.window_s
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    // ---- report ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_report\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"phase\": \"{}\",\n",
        match phase {
            Phase::Closed => "closed",
            Phase::Open => "open",
            Phase::All => "all",
        }
    ));
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"reactor_shards\": {primary_shards},\n"));
    json.push_str(&format!("  \"lanes\": {LANES},\n"));
    json.push_str(
        "  \"workload\": {\"network\": \"tiny_16x16\", \"timesteps\": 12, \"activity\": 0.03, \"slices\": 4},\n",
    );
    json.push_str("  \"bit_exact_vs_direct_session\": true,\n");
    json.push_str(&format!("  \"server_completed_requests\": {completed},\n"));
    json.push_str(&format!(
        "  \"scheduler\": {{\"workers\": {workers}, \"steals\": {steals}, \"coalesced\": {coalesced}, \"affinity_hits\": {affinity_hits}, \"affinity_misses\": {affinity_misses}}},\n"
    ));
    json.push_str("  \"shard_counters\": [\n");
    for (i, (accepted, open, evictions)) in shard_counters.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shard\": {i}, \"accepted\": {accepted}, \"open\": {open}, \"evictions\": {evictions}}}{}\n",
            if i + 1 < shard_counters.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"shard_sweep\": [\n");
    {
        let arms: Vec<(usize, &[LevelResult])> = sweep_arms
            .iter()
            .map(|(s, l)| (*s, l.as_slice()))
            .chain(std::iter::once((primary_shards, levels.as_slice())))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        for (i, (arm_shards, arm)) in arms.iter().enumerate() {
            let arm_p99 = arm
                .iter()
                .find(|l| l.clients == 1)
                .map_or(0.0, |l| l.latency.p99_us);
            json.push_str(&format!(
                "    {{\"shards\": {arm_shards}, \"best_closed_rps\": {:.1}, \"p99_1client_us\": {arm_p99:.1}}}{}\n",
                arm.iter().map(|l| l.throughput_rps).fold(0.0f64, f64::max),
                if i + 1 < arms.len() { "," } else { "" }
            ));
        }
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"durability\": {{\"warm_capacity\": {WARM_CAPACITY}, \"sessions\": {}, \"pushes\": {}, \"push_p50_us\": {:.1}, \"push_p99_us\": {:.1}, \"parked_to_disk\": {parked_to_disk}, \"faulted_in\": {faulted_in}, \"recovered_on_boot\": {}, \"corrupt_discarded\": {}, \"cold_sessions\": {}}},\n",
        durability_level.clients,
        durability_level.requests,
        durability_level.latency.p50_us,
        durability_level.latency.p99_us,
        dur("recovered_on_boot"),
        dur("corrupt_discarded"),
        dur("cold_sessions"),
    ));
    json.push_str("  \"levels\": [\n");
    for (i, level) in levels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}}}{}\n",
            level.clients,
            level.requests,
            level.throughput_rps,
            level.latency.p50_us,
            level.latency.p99_us,
            level.latency.mean_us,
            if i + 1 < levels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    if let Some(streaming) = &streaming {
        json.push_str(&format!(
            "  \"streaming\": {{\"sessions\": {}, \"pushes\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n",
            streaming.clients,
            streaming.requests,
            streaming.throughput_rps,
            streaming.latency.p50_us,
            streaming.latency.p99_us,
        ));
    }
    json.push_str("  \"open_loop\": [\n");
    for (i, r) in open_results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \"failed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"queue_mean_us\": {:.1}, \"service_mean_us\": {:.1}}}{}\n",
            r.offered_rps,
            r.achieved_rps,
            r.sent,
            r.ok,
            r.shed,
            r.failed,
            r.latency.p50_us,
            r.latency.p99_us,
            r.queue_mean_us,
            r.service_mean_us,
            if i + 1 < open_results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    if let Some(soak) = &soak {
        json.push_str(&format!(
            "  \"idle_soak\": {{\"connections\": {}, \"window_s\": {:.1}, \"cpu_ms\": {:.1}, \"failed_requests\": {}}},\n",
            soak.connections, soak.window_s, soak.cpu_ms, soak.failed_requests
        ));
    }
    json.push_str(&format!(
        "  \"gates\": {{\"p99_1client_floor_us\": {P99_1CLIENT_FLOOR_US}, \"throughput_floor_rps\": {throughput_floor_rps:.0}, \"throughput_met\": {throughput_met}, \"queue_bound_saturation\": {queue_bound}, \"shard_speedup_floor\": {SHARD_SPEEDUP_FLOOR}, \"shard_speedup\": {}}}\n",
        shard_speedup.map_or("null".to_owned(), |s| format!("{s:.2}"))
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");

    println!();
    println!(
        "scheduler: {workers} workers, {steals} steals, {coalesced} coalesced pushes, affinity {affinity_hits} hits / {affinity_misses} misses"
    );
    for (i, (accepted, open, evictions)) in shard_counters.iter().enumerate() {
        println!("shard {i}: {accepted} accepted, {open} open at exit, {evictions} evictions");
    }
    println!(
        "durable tier: {parked_to_disk} demotions to disk, {faulted_in} fault-ins, all snapshots reclaimed on close"
    );
    println!("wrote {out_path}");
}

//! Measures the serving front-end end to end over loopback HTTP and emits a
//! machine-readable `BENCH_serve.json`: closed-loop clients at 1/4/16
//! concurrency, throughput and p50/p99 request latency per level, with
//! **bit-exactness against a direct session asserted before any timing**.
//!
//! ```bash
//! cargo run --release -p sne_bench --bin serve_report              # full run
//! cargo run --release -p sne_bench --bin serve_report -- --smoke   # CI smoke
//! cargo run --release -p sne_bench --bin serve_report -- --out x.json
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use sne::batch::LatencySummary;
use sne::compile::CompiledNetwork;
use sne::session::InferenceSession;
use sne_bench::benchmark_network;
use sne_event::EventStream;
use sne_serve::{client, Json, ServerBuilder};
use sne_sim::{ExecStrategy, SneConfig};

/// Closed-loop concurrency levels (clients issuing back-to-back requests).
const CLIENT_LEVELS: [usize; 3] = [1, 4, 16];
/// Engines in the served model's pool.
const LANES: usize = 4;

struct LevelResult {
    clients: usize,
    requests: u32,
    throughput_rps: f64,
    latency: LatencySummary,
}

/// Runs `clients` closed-loop client threads for `per_client` requests each
/// and returns throughput plus client-observed latency order statistics.
fn run_level(
    addr: SocketAddr,
    streams: &[EventStream],
    clients: usize,
    per_client: u32,
) -> LevelResult {
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(per_client as usize);
                    for i in 0..per_client {
                        let stream = &streams[(c + i as usize * clients) % streams.len()];
                        let body = client::infer_body("bench", stream);
                        let sent = Instant::now();
                        let (status, response) =
                            client::post(addr, "/v1/infer", &body).expect("request failed");
                        assert_eq!(status, 200, "{response}");
                        samples.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    LevelResult {
        clients,
        requests: latencies.len() as u32,
        throughput_rps: latencies.len() as f64 / elapsed,
        latency: LatencySummary::from_samples_us(&latencies),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let per_client: u32 = if smoke { 4 } else { 40 };

    // A 16x16 two-layer eCNN: small enough that the HTTP wire is a visible
    // fraction of the request, large enough to exercise the whole datapath.
    let network = Arc::new(benchmark_network(16, 8, 5, 5));
    let config = SneConfig::with_slices(4);
    let streams: Vec<EventStream> = (0..8)
        .map(|i| sne::proportionality::stream_with_activity((2, 16, 16), 12, 0.03, 900 + i))
        .collect();

    let server = ServerBuilder::new()
        .register(
            "bench",
            Arc::clone(&network),
            config,
            LANES,
            ExecStrategy::Sequential,
        )
        .expect("model registers")
        .start("127.0.0.1:0")
        .expect("server starts");
    let addr = server.addr();

    // Gate: every served result must be BIT-identical to a direct session
    // call before anything is timed.
    let mut session =
        InferenceSession::new(Arc::clone(&network) as Arc<CompiledNetwork>, config).unwrap();
    for stream in &streams {
        let expected = session.infer(stream).unwrap();
        let (status, body) =
            client::post(addr, "/v1/infer", &client::infer_body("bench", stream)).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("predicted_class").and_then(Json::as_u64),
            Some(expected.predicted_class as u64),
            "served prediction diverged from the direct session"
        );
        assert_eq!(
            doc.get("total_cycles").and_then(Json::as_u64),
            Some(expected.stats.total_cycles),
            "served cycles diverged from the direct session"
        );
        assert_eq!(
            doc.get("energy_uj")
                .and_then(Json::as_f64)
                .map(f64::to_bits),
            Some(expected.energy.energy_uj.to_bits()),
            "served energy diverged bit-wise from the direct session"
        );
    }

    println!("Serving front-end over loopback HTTP ({LANES}-engine pool, 16x16 eCNN, 12 timesteps, 3 % activity)");
    println!(
        "bit-exactness vs direct session: verified on {} streams",
        streams.len()
    );
    println!();

    let mut levels = Vec::new();
    for clients in CLIENT_LEVELS {
        let level = run_level(addr, &streams, clients, per_client);
        println!(
            "{:>2} clients: {:>8.1} req/s   p50 {:>8.1} us   p99 {:>8.1} us",
            level.clients, level.throughput_rps, level.latency.p50_us, level.latency.p99_us
        );
        levels.push(level);
    }

    let (status, stats_body) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&stats_body).unwrap();
    let completed = stats.get("completed").and_then(Json::as_u64).unwrap();
    let errors = stats.get("errors").and_then(Json::as_u64).unwrap();
    assert_eq!(errors, 0, "server recorded errors during the bench");
    // The per-model scheduler telemetry: worker count, steal volume and the
    // affinity hit rate the work-stealing scheduler reported for the run.
    let model = stats.get("models").and_then(|m| m.get("bench")).unwrap();
    let field = |key: &str| model.get(key).and_then(Json::as_u64).unwrap();
    let workers = field("workers");
    let steals = field("steals");
    let affinity_hits = field("affinity_hits");
    let affinity_misses = field("affinity_misses");
    assert_eq!(field("pending"), 0, "backlog left after the bench");
    server.shutdown();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve_report\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    json.push_str(&format!("  \"lanes\": {LANES},\n"));
    json.push_str(
        "  \"workload\": {\"network\": \"tiny_16x16\", \"timesteps\": 12, \"activity\": 0.03, \"slices\": 4},\n",
    );
    json.push_str("  \"bit_exact_vs_direct_session\": true,\n");
    json.push_str(&format!("  \"server_completed_requests\": {completed},\n"));
    json.push_str(&format!(
        "  \"scheduler\": {{\"workers\": {workers}, \"steals\": {steals}, \"affinity_hits\": {affinity_hits}, \"affinity_misses\": {affinity_misses}}},\n"
    ));
    json.push_str("  \"levels\": [\n");
    for (i, level) in levels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1}}}{}\n",
            level.clients,
            level.requests,
            level.throughput_rps,
            level.latency.p50_us,
            level.latency.p99_us,
            level.latency.mean_us,
            if i + 1 < levels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");

    println!();
    println!(
        "scheduler: {workers} workers, {steals} steals, affinity {affinity_hits} hits / {affinity_misses} misses"
    );
    println!("wrote {out_path}");
}

//! Ablation report: effect of the SNE design choices (TLU skip, clock
//! gating, crossbar broadcast) on cycles and power.

use sne::SneAccelerator;
use sne_bench::{benchmark_network, workload};
use sne_energy::PowerModel;
use sne_sim::SneConfig;

fn run(label: &str, config: SneConfig) {
    let network = benchmark_network(16, 8, 11, 5);
    let mut accelerator = SneAccelerator::new(config);
    let stream = workload(16, 100, 0.02, 31);
    let result = accelerator
        .run(&network, &stream)
        .expect("ablation run succeeds");
    let power = PowerModel::default().average_power_mw(&config, &result.stats);
    println!(
        "{label:<28} | cycles {:>10} | fire cycles {:>8} | utilization {:>5.1}% | xbar transfers {:>8} | {:6.2} mW | {:8.2} uJ",
        result.stats.total_cycles,
        result.stats.fire_cycles,
        result.stats.cluster_utilization() * 100.0,
        result.stats.xbar_transfers,
        power,
        result.energy.energy_uj
    );
}

fn main() {
    println!("Ablations of the SNE design choices (8 slices, 2% input activity)");
    println!();
    let base = SneConfig::with_slices(8);
    run("baseline (all features)", base);
    run(
        "no TLU skip",
        SneConfig {
            tlu_enabled: false,
            ..base
        },
    );
    run(
        "no clock gating",
        SneConfig {
            clock_gating: false,
            ..base
        },
    );
    run(
        "no broadcast xbar",
        SneConfig {
            broadcast: false,
            ..base
        },
    );
    run(
        "single-ported state memory",
        SneConfig {
            double_buffered_state: false,
            ..base
        },
    );
    println!();
    println!("Interpretation: the TLU reduces FIRE_OP scan cycles on sparse inputs,");
    println!("clock gating lowers the active cluster fraction (and therefore power),");
    println!("and the broadcast crossbar keeps the transfer count independent of the");
    println!("number of slices.");
}

//! Regenerates the headline energy-proportionality claim: operations, cycles
//! and energy scale linearly with the number of input events.

use sne::proportionality::{activity_sweep, proportionality_correlation};
use sne::SneAccelerator;
use sne_bench::benchmark_network;
use sne_sim::SneConfig;

fn main() {
    println!("Energy proportionality — cycles and energy vs input events (8 slices)");
    println!();
    let network = benchmark_network(16, 8, 11, 5);
    let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
    let activities = [0.005, 0.012, 0.02, 0.03, 0.049, 0.08];
    let points = activity_sweep(&mut accelerator, &network, 100, &activities, 23)
        .expect("activity sweep succeeds");

    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "activity", "events", "cycles", "SOPs", "time[ms]", "energy[uJ]"
    );
    for p in &points {
        println!(
            "{:>8.3}% {:>10} {:>12} {:>12} {:>10.3} {:>10.2}",
            p.activity * 100.0,
            p.input_events,
            p.cycles,
            p.synaptic_ops,
            p.time_ms,
            p.energy_uj
        );
    }
    println!();
    println!(
        "correlation(events, cycles) = {:.4} (energy proportionality holds when this is ~1)",
        proportionality_correlation(&points)
    );
}

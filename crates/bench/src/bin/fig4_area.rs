//! Regenerates Fig. 4: area breakdown (kGE) versus number of slices.

use sne_bench::SLICE_SWEEP;
use sne_energy::report::format_area_row;
use sne_energy::AreaModel;
use sne_sim::SneConfig;

fn main() {
    let model = AreaModel::default();
    println!("Fig. 4 — SNE area breakdown for 1/2/4/8 slices (kGE)");
    println!("paper reference totals: 249.7 / 454.7 / 862.5 / 1680.7 kGE");
    println!();
    for slices in SLICE_SWEEP {
        let config = SneConfig::with_slices(slices);
        let breakdown = model.breakdown(&config);
        println!("{}", format_area_row(slices, &breakdown));
        println!(
            "           total {:7.1} kGE = {:.3} mm^2, {:.1} um^2/neuron",
            breakdown.total(),
            model.total_mm2(&config),
            model.neuron_area_um2(&config)
        );
    }
}

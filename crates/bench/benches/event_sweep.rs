//! Criterion bench: simulated-inference cost versus input activity (the
//! energy-proportionality sweep).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sne::SneAccelerator;
use sne_bench::{benchmark_network, workload};
use sne_sim::SneConfig;

fn event_sweep(c: &mut Criterion) {
    let network = benchmark_network(16, 4, 11, 5);
    let mut group = c.benchmark_group("proportionality_event_sweep");
    group.sample_size(15);
    for &activity in &[0.012, 0.049] {
        let stream = workload(16, 32, activity, 11);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("activity_{:.3}", activity)),
            &stream,
            |b, stream| {
                let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
                b.iter(|| {
                    let result = accelerator
                        .run(black_box(&network), black_box(stream))
                        .unwrap();
                    black_box(result.energy.energy_uj)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, event_sweep);
criterion_main!(benches);

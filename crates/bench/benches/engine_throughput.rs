//! Criterion bench: cycle-simulator throughput across the Fig. 5b slice
//! sweep (one full layer run per iteration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sne::SneAccelerator;
use sne_bench::{benchmark_network, workload, SLICE_SWEEP};
use sne_sim::SneConfig;

fn engine_throughput(c: &mut Criterion) {
    let network = benchmark_network(16, 4, 11, 5);
    let stream = workload(16, 32, 0.02, 7);
    let mut group = c.benchmark_group("fig5b_engine_throughput");
    group.sample_size(20);
    for slices in SLICE_SWEEP {
        group.bench_function(format!("{slices}_slices"), |b| {
            let mut accelerator = SneAccelerator::new(SneConfig::with_slices(slices));
            b.iter(|| {
                let result = accelerator
                    .run(black_box(&network), black_box(&stream))
                    .unwrap();
                black_box(result.stats.total_cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);

//! Criterion bench: area-model evaluation across the Fig. 4 slice sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sne_bench::SLICE_SWEEP;
use sne_energy::AreaModel;
use sne_sim::SneConfig;

fn area_scaling(c: &mut Criterion) {
    let model = AreaModel::default();
    let mut group = c.benchmark_group("fig4_area");
    for slices in SLICE_SWEEP {
        let config = SneConfig::with_slices(slices);
        group.bench_function(format!("{slices}_slices"), |b| {
            b.iter(|| {
                let breakdown = model.breakdown(black_box(&config));
                black_box(breakdown.total())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, area_scaling);
criterion_main!(benches);

//! Criterion bench: wall-clock scaling of the parallel executor over host
//! worker threads — the 16-lane `BatchRunner` (lanes on threads) and a
//! single engine's per-slice fan-out — at 1/2/4/8 threads over the Fig. 6
//! workload. Results are bit-identical across thread counts; only wall-clock
//! time should move.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sne::batch::BatchRunner;
use sne::session::InferenceSession;
use sne::ExecStrategy;
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn parallel_scaling(c: &mut Criterion) {
    let network = fig6_network(32, 11, 5);
    let config = SneConfig::with_slices(8);
    let streams: Vec<_> = (0..16).map(|i| workload(32, 12, 0.01, 100 + i)).collect();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    // 16 independent lanes over 16 streams: the fleet-serving scenario. The
    // speedup at N threads over 1 thread is the headline number of
    // BENCH_parallel.json.
    for threads in THREAD_SWEEP {
        let mut runner = BatchRunner::with_exec(
            network.clone(),
            config,
            16,
            ExecStrategy::from_threads(threads),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("batch16", threads), &threads, |b, _| {
            b.iter(|| black_box(runner.run(black_box(&streams)).unwrap().total_stats));
        });
    }

    // One engine, per-slice worker fan-out inside a single inference.
    for threads in THREAD_SWEEP {
        let mut session = InferenceSession::with_exec(
            network.clone(),
            config,
            ExecStrategy::from_threads(threads),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("engine_slices", threads),
            &threads,
            |b, _| {
                b.iter(|| black_box(session.infer(black_box(&streams[0])).unwrap().stats));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, parallel_scaling);
criterion_main!(benches);

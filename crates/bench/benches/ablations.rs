//! Criterion bench: ablations of the SNE design choices (TLU skip, clock
//! gating, broadcast crossbar).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sne::SneAccelerator;
use sne_bench::{benchmark_network, workload};
use sne_sim::SneConfig;

fn ablations(c: &mut Criterion) {
    let network = benchmark_network(16, 4, 11, 5);
    let stream = workload(16, 32, 0.02, 13);
    let base = SneConfig::with_slices(8);
    let variants: [(&str, SneConfig); 4] = [
        ("baseline", base),
        (
            "no_tlu",
            SneConfig {
                tlu_enabled: false,
                ..base
            },
        ),
        (
            "no_clock_gating",
            SneConfig {
                clock_gating: false,
                ..base
            },
        ),
        (
            "no_broadcast",
            SneConfig {
                broadcast: false,
                ..base
            },
        ),
    ];
    let mut group = c.benchmark_group("ablations");
    group.sample_size(15);
    for (label, config) in variants {
        group.bench_function(label, |b| {
            let mut accelerator = SneAccelerator::new(config);
            b.iter(|| {
                let result = accelerator
                    .run(black_box(&network), black_box(&stream))
                    .unwrap();
                black_box((result.stats.total_cycles, result.stats.fire_cycles))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);

//! Criterion bench: compile-once/run-many (`InferenceSession`) versus the
//! per-call path that re-compiles the network and re-allocates the
//! accelerator for every inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sne::session::InferenceSession;
use sne::SneAccelerator;
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

fn session_reuse(c: &mut Criterion) {
    let stream = workload(32, 12, 0.01, 7);
    let config = SneConfig::with_slices(8);
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(20);

    // Old path: every inference compiles the network and builds a fresh
    // accelerator (mapping construction + engine allocation per call).
    group.bench_function("per_call_compile_and_run", |b| {
        b.iter(|| {
            let network = fig6_network(32, 11, 5);
            let mut accelerator = SneAccelerator::new(config);
            let result = accelerator
                .run(black_box(&network), black_box(&stream))
                .unwrap();
            black_box(result.stats.total_cycles)
        });
    });

    // Middle ground: compile once, but run through the one-shot accelerator.
    group.bench_function("accelerator_reuse", |b| {
        let network = fig6_network(32, 11, 5);
        let mut accelerator = SneAccelerator::new(config);
        b.iter(|| {
            let result = accelerator
                .run(black_box(&network), black_box(&stream))
                .unwrap();
            black_box(result.stats.total_cycles)
        });
    });

    // New path: compile once, open one session, run many.
    group.bench_function("session_infer", |b| {
        let network = fig6_network(32, 11, 5);
        let mut session = InferenceSession::new(network, config).unwrap();
        b.iter(|| {
            let result = session.infer(black_box(&stream)).unwrap();
            black_box(result.stats.total_cycles)
        });
    });

    // Streaming: the same feed consumed in 4-timestep chunks through one
    // persistent session (state carried across chunks).
    group.bench_function("session_push_chunks", |b| {
        let network = fig6_network(32, 11, 5);
        let mut session = InferenceSession::new(network, config).unwrap();
        b.iter(|| {
            session.reset();
            let mut cycles = 0u64;
            for chunk in stream.chunks(4) {
                cycles += session.push(black_box(&chunk)).unwrap().stats.total_cycles;
            }
            black_box(cycles)
        });
    });

    group.finish();
}

criterion_group!(benches, session_reuse);
criterion_main!(benches);

//! Criterion bench: host time of the compiled sparse datapath (plan) versus
//! the naive mapping walk across input activities — the wall-clock companion
//! of the `datapath_report` binary. The plan's host time should scale with
//! event activity (energy-proportional host time), and the naive path is the
//! reference it is measured against.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sne::session::InferenceSession;
use sne_bench::{fig6_network, workload};
use sne_sim::SneConfig;

fn activity_sweep(c: &mut Criterion) {
    let config = SneConfig::with_slices(8);
    let network = fig6_network(32, 11, 5);
    let mut group = c.benchmark_group("activity_sweep");
    group.sample_size(10);

    for (i, activity) in [0.001f64, 0.01, 0.1].into_iter().enumerate() {
        let stream = workload(32, 12, activity, 7 + i as u64);
        let label = format!("{}pct", activity * 100.0);

        let mut planned = InferenceSession::new(network.clone(), config).unwrap();
        group.bench_function(BenchmarkId::new("plan", &label), |b| {
            b.iter(|| {
                let result = planned.infer(black_box(&stream)).unwrap();
                black_box(result.stats.total_cycles)
            });
        });

        let mut naive = InferenceSession::new(network.clone(), config).unwrap();
        naive.set_plan_enabled(false);
        group.bench_function(BenchmarkId::new("naive", &label), |b| {
            b.iter(|| {
                let result = naive.infer(black_box(&stream)).unwrap();
                black_box(result.stats.total_cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, activity_sweep);
criterion_main!(benches);

//! Durable snapshots of the serving runtime (DESIGN.md §14).
//!
//! The configure-once/run-many split makes durability cheap: everything
//! mutable about an inference session lives in [`ClientState`] — a few
//! membrane buffers, a streaming cursor and the result accumulators — while
//! the heavyweight half ([`RuntimeArtifact`]) is immutable and rebuildable.
//! This module encodes both halves into the versioned, digest-checked
//! snapshot container of `sne_store`:
//!
//! * [`RuntimeArtifact::snapshot_client`] / [`RuntimeArtifact::restore_client`]
//!   serialize a client's full architectural state. Restoring yields a
//!   `ClientState` that is **bit-identical** to the original: equal under
//!   `PartialEq`, and producing identical outputs for every subsequent
//!   [`RuntimeArtifact::push`].
//! * [`RuntimeArtifact::snapshot_to`] / [`RuntimeArtifact::restore_from`]
//!   are the file-backed convenience pair.
//! * [`RuntimeArtifact::snapshot_artifact`] /
//!   [`RuntimeArtifact::restore_artifact`] serialize the artifact itself
//!   (compiled network, weights, configuration), so a server can verify at
//!   boot that the model on disk is the model the sessions were parked
//!   against.
//!
//! Every client snapshot is bound to its artifact through
//! [`RuntimeArtifact::state_digest`] — an FNV-1a digest over the engine
//! configuration, the stage structure, each layer plan's geometry and
//! weight fingerprints and the quantization scales. A snapshot taken
//! against one model fails restore against any other with
//! [`StoreError::ArtifactMismatch`]; it can never be silently resumed.

use std::path::Path;

use sne_sim::mapping::MapShape;
use sne_sim::{LayerMapping, LifHardwareParams, SneConfig};
use sne_store::{Dec, Enc, Fnv1a, SnapshotBuilder, SnapshotKind, SnapshotView, StoreError};

use crate::artifact::{ClientState, RuntimeArtifact};
use crate::compile::{CompiledNetwork, Stage};
use crate::SneError;

/// Client snapshot: streaming cursor (`elapsed_timesteps`, `chunks_pushed`).
const SEC_CURSOR: u32 = 0x01;
/// Client snapshot: per-layer neuron state (membranes + TLU bookkeeping).
const SEC_LAYER_STATES: u32 = 0x02;
/// Client snapshot: per-layer accumulated totals.
const SEC_TOTALS: u32 = 0x03;
/// Client snapshot: class counts and whole-stream cycle totals.
const SEC_RESULTS: u32 = 0x04;
/// Artifact snapshot: compiled network (stages, weights, scales).
const SEC_NETWORK: u32 = 0x11;
/// Artifact snapshot: engine configuration.
const SEC_CONFIG: u32 = 0x12;

impl RuntimeArtifact {
    /// The artifact identity every snapshot of this model is bound to: an
    /// FNV-1a digest over the engine configuration, the network's stage
    /// structure, each layer plan's geometry and weight fingerprints and
    /// the quantization scales. Two artifacts agree on this digest exactly
    /// when a `ClientState` of one is architecturally valid for the other.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update(b"sne-state-digest-v1");
        digest_config(&mut h, self.config());
        let (c, height, w) = self.network().input_shape();
        h.update_u64(u64::from(c));
        h.update_u64(u64::from(height));
        h.update_u64(u64::from(w));
        h.update_u64(u64::from(self.network().output_classes()));
        let mut plans = self.plans().iter();
        for stage in self.network().stages() {
            match stage {
                Stage::Pool { window, input } => {
                    h.update_u64(2);
                    h.update_u64(u64::from(*window));
                    h.update_u64(u64::from(input.0));
                    h.update_u64(u64::from(input.1));
                    h.update_u64(u64::from(input.2));
                }
                Stage::Accelerated { .. } => {
                    h.update_u64(1);
                    let (geometry, weights) = plans
                        .next()
                        .expect("artifact construction checks one plan per accelerated stage")
                        .fingerprint();
                    h.update_u64(geometry);
                    h.update_u64(weights);
                }
            }
        }
        for &scale in self.network().scales() {
            h.update_u64(u64::from(scale.to_bits()));
        }
        h.digest()
    }

    /// Serializes `client` into a self-validating snapshot bound to this
    /// artifact: full membrane state, TLU bookkeeping, streaming cursor and
    /// result accumulators.
    #[must_use]
    pub fn snapshot_client(&self, client: &ClientState) -> Vec<u8> {
        let mut snap = SnapshotBuilder::new(SnapshotKind::ClientState, self.state_digest());

        let mut cursor = Enc::new();
        cursor.u32(client.elapsed_timesteps);
        cursor.u64(client.chunks_pushed);
        snap.section(SEC_CURSOR, &cursor.into_bytes());

        let slices = self.config().num_slices;
        let mut states = Enc::new();
        states.u32(client.states.len() as u32);
        for state in &client.states {
            states.u32(state.passes() as u32);
            for pass in 0..state.passes() {
                for slice in 0..slices {
                    for cluster in state.slice_state(pass, slice) {
                        states.i16_slice(&cluster.states);
                        states.u32(cluster.pending_leak_steps);
                        states.u8(u8::from(cluster.dirty));
                    }
                }
            }
        }
        snap.section(SEC_LAYER_STATES, &states.into_bytes());

        let mut totals = Enc::new();
        totals.u32(client.layer_totals.len() as u32);
        for layer in &client.layer_totals {
            totals.str(&layer.description);
            totals.f64(layer.neurons);
            encode_stats(&mut totals, &layer.stats);
            totals.u64(layer.input_events);
            totals.u64(layer.output_events);
        }
        snap.section(SEC_TOTALS, &totals.into_bytes());

        let mut results = Enc::new();
        results.u32_slice(&client.class_counts);
        encode_stats(&mut results, &client.total);
        snap.section(SEC_RESULTS, &results.into_bytes());

        snap.finish()
    }

    /// Decodes and fully validates a client snapshot: container digests,
    /// artifact binding, and structural agreement with this artifact's
    /// layer sizing. The restored state is bit-identical to the snapshotted
    /// one — equal under `PartialEq` and producing identical outputs for
    /// every subsequent [`RuntimeArtifact::push`].
    ///
    /// # Errors
    ///
    /// [`SneError::Snapshot`] carrying the precise [`StoreError`]: `Torn` /
    /// `DigestMismatch` / `Truncated` for corrupted bytes,
    /// [`StoreError::ArtifactMismatch`] when the snapshot belongs to a
    /// different model, `Malformed` when a validated container disagrees
    /// with the artifact's structure.
    pub fn restore_client(&self, bytes: &[u8]) -> Result<ClientState, SneError> {
        let view = SnapshotView::parse(bytes).map_err(SneError::from)?;
        if view.header.kind != SnapshotKind::ClientState {
            return Err(StoreError::Malformed("expected a client-state snapshot").into());
        }
        let expected = self.state_digest();
        if view.header.artifact_digest != expected {
            return Err(StoreError::ArtifactMismatch {
                expected,
                found: view.header.artifact_digest,
            }
            .into());
        }

        let mut client = self.new_client();

        let mut cursor = Dec::new(view.require(SEC_CURSOR)?);
        client.elapsed_timesteps = cursor.u32()?;
        client.chunks_pushed = cursor.u64()?;
        finish_section(&cursor)?;

        let slices = self.config().num_slices;
        let mut states = Dec::new(view.require(SEC_LAYER_STATES)?);
        if states.u32()? as usize != client.states.len() {
            return Err(StoreError::Malformed("layer count does not match the artifact").into());
        }
        for state in &mut client.states {
            if states.u32()? as usize != state.passes() {
                return Err(StoreError::Malformed("pass count does not match the artifact").into());
            }
            for pass in 0..state.passes() {
                for slice in 0..slices {
                    for cluster in state.slice_state_mut(pass, slice) {
                        let membranes = states.i16_slice()?;
                        if membranes.len() != cluster.states.len() {
                            return Err(StoreError::Malformed(
                                "cluster size does not match the configuration",
                            )
                            .into());
                        }
                        cluster.states = membranes;
                        cluster.pending_leak_steps = states.u32()?;
                        cluster.dirty = match states.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(StoreError::Malformed("dirty flag").into()),
                        };
                    }
                }
            }
        }
        finish_section(&states)?;

        let mut totals = Dec::new(view.require(SEC_TOTALS)?);
        if totals.u32()? as usize != client.layer_totals.len() {
            return Err(StoreError::Malformed("totals count does not match the artifact").into());
        }
        for layer in &mut client.layer_totals {
            let description = totals.str()?;
            if description != layer.description {
                return Err(
                    StoreError::Malformed("layer description does not match the artifact").into(),
                );
            }
            layer.neurons = totals.f64()?;
            layer.stats = decode_stats(&mut totals)?;
            layer.input_events = totals.u64()?;
            layer.output_events = totals.u64()?;
        }
        finish_section(&totals)?;

        let mut results = Dec::new(view.require(SEC_RESULTS)?);
        let class_counts = results.u32_slice()?;
        if class_counts.len() != client.class_counts.len() {
            return Err(StoreError::Malformed("class count does not match the artifact").into());
        }
        client.class_counts = class_counts;
        client.total = decode_stats(&mut results)?;
        finish_section(&results)?;

        Ok(client)
    }

    /// Writes a client snapshot to `path` (no atomicity — callers that need
    /// crash-safe parking go through `sne_store::SessionStore`, which adds
    /// the tmp-write/rename protocol and the journal).
    ///
    /// # Errors
    ///
    /// [`SneError::Snapshot`] carrying the I/O failure.
    pub fn snapshot_to(
        &self,
        client: &ClientState,
        path: impl AsRef<Path>,
    ) -> Result<(), SneError> {
        std::fs::write(path, self.snapshot_client(client))
            .map_err(|e| SneError::from(StoreError::from(e)))
    }

    /// Reads and restores a client snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Same as [`RuntimeArtifact::restore_client`], plus I/O failures.
    pub fn restore_from(&self, path: impl AsRef<Path>) -> Result<ClientState, SneError> {
        let bytes = std::fs::read(path).map_err(|e| SneError::from(StoreError::from(e)))?;
        self.restore_client(&bytes)
    }

    /// Serializes the artifact itself — compiled network (stages, weights,
    /// scales) and engine configuration — so the model identity can be
    /// persisted next to the sessions parked against it.
    #[must_use]
    pub fn snapshot_artifact(&self) -> Vec<u8> {
        let mut snap = SnapshotBuilder::new(SnapshotKind::Artifact, self.state_digest());

        let mut net = Enc::new();
        let (c, h, w) = self.network().input_shape();
        net.u16(c);
        net.u16(h);
        net.u16(w);
        net.u16(self.network().output_classes());
        net.u32(self.network().stages().len() as u32);
        for stage in self.network().stages() {
            match stage {
                Stage::Pool { window, input } => {
                    net.u8(0);
                    net.u16(*window);
                    net.u16(input.0);
                    net.u16(input.1);
                    net.u16(input.2);
                }
                Stage::Accelerated {
                    mapping,
                    description,
                } => {
                    net.u8(1);
                    net.str(description);
                    encode_mapping(&mut net, mapping);
                }
            }
        }
        net.u32(self.network().scales().len() as u32);
        for &scale in self.network().scales() {
            net.f32(scale);
        }
        snap.section(SEC_NETWORK, &net.into_bytes());

        let mut conf = Enc::new();
        encode_config(&mut conf, self.config());
        snap.section(SEC_CONFIG, &conf.into_bytes());

        snap.finish()
    }

    /// Rebuilds an artifact from [`RuntimeArtifact::snapshot_artifact`]
    /// bytes: decodes the network and configuration, recompiles the layer
    /// plans, and verifies the rebuilt artifact reproduces the digest the
    /// snapshot was sealed with.
    ///
    /// # Errors
    ///
    /// [`SneError::Snapshot`] for container/decoding failures (including a
    /// digest that does not reproduce) and the usual construction errors of
    /// [`RuntimeArtifact::new`].
    pub fn restore_artifact(bytes: &[u8]) -> Result<Self, SneError> {
        let view = SnapshotView::parse(bytes).map_err(SneError::from)?;
        if view.header.kind != SnapshotKind::Artifact {
            return Err(StoreError::Malformed("expected an artifact snapshot").into());
        }

        let mut net = Dec::new(view.require(SEC_NETWORK)?);
        let input_shape = (net.u16()?, net.u16()?, net.u16()?);
        let output_classes = net.u16()?;
        let stage_count = net.u32()? as usize;
        let mut stages = Vec::with_capacity(stage_count);
        for _ in 0..stage_count {
            match net.u8()? {
                0 => stages.push(Stage::Pool {
                    window: net.u16()?,
                    input: (net.u16()?, net.u16()?, net.u16()?),
                }),
                1 => {
                    let description = net.str()?.to_owned();
                    let mapping = decode_mapping(&mut net)?;
                    stages.push(Stage::Accelerated {
                        mapping,
                        description,
                    });
                }
                _ => return Err(StoreError::Malformed("stage discriminant").into()),
            }
        }
        let scale_count = net.u32()? as usize;
        let mut scales = Vec::with_capacity(scale_count);
        for _ in 0..scale_count {
            scales.push(net.f32()?);
        }
        finish_section(&net)?;

        let mut conf = Dec::new(view.require(SEC_CONFIG)?);
        let config = decode_config(&mut conf)?;
        finish_section(&conf)?;

        let network = CompiledNetwork::from_parts(input_shape, output_classes, stages, scales)?;
        let artifact = Self::new(network, config)?;
        let rebuilt = artifact.state_digest();
        if rebuilt != view.header.artifact_digest {
            return Err(StoreError::ArtifactMismatch {
                expected: rebuilt,
                found: view.header.artifact_digest,
            }
            .into());
        }
        Ok(artifact)
    }
}

/// A section decoder must end exactly at the section boundary; trailing
/// bytes mean the writer and reader disagree on the layout.
fn finish_section(dec: &Dec<'_>) -> Result<(), StoreError> {
    if dec.is_done() {
        Ok(())
    } else {
        Err(StoreError::Malformed("trailing bytes in section"))
    }
}

fn encode_stats(enc: &mut Enc, stats: &sne_sim::CycleStats) {
    for v in stats_fields(stats) {
        enc.u64(v);
    }
}

fn decode_stats(dec: &mut Dec<'_>) -> Result<sne_sim::CycleStats, StoreError> {
    let mut stats = sne_sim::CycleStats::new();
    stats.total_cycles = dec.u64()?;
    stats.update_cycles = dec.u64()?;
    stats.fire_cycles = dec.u64()?;
    stats.reset_cycles = dec.u64()?;
    stats.stall_cycles = dec.u64()?;
    stats.synaptic_ops = dec.u64()?;
    stats.tlu_skipped_updates = dec.u64()?;
    stats.active_cluster_cycles = dec.u64()?;
    stats.gated_cluster_cycles = dec.u64()?;
    stats.input_events = dec.u64()?;
    stats.output_events = dec.u64()?;
    stats.streamer_reads = dec.u64()?;
    stats.streamer_writes = dec.u64()?;
    stats.xbar_transfers = dec.u64()?;
    stats.collector_events = dec.u64()?;
    stats.passes = dec.u64()?;
    Ok(stats)
}

fn stats_fields(s: &sne_sim::CycleStats) -> [u64; 16] {
    [
        s.total_cycles,
        s.update_cycles,
        s.fire_cycles,
        s.reset_cycles,
        s.stall_cycles,
        s.synaptic_ops,
        s.tlu_skipped_updates,
        s.active_cluster_cycles,
        s.gated_cluster_cycles,
        s.input_events,
        s.output_events,
        s.streamer_reads,
        s.streamer_writes,
        s.xbar_transfers,
        s.collector_events,
        s.passes,
    ]
}

fn encode_mapping(enc: &mut Enc, mapping: &LayerMapping) {
    let (discriminant, input, outer, kernel, weights, params) = match mapping {
        LayerMapping::Conv {
            input,
            out_channels,
            kernel,
            weights,
            params,
        } => (0u8, input, *out_channels, *kernel, weights, params),
        LayerMapping::Dense {
            input,
            outputs,
            weights,
            params,
        } => (1u8, input, *outputs, 0, weights, params),
    };
    enc.u8(discriminant);
    enc.u16(input.channels);
    enc.u16(input.height);
    enc.u16(input.width);
    enc.u16(outer);
    enc.u16(kernel);
    enc.i16(params.leak);
    enc.i16(params.threshold);
    let raw: Vec<u8> = weights.iter().map(|&w| w as u8).collect();
    enc.bytes(&raw);
}

fn decode_mapping(dec: &mut Dec<'_>) -> Result<LayerMapping, StoreError> {
    let discriminant = dec.u8()?;
    let input = MapShape::new(dec.u16()?, dec.u16()?, dec.u16()?);
    let outer = dec.u16()?;
    let kernel = dec.u16()?;
    let params = LifHardwareParams {
        leak: dec.i16()?,
        threshold: dec.i16()?,
    };
    let weights: Vec<i8> = dec.bytes()?.iter().map(|&b| b as i8).collect();
    let mapping = match discriminant {
        0 => LayerMapping::conv(input, outer, kernel, weights, params),
        1 => LayerMapping::dense(input, outer, weights, params),
        _ => return Err(StoreError::Malformed("mapping discriminant")),
    };
    mapping.map_err(|_| StoreError::Malformed("mapping construction rejected the decoded layer"))
}

fn encode_config(enc: &mut Enc, c: &SneConfig) {
    enc.u64(c.num_slices as u64);
    enc.u64(c.clusters_per_slice as u64);
    enc.u64(c.neurons_per_cluster as u64);
    enc.u8(c.weight_bits);
    enc.u8(c.state_bits);
    enc.u64(c.weight_buffer_sets as u64);
    enc.u64(c.streamer_fifo_depth as u64);
    enc.u64(c.cluster_fifo_depth as u64);
    enc.u64(c.num_streamers as u64);
    enc.u32(c.cycles_per_event);
    enc.f64(c.clock_mhz);
    enc.u32(c.memory_latency);
    enc.u8(u8::from(c.tlu_enabled));
    enc.u8(u8::from(c.clock_gating));
    enc.u8(u8::from(c.broadcast));
    enc.u8(u8::from(c.double_buffered_state));
}

fn decode_config(dec: &mut Dec<'_>) -> Result<SneConfig, StoreError> {
    fn to_usize(v: u64) -> Result<usize, StoreError> {
        usize::try_from(v).map_err(|_| StoreError::Malformed("configuration field overflow"))
    }
    fn to_bool(v: u8) -> Result<bool, StoreError> {
        match v {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StoreError::Malformed("configuration flag")),
        }
    }
    Ok(SneConfig {
        num_slices: to_usize(dec.u64()?)?,
        clusters_per_slice: to_usize(dec.u64()?)?,
        neurons_per_cluster: to_usize(dec.u64()?)?,
        weight_bits: dec.u8()?,
        state_bits: dec.u8()?,
        weight_buffer_sets: to_usize(dec.u64()?)?,
        streamer_fifo_depth: to_usize(dec.u64()?)?,
        cluster_fifo_depth: to_usize(dec.u64()?)?,
        num_streamers: to_usize(dec.u64()?)?,
        cycles_per_event: dec.u32()?,
        clock_mhz: dec.f64()?,
        memory_latency: dec.u32()?,
        tlu_enabled: to_bool(dec.u8()?)?,
        clock_gating: to_bool(dec.u8()?)?,
        broadcast: to_bool(dec.u8()?)?,
        double_buffered_state: to_bool(dec.u8()?)?,
    })
}

/// FNV-1a of every configuration field that affects architectural state or
/// modelled behaviour — i.e. all of them.
fn digest_config(h: &mut Fnv1a, c: &SneConfig) {
    h.update_u64(c.num_slices as u64);
    h.update_u64(c.clusters_per_slice as u64);
    h.update_u64(c.neurons_per_cluster as u64);
    h.update_u64(u64::from(c.weight_bits));
    h.update_u64(u64::from(c.state_bits));
    h.update_u64(c.weight_buffer_sets as u64);
    h.update_u64(c.streamer_fifo_depth as u64);
    h.update_u64(c.cluster_fifo_depth as u64);
    h.update_u64(c.num_streamers as u64);
    h.update_u64(u64::from(c.cycles_per_event));
    h.update_u64(c.clock_mhz.to_bits());
    h.update_u64(u64::from(c.memory_latency));
    h.update_u64(u64::from(c.tlu_enabled));
    h.update_u64(u64::from(c.clock_gating));
    h.update_u64(u64::from(c.broadcast));
    h.update_u64(u64::from(c.double_buffered_state));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_event::EventStream;
    use sne_model::topology::Topology;
    use sne_model::Shape;
    use sne_sim::ExecStrategy;

    fn artifact(seed: u64) -> RuntimeArtifact {
        let mut rng = StdRng::seed_from_u64(seed);
        let network =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap();
        RuntimeArtifact::new(network, SneConfig::with_slices(2)).unwrap()
    }

    fn stream(seed: u64) -> EventStream {
        crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
    }

    #[test]
    fn client_round_trip_is_bit_identical_and_resumes_identically() {
        let artifact = artifact(11);
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let chunks: Vec<_> = stream(5).chunks(4).collect();

        let mut client = artifact.new_client();
        for chunk in &chunks[..2] {
            artifact
                .push(&mut engine, &mut client, chunk, true)
                .unwrap();
        }
        let bytes = artifact.snapshot_client(&client);
        let mut restored = artifact.restore_client(&bytes).unwrap();
        assert_eq!(client, restored);

        // The restored state continues exactly where the original would.
        for chunk in &chunks[2..] {
            let live = artifact
                .push(&mut engine, &mut client, chunk, true)
                .unwrap();
            let resumed = artifact
                .push(&mut engine, &mut restored, chunk, true)
                .unwrap();
            assert_eq!(live, resumed);
        }
        assert_eq!(artifact.summary(&client), artifact.summary(&restored));
    }

    #[test]
    fn fresh_client_snapshot_round_trips() {
        let artifact = artifact(11);
        let client = artifact.new_client();
        let restored = artifact
            .restore_client(&artifact.snapshot_client(&client))
            .unwrap();
        assert_eq!(client, restored);
    }

    #[test]
    fn snapshots_do_not_cross_artifacts() {
        let a = artifact(11);
        let b = artifact(12);
        assert_ne!(a.state_digest(), b.state_digest());
        let bytes = a.snapshot_client(&a.new_client());
        assert!(matches!(
            b.restore_client(&bytes),
            Err(SneError::Snapshot(StoreError::ArtifactMismatch { .. }))
        ));
        // A different engine configuration is a different artifact too.
        let other_config =
            RuntimeArtifact::new(a.network().clone(), SneConfig::with_slices(1)).unwrap();
        assert_ne!(a.state_digest(), other_config.state_digest());
    }

    #[test]
    fn corruption_is_rejected_not_resumed() {
        let artifact = artifact(11);
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let mut client = artifact.new_client();
        artifact
            .push(&mut engine, &mut client, &stream(5), true)
            .unwrap();
        let bytes = artifact.snapshot_client(&client);
        // Torn write.
        assert!(artifact.restore_client(&bytes[..bytes.len() - 1]).is_err());
        // Flipped payload byte.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            artifact.restore_client(&flipped),
            Err(SneError::Snapshot(StoreError::DigestMismatch { .. }))
        ));
        // Wrong kind.
        assert!(matches!(
            artifact.restore_client(&artifact.snapshot_artifact()),
            Err(SneError::Snapshot(StoreError::Malformed(_)))
        ));
    }

    #[test]
    fn file_round_trip_via_snapshot_to() {
        let artifact = artifact(11);
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let mut client = artifact.new_client();
        artifact
            .push(&mut engine, &mut client, &stream(7), true)
            .unwrap();
        let path =
            std::env::temp_dir().join(format!("sne-snapshot-test-{}.snap", std::process::id()));
        artifact.snapshot_to(&client, &path).unwrap();
        let restored = artifact.restore_from(&path).unwrap();
        assert_eq!(client, restored);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            artifact.restore_from(&path),
            Err(SneError::Snapshot(StoreError::Io(_)))
        ));
    }

    #[test]
    fn artifact_round_trip_preserves_identity_and_behaviour() {
        let artifact = artifact(11);
        let bytes = artifact.snapshot_artifact();
        let rebuilt = RuntimeArtifact::restore_artifact(&bytes).unwrap();
        assert_eq!(artifact.state_digest(), rebuilt.state_digest());
        assert_eq!(artifact.network(), rebuilt.network());
        assert_eq!(artifact.config(), rebuilt.config());

        // And a client parked under the original restores under the rebuilt.
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let mut client = artifact.new_client();
        artifact
            .push(&mut engine, &mut client, &stream(9), true)
            .unwrap();
        let restored = rebuilt
            .restore_client(&artifact.snapshot_client(&client))
            .unwrap();
        assert_eq!(client, restored);
    }
}

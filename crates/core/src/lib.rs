//! Top-level API of the SNE reproduction.
//!
//! This crate ties the workspace together: it compiles event-based
//! convolutional networks (trained with `sne-model` or generated with random
//! quantized weights) into [`sne_sim::mapping::LayerMapping`]s for the
//! cycle-approximate simulator in `sne-sim`, runs inferences end to end, and
//! attaches the
//! calibrated energy/performance models of `sne-energy` to the measured
//! cycle counts.
//!
//! The typical flow is:
//!
//! 1. build or train a network topology ([`sne_model::topology::Topology`]),
//! 2. compile it with [`compile::CompiledNetwork`],
//! 3. run it on an [`accelerator::SneAccelerator`],
//! 4. read the [`run::InferenceResult`]: prediction, cycle statistics,
//!    inference time/rate and energy.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sne::accelerator::SneAccelerator;
//! use sne::compile::CompiledNetwork;
//! use sne_model::topology::Topology;
//! use sne_model::Shape;
//! use sne_sim::SneConfig;
//! use sne_event::{Event, EventStream};
//!
//! # fn main() -> Result<(), sne::SneError> {
//! let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let compiled = CompiledNetwork::random(&topology, &mut rng)?;
//!
//! let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
//! let mut stream = EventStream::new(8, 8, 2, 16);
//! for t in 0..16 {
//!     stream.push(Event::update(t, 0, 3, 4)).map_err(sne::SneError::from)?;
//! }
//! let result = accelerator.run(&compiled, &stream)?;
//! assert!(result.predicted_class < 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod compile;
pub mod proportionality;
pub mod report;
pub mod run;

mod error;

pub use accelerator::SneAccelerator;
pub use compile::{CompiledNetwork, Stage};
pub use error::SneError;
pub use run::{InferenceResult, LayerExecution};

// Re-export the crates a downstream user needs to drive the API.
pub use sne_energy;
pub use sne_event;
pub use sne_model;
pub use sne_sim;

//! Top-level API of the SNE reproduction.
//!
//! This crate ties the workspace together: it compiles event-based
//! convolutional networks (trained with `sne-model` or generated with random
//! quantized weights) into [`sne_sim::mapping::LayerMapping`]s for the
//! cycle-approximate simulator in `sne-sim`, runs inferences end to end, and
//! attaches the
//! calibrated energy/performance models of `sne-energy` to the measured
//! cycle counts.
//!
//! The typical flow is:
//!
//! 1. build or train a network topology ([`sne_model::topology::Topology`]),
//! 2. compile it with [`compile::CompiledNetwork`] — the *compile-once*
//!    phase: validated geometry and per-layer hardware mappings,
//! 3. open a [`session::InferenceSession`] — the *run-many* phase: a
//!    long-lived engine plus persistent per-layer neuron state, supporting
//!    both repeated whole-sample inference and chunked streaming
//!    ([`session::InferenceSession::push`]),
//! 4. read the [`run::InferenceResult`]: prediction, cycle statistics,
//!    inference time/rate and energy.
//!
//! [`accelerator::SneAccelerator`] remains the one-shot convenience wrapper
//! (it routes through the same runtime and caches the compiled plans across
//! calls).
//!
//! For the *serving* scenario the run-many layer splits further into three
//! tiers (DESIGN.md §10): an immutable, shareable
//! [`artifact::RuntimeArtifact`] (compiled network + plan set +
//! configuration) that any number of engines execute against; a cheap
//! per-client [`artifact::ClientState`] (per-layer neuron state + streaming
//! cursor) that parks between requests; and the fleet machinery in
//! [`batch`] — an [`batch::EnginePool`] of warm engines checked out per
//! request and a work-queue [`batch::Scheduler`] with per-request
//! queue/service latency accounting. [`batch::BatchRunner`] is the
//! closed-batch convenience on top (its legacy statically pinned walk
//! survives as [`batch::BatchRunner::run_round_robin`], the oracle the
//! dynamic scheduler is proven bit-identical against), and the `sne_serve`
//! crate is the HTTP front-end over the same tiers.
//!
//! Every entry point accepts an [`ExecStrategy`] (`with_exec` constructors):
//! `Threaded(n)` fans the simulator's independent units — per-slice workers
//! inside an engine, layer stages of a [`session::PipelinedSession`], lanes
//! of a [`batch::BatchRunner`] — out over host worker threads, with results
//! bit-identical to `Sequential` for every `n`.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sne::accelerator::SneAccelerator;
//! use sne::compile::CompiledNetwork;
//! use sne_model::topology::Topology;
//! use sne_model::Shape;
//! use sne_sim::SneConfig;
//! use sne_event::{Event, EventStream};
//!
//! # fn main() -> Result<(), sne::SneError> {
//! let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let compiled = CompiledNetwork::random(&topology, &mut rng)?;
//!
//! let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
//! let mut stream = EventStream::new(8, 8, 2, 16);
//! for t in 0..16 {
//!     stream.push(Event::update(t, 0, 3, 4)).map_err(sne::SneError::from)?;
//! }
//! let result = accelerator.run(&compiled, &stream)?;
//! assert!(result.predicted_class < 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod artifact;
pub mod batch;
pub mod compile;
pub mod proportionality;
pub mod report;
pub mod run;
pub mod session;
pub mod snapshot;

mod error;

pub use accelerator::SneAccelerator;
pub use artifact::{ClientState, RuntimeArtifact};
pub use batch::{
    BatchReport, BatchRunner, EnginePool, LatencySummary, PooledEngine, RequestRecord, Scheduler,
};
pub use compile::{CompiledNetwork, Stage};
pub use error::SneError;
pub use run::{InferenceResult, LayerExecution};
pub use session::{ChunkOutput, InferenceSession, PipelinedSession};
// The execution strategy is part of the top-level API surface: every entry
// point (`SneAccelerator`, the sessions, `BatchRunner`) takes it via a
// `with_exec` constructor.
pub use sne_sim::ExecStrategy;

// Re-export the crates a downstream user needs to drive the API.
pub use sne_energy;
pub use sne_event;
pub use sne_model;
pub use sne_sim;
pub use sne_store;

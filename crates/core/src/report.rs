//! Summary reports combining accuracy, performance and energy.

use serde::{Deserialize, Serialize};

use crate::run::InferenceResult;

/// Aggregate of many inferences over a dataset (the per-dataset rows of
/// Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Dataset label.
    pub dataset: String,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Classification accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Minimum energy per inference observed, in µJ.
    pub min_energy_uj: f64,
    /// Maximum energy per inference observed, in µJ.
    pub max_energy_uj: f64,
    /// Minimum inference rate observed, in inferences per second.
    pub min_rate: f64,
    /// Maximum inference rate observed, in inferences per second.
    pub max_rate: f64,
    /// Mean network activity across samples.
    pub mean_activity: f64,
}

impl DatasetReport {
    /// Builds a report from per-sample results and their correctness flags.
    ///
    /// # Panics
    ///
    /// Panics if `results` and `correct` have different lengths.
    #[must_use]
    pub fn from_results(dataset: &str, results: &[InferenceResult], correct: &[bool]) -> Self {
        assert_eq!(
            results.len(),
            correct.len(),
            "one correctness flag per result"
        );
        let samples = results.len();
        let accuracy = if samples == 0 {
            0.0
        } else {
            correct.iter().filter(|&&c| c).count() as f64 / samples as f64
        };
        let mut min_energy = f64::INFINITY;
        let mut max_energy: f64 = 0.0;
        let mut min_rate = f64::INFINITY;
        let mut max_rate: f64 = 0.0;
        let mut activity = 0.0;
        for r in results {
            min_energy = min_energy.min(r.energy.energy_uj);
            max_energy = max_energy.max(r.energy.energy_uj);
            min_rate = min_rate.min(r.inference_rate);
            max_rate = max_rate.max(r.inference_rate);
            activity += r.mean_activity;
        }
        if samples == 0 {
            min_energy = 0.0;
            min_rate = 0.0;
        }
        Self {
            dataset: dataset.to_owned(),
            samples,
            accuracy,
            min_energy_uj: min_energy,
            max_energy_uj: max_energy,
            min_rate,
            max_rate,
            mean_activity: if samples == 0 {
                0.0
            } else {
                activity / samples as f64
            },
        }
    }

    /// Formats the report as one Table-I-style row.
    #[must_use]
    pub fn to_row(&self) -> String {
        format!(
            "{:<16} | acc {:5.1}% | energy {:7.1}-{:7.1} uJ/inf | rate {:6.1}-{:6.1} inf/s | activity {:.2}%",
            self.dataset,
            self.accuracy * 100.0,
            self.min_energy_uj,
            self.max_energy_uj,
            self.min_rate,
            self.max_rate,
            self.mean_activity * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sne_energy::EnergyReport;
    use sne_sim::CycleStats;

    fn result(energy_uj: f64, rate: f64, activity: f64) -> InferenceResult {
        InferenceResult {
            predicted_class: 0,
            output_spike_counts: vec![1],
            stats: CycleStats::default(),
            layers: Vec::new(),
            energy: EnergyReport {
                energy_uj,
                ..EnergyReport::default()
            },
            inference_time_ms: 1.0,
            inference_rate: rate,
            mean_activity: activity,
        }
    }

    #[test]
    fn report_aggregates_ranges_and_accuracy() {
        let results = vec![result(80.0, 141.0, 0.012), result(261.0, 43.0, 0.049)];
        let report = DatasetReport::from_results("DVS-Gesture-like", &results, &[true, false]);
        assert_eq!(report.samples, 2);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert_eq!(report.min_energy_uj, 80.0);
        assert_eq!(report.max_energy_uj, 261.0);
        assert_eq!(report.min_rate, 43.0);
        assert_eq!(report.max_rate, 141.0);
        assert!(report.to_row().contains("DVS-Gesture-like"));
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = DatasetReport::from_results("empty", &[], &[]);
        assert_eq!(report.samples, 0);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.min_energy_uj, 0.0);
    }

    #[test]
    #[should_panic(expected = "one correctness flag per result")]
    fn mismatched_lengths_panic() {
        let _ = DatasetReport::from_results("bad", &[result(1.0, 1.0, 0.0)], &[]);
    }
}

//! Compilation of eCNN networks onto the accelerator.
//!
//! Compilation turns a network description into a sequence of [`Stage`]s:
//! convolution and fully-connected layers become [`LayerMapping`]s executed
//! by the cycle simulator (the SNE accelerates stateful layers), while
//! pooling stages — which have neither weights nor neuron state — are folded
//! into the event stream between accelerated layers, exactly as a host
//! processor would reshape the intermediate feature maps stored in memory
//! between SNE invocations (time-multiplexed mapping mode, paper §III-D.5).

use rand::Rng;
use serde::{Deserialize, Serialize};

use sne_model::quant::QuantizedWeights;
use sne_model::tensor::Shape;
use sne_model::topology::{StageSpec, Topology};
use sne_model::train::{RateLayer, RateNetwork};
use sne_sim::mapping::{LayerMapping, LifHardwareParams, MapShape};
use sne_sim::plan::LayerPlan;

use crate::SneError;

/// One stage of a compiled network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// A layer executed on the SNE.
    Accelerated {
        /// The hardware mapping of the layer.
        mapping: LayerMapping,
        /// Human-readable description (e.g. `conv 2x32,3x3`).
        description: String,
    },
    /// A pooling stage folded into the intermediate event stream.
    Pool {
        /// Pooling window.
        window: u16,
        /// Input shape of the pooling stage.
        input: (u16, u16, u16),
    },
}

impl Stage {
    /// Returns the mapping if this stage runs on the accelerator.
    #[must_use]
    pub fn mapping(&self) -> Option<&LayerMapping> {
        match self {
            Stage::Accelerated { mapping, .. } => Some(mapping),
            Stage::Pool { .. } => None,
        }
    }
}

/// A network compiled for the SNE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledNetwork {
    input_shape: (u16, u16, u16),
    output_classes: u16,
    stages: Vec<Stage>,
    /// Per accelerated layer: the quantization scale used (1.0 for networks
    /// generated directly on the integer grid).
    scales: Vec<f32>,
}

impl CompiledNetwork {
    /// Compiles a trained floating-point rate network: every stateful layer
    /// is quantized to the 4-bit grid with max-abs calibration and its firing
    /// threshold is set to `round(1/scale)` (the same conversion as
    /// [`sne_model::train::to_lif_network`], so the accelerator executes the
    /// `SNE-LIF-4b` variant of the trained network).
    ///
    /// # Errors
    ///
    /// Propagates mapping construction errors.
    pub fn from_rate_network(rate: &RateNetwork) -> Result<Self, SneError> {
        let input = rate.input_shape();
        let mut stages = Vec::new();
        let mut scales = Vec::new();
        let mut classes = input.channels;
        for layer in rate.layers() {
            match layer {
                RateLayer::Conv {
                    in_shape,
                    out_channels,
                    kernel,
                    weights,
                    ..
                } => {
                    let q = QuantizedWeights::from_floats(weights);
                    let params = LifHardwareParams {
                        leak: 0,
                        threshold: threshold_from_scale(q.scale),
                    };
                    let mapping = LayerMapping::conv(
                        map_shape(*in_shape),
                        *out_channels,
                        *kernel,
                        q.values.clone(),
                        params,
                    )?;
                    stages.push(Stage::Accelerated {
                        description: format!(
                            "conv {}x{},{kernel}x{kernel}",
                            in_shape.channels, out_channels
                        ),
                        mapping,
                    });
                    scales.push(q.scale);
                    classes = *out_channels;
                }
                RateLayer::Pool { in_shape, window } => {
                    stages.push(Stage::Pool {
                        window: *window,
                        input: in_shape.as_tuple(),
                    });
                }
                RateLayer::Dense {
                    in_shape,
                    outputs,
                    weights,
                    ..
                } => {
                    let q = QuantizedWeights::from_floats(weights);
                    let params = LifHardwareParams {
                        leak: 0,
                        threshold: threshold_from_scale(q.scale),
                    };
                    let mapping = LayerMapping::dense(
                        map_shape(*in_shape),
                        *outputs,
                        q.values.clone(),
                        params,
                    )?;
                    stages.push(Stage::Accelerated {
                        description: format!("fc {}x{}", in_shape.len(), outputs),
                        mapping,
                    });
                    scales.push(q.scale);
                    classes = *outputs;
                }
            }
        }
        if stages.iter().all(|s| s.mapping().is_none()) {
            return Err(SneError::EmptyNetwork);
        }
        Ok(Self {
            input_shape: input.as_tuple(),
            output_classes: classes,
            stages,
            scales,
        })
    }

    /// Compiles a topology with random integer weights on the 4-bit grid —
    /// useful for exercising the accelerator and the benchmarks without a
    /// training run.
    ///
    /// # Errors
    ///
    /// Propagates topology shape errors and mapping construction errors.
    pub fn random<R: Rng>(topology: &Topology, rng: &mut R) -> Result<Self, SneError> {
        let shapes = topology.shapes().map_err(SneError::from)?;
        let mut stages = Vec::new();
        let mut scales = Vec::new();
        let mut classes = topology.input.channels;
        for (spec, in_shape) in topology.stages.iter().zip(shapes.iter()) {
            match *spec {
                StageSpec::Conv {
                    out_channels,
                    kernel,
                } => {
                    let count = usize::from(out_channels)
                        * usize::from(in_shape.channels)
                        * usize::from(kernel)
                        * usize::from(kernel);
                    let weights: Vec<i8> = (0..count).map(|_| rng.gen_range(-2i8..=4)).collect();
                    let params = LifHardwareParams {
                        leak: 1,
                        threshold: 8,
                    };
                    let mapping = LayerMapping::conv(
                        map_shape(*in_shape),
                        out_channels,
                        kernel,
                        weights,
                        params,
                    )?;
                    stages.push(Stage::Accelerated {
                        description: format!(
                            "conv {}x{out_channels},{kernel}x{kernel}",
                            in_shape.channels
                        ),
                        mapping,
                    });
                    scales.push(1.0);
                    classes = out_channels;
                }
                StageSpec::Pool { window } => {
                    stages.push(Stage::Pool {
                        window,
                        input: in_shape.as_tuple(),
                    });
                }
                StageSpec::Dense { outputs } => {
                    let count = usize::from(outputs) * in_shape.len();
                    let weights: Vec<i8> = (0..count).map(|_| rng.gen_range(-2i8..=4)).collect();
                    let params = LifHardwareParams {
                        leak: 1,
                        threshold: 8,
                    };
                    let mapping =
                        LayerMapping::dense(map_shape(*in_shape), outputs, weights, params)?;
                    stages.push(Stage::Accelerated {
                        description: format!("fc {}x{outputs}", in_shape.len()),
                        mapping,
                    });
                    scales.push(1.0);
                    classes = outputs;
                }
            }
        }
        if stages.iter().all(|s| s.mapping().is_none()) {
            return Err(SneError::EmptyNetwork);
        }
        Ok(Self {
            input_shape: topology.input.as_tuple(),
            output_classes: classes,
            stages,
            scales,
        })
    }

    /// Reassembles a network from its decoded parts (the snapshot restore
    /// path), applying the same "at least one accelerated stage" invariant
    /// as the compilers.
    pub(crate) fn from_parts(
        input_shape: (u16, u16, u16),
        output_classes: u16,
        stages: Vec<Stage>,
        scales: Vec<f32>,
    ) -> Result<Self, SneError> {
        if stages.iter().all(|s| s.mapping().is_none()) {
            return Err(SneError::EmptyNetwork);
        }
        Ok(Self {
            input_shape,
            output_classes,
            stages,
            scales,
        })
    }

    /// Input shape expected by the network, `(channels, height, width)`.
    #[must_use]
    pub fn input_shape(&self) -> (u16, u16, u16) {
        self.input_shape
    }

    /// Number of output classes (neurons of the final layer).
    #[must_use]
    pub fn output_classes(&self) -> u16 {
        self.output_classes
    }

    /// The compiled stages in execution order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Per-accelerated-layer quantization scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of accelerated (stateful) layers.
    #[must_use]
    pub fn accelerated_layers(&self) -> usize {
        self.stages.iter().filter(|s| s.mapping().is_some()).count()
    }

    /// Compiles the sparse-datapath contribution tables ([`LayerPlan`]) of
    /// every accelerated stage, in stage order — the configure-time half of
    /// the compile-once/run-many split. Sessions build the plans once and
    /// share them (read-only) across timesteps, chunks, batch lanes and
    /// worker threads; the engine verifies each plan against its mapping on
    /// every run.
    #[must_use]
    pub fn build_plans(&self) -> Vec<LayerPlan> {
        self.stages
            .iter()
            .filter_map(Stage::mapping)
            .map(LayerPlan::build)
            .collect()
    }

    /// Compiles the full serving artifact for this network under `config` —
    /// shorthand for [`crate::artifact::RuntimeArtifact::new`], the
    /// configure-once step of the serving runtime (DESIGN.md §10): the
    /// returned artifact is immutable and shareable, and any number of
    /// engines/clients ([`crate::batch::EnginePool`], `sne_serve`) execute
    /// against it.
    ///
    /// # Errors
    ///
    /// Same as [`crate::artifact::RuntimeArtifact::new`].
    pub fn into_artifact(
        self,
        config: sne_sim::SneConfig,
    ) -> Result<crate::artifact::RuntimeArtifact, SneError> {
        crate::artifact::RuntimeArtifact::new(self, config)
    }

    /// Total number of neurons mapped onto the accelerator.
    #[must_use]
    pub fn total_neurons(&self) -> usize {
        self.stages
            .iter()
            .filter_map(Stage::mapping)
            .map(LayerMapping::total_output_neurons)
            .sum()
    }

    /// Rebuilds the equivalent golden-model spiking network (quantized LIF
    /// dynamics), used by the verification tests to check that the simulator
    /// and the functional model agree bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates layer construction errors.
    pub fn golden_network(&self) -> Result<sne_model::Network, SneError> {
        use sne_model::layer::{ConvLayer, DenseLayer, NeuronConfig, PoolLayer};
        use sne_model::neuron::LifParams;

        let (c, h, w) = self.input_shape;
        let mut network = sne_model::Network::new(Shape::new(c, h, w));
        for stage in &self.stages {
            match stage {
                Stage::Pool { window, input } => {
                    let shape = Shape::new(input.0, input.1, input.2);
                    network.push(PoolLayer::new(shape, *window).map_err(SneError::from)?)?;
                }
                Stage::Accelerated { mapping, .. } => match mapping {
                    LayerMapping::Conv {
                        input,
                        out_channels,
                        kernel,
                        weights,
                        params,
                    } => {
                        let shape = Shape::new(input.channels, input.height, input.width);
                        let config = NeuronConfig::Lif(LifParams {
                            leak: params.leak,
                            threshold: params.threshold,
                            ..LifParams::default()
                        });
                        let mut layer = ConvLayer::new(shape, *out_channels, *kernel, config)
                            .map_err(SneError::from)?;
                        layer
                            .set_weights(weights.iter().map(|&v| f32::from(v)).collect())
                            .map_err(SneError::from)?;
                        network.push(layer)?;
                    }
                    LayerMapping::Dense {
                        input,
                        outputs,
                        weights,
                        params,
                    } => {
                        let shape = Shape::new(input.channels, input.height, input.width);
                        let config = NeuronConfig::Lif(LifParams {
                            leak: params.leak,
                            threshold: params.threshold,
                            ..LifParams::default()
                        });
                        let mut layer =
                            DenseLayer::new(shape, *outputs, config).map_err(SneError::from)?;
                        layer
                            .set_weights(weights.iter().map(|&v| f32::from(v)).collect())
                            .map_err(SneError::from)?;
                        network.push(layer)?;
                    }
                },
            }
        }
        Ok(network)
    }
}

fn map_shape(shape: Shape) -> MapShape {
    MapShape::new(shape.channels, shape.height, shape.width)
}

fn threshold_from_scale(scale: f32) -> i16 {
    (1.0 / scale.max(f32::MIN_POSITIVE))
        .round()
        .clamp(1.0, 127.0) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topology() -> Topology {
        Topology::tiny(Shape::new(2, 8, 8), 4, 3)
    }

    #[test]
    fn random_compilation_produces_stages_for_every_topology_stage() {
        let mut rng = StdRng::seed_from_u64(1);
        let compiled = CompiledNetwork::random(&topology(), &mut rng).unwrap();
        assert_eq!(compiled.stages().len(), 3);
        assert_eq!(compiled.accelerated_layers(), 2);
        assert_eq!(compiled.input_shape(), (2, 8, 8));
        assert_eq!(compiled.output_classes(), 3);
        assert!(compiled.total_neurons() > 0);
    }

    #[test]
    fn rate_network_compilation_quantizes_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let rate = RateNetwork::from_topology(&topology(), &mut rng).unwrap();
        let compiled = CompiledNetwork::from_rate_network(&rate).unwrap();
        assert_eq!(compiled.accelerated_layers(), 2);
        assert_eq!(compiled.scales().len(), 2);
        assert!(compiled.scales().iter().all(|&s| s > 0.0));
        // Quantized weights are on the 4-bit grid.
        for stage in compiled.stages() {
            if let Some(LayerMapping::Conv { weights, .. } | LayerMapping::Dense { weights, .. }) =
                stage.mapping()
            {
                assert!(weights.iter().all(|&w| (-8..=7).contains(&w)));
            }
        }
    }

    #[test]
    fn golden_network_has_matching_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let compiled = CompiledNetwork::random(&topology(), &mut rng).unwrap();
        let golden = compiled.golden_network().unwrap();
        assert_eq!(golden.output_shape().as_tuple(), (3, 1, 1));
        assert_eq!(golden.len(), 3);
    }

    #[test]
    fn pooling_only_topologies_are_rejected() {
        let pool_only = Topology {
            input: Shape::new(2, 8, 8),
            stages: vec![StageSpec::Pool { window: 2 }],
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            CompiledNetwork::random(&pool_only, &mut rng),
            Err(SneError::EmptyNetwork)
        ));
    }

    #[test]
    fn networks_compile_into_serving_artifacts() {
        let mut rng = StdRng::seed_from_u64(6);
        let compiled = CompiledNetwork::random(&topology(), &mut rng).unwrap();
        let layers = compiled.accelerated_layers();
        let artifact = compiled
            .into_artifact(sne_sim::SneConfig::with_slices(2))
            .unwrap();
        assert_eq!(artifact.plans().len(), layers);
        assert_eq!(artifact.config().num_slices, 2);
    }

    #[test]
    fn fig6_topology_compiles() {
        let mut rng = StdRng::seed_from_u64(5);
        let topology = Topology::paper_fig6(Shape::new(2, 32, 32), 11);
        let compiled = CompiledNetwork::random(&topology, &mut rng).unwrap();
        assert_eq!(compiled.accelerated_layers(), 4);
        assert_eq!(compiled.output_classes(), 11);
    }
}

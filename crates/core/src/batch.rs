//! Serving many users: an engine pool, a work-queue scheduler, and the
//! closed-batch runner rebuilt on top of them.
//!
//! The production scenario the ROADMAP targets is a fleet of SNE instances
//! consuming sustained event traffic from many sensors/users at once. Multi-
//! instance accelerators (Mega, SpiDR) frame the hardware exactly this way:
//! a pool of identical engines fed from a shared queue. The runtime mirrors
//! that split in three tiers:
//!
//! * [`EnginePool`] holds N warm engines (plus a scratch [`ClientState`]
//!   each) built from one shared [`RuntimeArtifact`]. Engines can be checked
//!   out ad hoc, but under a [`Scheduler`] each worker owns one warm engine
//!   for its whole lifetime — no per-request checkout churn.
//! * [`Scheduler`] is a **work-stealing** run-queue fabric (std
//!   `Mutex`/`Condvar`/`mpsc`, no new dependencies): every worker owns one
//!   engine and a local double-ended queue, submissions go to the affine or
//!   least-loaded worker, and an idle worker steals from the tail of the
//!   most-loaded one — so one hot queue can never strand the rest of the
//!   fleet idle (the `[0, 0, 0, 0.98]` lane-utilization collapse of the old
//!   single-FIFO design). Two priority lanes separate interactive round
//!   trips ([`Scheduler::call`] / [`Scheduler::call_push`]) from bulk
//!   [`Scheduler::submit`] batches, with a bypass budget that keeps the bulk
//!   lane progressing under sustained interactive load. Every completion
//!   carries its **queue-wait** and **service** latency ([`RequestRecord`]).
//!   Streaming clients may pass a lane **affinity hint**; because state is
//!   engine-agnostic ([`RuntimeArtifact::push`]), affinity is an
//!   optimization only — a stolen (affinity-miss) request is bit-identical.
//! * [`BatchRunner`] is the closed-batch convenience preserved from the
//!   earlier lane-pinned runner: [`BatchRunner::run`] submits every stream,
//!   drains, and aggregates a [`BatchReport`]. The legacy statically-pinned
//!   round-robin walk survives as [`BatchRunner::run_round_robin`] — the
//!   reference oracle the dynamic scheduler is proven bit-identical against
//!   (`tests/scheduler_equivalence.rs`).
//!
//! Because every request starts from resting neuron state (`infer` resets
//! the engine's scratch client first), *which* engine serves a request can
//! never change its result: the dynamic scheduler's per-stream results are
//! bit-identical to the static round-robin runner's, in input order, for
//! every [`ExecStrategy`]. Only the host-measured latencies differ.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sne_event::EventStream;
use sne_sim::{CycleStats, Engine, ExecStrategy, SneConfig};

use crate::artifact::{ClientState, RuntimeArtifact};
use crate::compile::CompiledNetwork;
use crate::run::InferenceResult;
use crate::session::ChunkOutput;
use crate::SneError;

/// Order statistics of a set of host-measured latencies, in microseconds.
///
/// Percentiles use the nearest-rank method; an empty sample set reports all
/// zeros. These are **wall-clock host** numbers (unlike the modelled
/// cycle-derived times), so they vary run to run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean in µs.
    pub mean_us: f64,
    /// Median (50th percentile) in µs.
    pub p50_us: f64,
    /// 95th percentile in µs.
    pub p95_us: f64,
    /// 99th percentile in µs.
    pub p99_us: f64,
    /// Largest sample in µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a sample set (order irrelevant; not modified).
    #[must_use]
    pub fn from_samples_us(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let nearest_rank = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_us: nearest_rank(0.50),
            p95_us: nearest_rank(0.95),
            p99_us: nearest_rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// One warm engine of the fleet, bundled with the shared artifact and a
/// reusable scratch [`ClientState`] for whole-sample requests. Obtained from
/// [`EnginePool::checkout`] and returned with [`EnginePool::checkin`].
#[derive(Debug)]
pub struct PooledEngine {
    lane: usize,
    artifact: Arc<RuntimeArtifact>,
    engine: Engine,
    scratch: ClientState,
}

impl PooledEngine {
    /// Stable index of this engine within its pool (`0..lanes`).
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The shared artifact this engine executes against.
    #[must_use]
    pub fn artifact(&self) -> &Arc<RuntimeArtifact> {
        &self.artifact
    }

    /// Runs one whole-sample inference on this engine's scratch client
    /// (reset first, so results never depend on which engine served which
    /// request).
    ///
    /// # Errors
    ///
    /// Same as [`crate::session::InferenceSession::infer`].
    pub fn infer(&mut self, input: &EventStream) -> Result<InferenceResult, SneError> {
        self.artifact
            .infer(&mut self.engine, &mut self.scratch, input, true)
    }

    /// Streams one chunk of an external client's feed through this engine:
    /// the neuron state lives in the caller's [`ClientState`], so the
    /// client's next chunk may be served by any other engine of the pool.
    ///
    /// # Errors
    ///
    /// Same as [`crate::session::InferenceSession::push`].
    pub fn push(
        &mut self,
        client: &mut ClientState,
        chunk: &EventStream,
    ) -> Result<ChunkOutput, SneError> {
        self.artifact.push(&mut self.engine, client, chunk, true)
    }
}

/// A fixed fleet of warm engines sharing one [`RuntimeArtifact`]: check one
/// out per request, run, check it back in. [`EnginePool::checkout`] blocks
/// until an engine is free, which is what turns N engines plus any number of
/// request threads into a well-formed queueing system.
#[derive(Debug)]
pub struct EnginePool {
    artifact: Arc<RuntimeArtifact>,
    idle: Mutex<Vec<PooledEngine>>,
    available: Condvar,
    lanes: usize,
    engine_exec: ExecStrategy,
}

impl EnginePool {
    /// Builds `lanes` engines (and scratch clients) against `artifact`, all
    /// allocated here, once. `engine_exec` is each engine's per-slice worker
    /// fan-out (keep it [`ExecStrategy::Sequential`] when the parallelism
    /// lives across lanes, as in [`BatchRunner`]).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero.
    pub fn new(
        artifact: Arc<RuntimeArtifact>,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        if lanes == 0 {
            return Err(SneError::EmptyBatch);
        }
        let idle = (0..lanes)
            .map(|lane| PooledEngine {
                lane,
                artifact: Arc::clone(&artifact),
                engine: artifact.new_engine(engine_exec),
                scratch: artifact.new_client(),
            })
            .collect();
        Ok(Self {
            artifact,
            idle: Mutex::new(idle),
            available: Condvar::new(),
            lanes,
            engine_exec,
        })
    }

    /// Convenience: compiles the artifact and builds the pool in one step.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero, plus
    /// [`RuntimeArtifact::new`]'s errors.
    pub fn for_network(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        if lanes == 0 {
            return Err(SneError::EmptyBatch);
        }
        Self::new(
            Arc::new(RuntimeArtifact::new(network, config)?),
            lanes,
            engine_exec,
        )
    }

    /// Total engines in the fleet.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The per-slice worker fan-out every engine of this pool was built with.
    #[must_use]
    pub fn engine_exec(&self) -> ExecStrategy {
        self.engine_exec
    }

    /// Engines currently idle (not checked out).
    #[must_use]
    pub fn idle_lanes(&self) -> usize {
        self.idle.lock().expect("engine pool poisoned").len()
    }

    /// The shared artifact the fleet executes against.
    #[must_use]
    pub fn artifact(&self) -> &Arc<RuntimeArtifact> {
        &self.artifact
    }

    /// Checks an engine out, blocking until one is free.
    #[must_use]
    pub fn checkout(&self) -> PooledEngine {
        let mut idle = self.idle.lock().expect("engine pool poisoned");
        loop {
            if let Some(engine) = idle.pop() {
                return engine;
            }
            idle = self.available.wait(idle).expect("engine pool poisoned");
        }
    }

    /// Checks an engine out if one is free right now.
    #[must_use]
    pub fn try_checkout(&self) -> Option<PooledEngine> {
        self.idle.lock().expect("engine pool poisoned").pop()
    }

    /// Returns an engine to the pool and wakes one waiter.
    pub fn checkin(&self, engine: PooledEngine) {
        debug_assert!(
            Arc::ptr_eq(&engine.artifact, &self.artifact),
            "engine returned to a foreign pool"
        );
        self.idle.lock().expect("engine pool poisoned").push(engine);
        self.available.notify_one();
    }
}

/// Completion record of one scheduled request.
#[derive(Debug)]
pub struct RequestRecord {
    /// Monotonic request id, assigned at [`Scheduler::submit`] time (ids
    /// order submissions, so sorting by id recovers input order).
    pub id: u64,
    /// The inference outcome.
    pub result: Result<InferenceResult, SneError>,
    /// Pool lane that served the request.
    pub lane: usize,
    /// Host time from submission until service started (queue + engine
    /// checkout wait), in µs.
    pub queue_us: f64,
    /// Host time the engine spent on the request, in µs.
    pub service_us: f64,
}

/// Completion record of one streaming-chunk request
/// ([`Scheduler::call_push`]): the caller's [`ClientState`] comes back with
/// the chunk's outcome, ready to park until the client's next chunk.
#[derive(Debug)]
pub struct PushRecord {
    /// Monotonic request id (shares the [`RequestRecord`] id space).
    pub id: u64,
    /// The caller's streaming state, returned after the chunk (advanced on
    /// success, untouched on error).
    pub client: ClientState,
    /// The chunk outcome.
    pub result: Result<ChunkOutput, SneError>,
    /// Pool lane that served the chunk — feed it back as the next chunk's
    /// affinity hint to keep the session on a warm engine.
    pub lane: usize,
    /// Host time from submission until service started, in µs.
    pub queue_us: f64,
    /// Host time the engine spent on the chunk, in µs.
    pub service_us: f64,
}

/// Cumulative counters of a [`Scheduler`] (or any other request recorder):
/// totals plus latency order statistics over a bounded window of recent
/// requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerStats {
    /// Requests completed (success or error).
    pub completed: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Requests a worker took from another worker's queue instead of its
    /// own (0 outside a [`Scheduler`]).
    pub steals: u64,
    /// Requests submitted with an affinity hint and served by the hinted
    /// lane.
    pub affinity_hits: u64,
    /// Requests submitted with an affinity hint and served elsewhere
    /// (stolen or rerouted — results are identical either way).
    pub affinity_misses: u64,
    /// Interactive push jobs served as riders of another push's scheduler
    /// round trip — the checkout-coalescing window amortized their
    /// queue-lock wakeup (0 outside a [`Scheduler`]).
    pub coalesced: u64,
    /// Queue-wait latency summary over the recent-request window.
    pub queue: LatencySummary,
    /// Service latency summary over the recent-request window.
    pub service: LatencySummary,
}

/// Bounded reservoir of recent latency samples plus total counters — shared
/// by the scheduler and reusable by any front-end (e.g. `sne_serve`) that
/// wants `/v1/stats`-style percentiles without unbounded memory.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    inner: Mutex<RecorderInner>,
}

#[derive(Debug, Default)]
struct RecorderInner {
    completed: u64,
    errors: u64,
    queue_us: VecDeque<f64>,
    service_us: VecDeque<f64>,
}

/// Samples kept per latency series (oldest evicted first).
const RECORDER_WINDOW: usize = 4096;

impl LatencyRecorder {
    /// A recorder with empty counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&self, queue_us: f64, service_us: f64, is_error: bool) {
        let mut guard = self.inner.lock().expect("latency recorder poisoned");
        let inner = &mut *guard;
        inner.completed += 1;
        inner.errors += u64::from(is_error);
        for (series, sample) in [
            (&mut inner.queue_us, queue_us),
            (&mut inner.service_us, service_us),
        ] {
            if series.len() == RECORDER_WINDOW {
                series.pop_front();
            }
            series.push_back(sample);
        }
    }

    /// Snapshot of the counters and latency summaries.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.inner.lock().expect("latency recorder poisoned");
        let queue: Vec<f64> = inner.queue_us.iter().copied().collect();
        let service: Vec<f64> = inner.service_us.iter().copied().collect();
        SchedulerStats {
            completed: inner.completed,
            errors: inner.errors,
            queue: LatencySummary::from_samples_us(&queue),
            service: LatencySummary::from_samples_us(&service),
            steals: 0,
            affinity_hits: 0,
            affinity_misses: 0,
            coalesced: 0,
        }
    }
}

/// Priority class of a queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Priority {
    /// Latency-sensitive round trips ([`Scheduler::call`],
    /// [`Scheduler::call_push`]): served ahead of bulk work.
    Interactive,
    /// Throughput work ([`Scheduler::submit`] batches).
    Bulk,
}

/// Interactive jobs a worker may serve ahead of a waiting bulk job before
/// the bulk lane is force-served once — the starvation guard that keeps
/// batch work progressing under a sustained interactive flood.
const BULK_BYPASS_LIMIT: u32 = 4;

/// How long an idle worker waits before it may steal: one scheduling
/// quantum's grace for the victim to serve its own queue. Keeps steal
/// latency bounded on a loaded multi-core fleet while preventing the
/// first-scheduled worker of a time-sliced single-core host from draining
/// every peer's queue.
const STEAL_GRACE: Duration = Duration::from_millis(2);

/// Upper bound on interactive push jobs one worker takes from its own queue
/// in a single scheduler round trip — the checkout-coalescing window. A
/// queue-lock acquisition plus condvar wakeup costs more than a small chunk's
/// inference, so under push saturation the per-job scheduler overhead
/// dominates; serving a short run of queued pushes back-to-back on the
/// already-held engine amortizes it. Bounded so a worker re-checks bulk
/// starvation and steal targets at least every `PUSH_COALESCE_WINDOW` jobs.
const PUSH_COALESCE_WINDOW: usize = 8;

/// One queued request. Streams are behind an `Arc` so callers that already
/// hold shared streams submit without copying event data.
struct Job {
    id: u64,
    enqueued: Instant,
    /// Engine lane the submitter prefers. A hint only: state is
    /// engine-agnostic, so serving (or stealing) the job anywhere is
    /// bit-identical — the hint just keeps a streaming session on a warm
    /// engine when the fleet is not loaded.
    affinity: Option<usize>,
    kind: JobKind,
}

/// How a completed inference's [`RequestRecord`] travels back to its
/// submitter: over a channel (the synchronous [`Scheduler::submit`] /
/// [`Scheduler::call`] paths block on the receiver) or into a callback run
/// on the worker thread right after completion (the nonblocking
/// [`Scheduler::call_async`] path an event-driven server uses). A callback
/// must be quick and must never block on the scheduler itself — it runs
/// inline in the worker loop, ahead of the worker's next job.
enum InferReply {
    Channel(mpsc::Sender<RequestRecord>),
    Callback(Box<dyn FnOnce(RequestRecord) + Send>),
}

impl InferReply {
    fn complete(self, record: RequestRecord) {
        match self {
            // A dropped receiver (caller gave up) is not an error.
            Self::Channel(tx) => drop(tx.send(record)),
            Self::Callback(f) => f(record),
        }
    }
}

/// [`InferReply`], for streaming pushes.
enum PushReply {
    Channel(mpsc::Sender<PushRecord>),
    Callback(Box<dyn FnOnce(PushRecord) + Send>),
}

impl PushReply {
    fn complete(self, record: PushRecord) {
        match self {
            Self::Channel(tx) => drop(tx.send(record)),
            Self::Callback(f) => f(record),
        }
    }
}

enum JobKind {
    /// Whole-sample inference on the serving engine's scratch client.
    Infer {
        stream: Arc<EventStream>,
        reply: InferReply,
    },
    /// One chunk of an external client's feed; the [`ClientState`] travels
    /// with the job and comes back in the [`PushRecord`].
    Push {
        client: Box<ClientState>,
        chunk: Arc<EventStream>,
        reply: PushReply,
    },
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish()
    }
}

/// One worker's local run queue: a deque per priority lane plus the bulk
/// starvation-guard counter.
#[derive(Debug, Default)]
struct WorkerQueue {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
    /// Interactive jobs served while bulk work waited, since the last bulk
    /// job was served.
    bulk_bypassed: u32,
}

impl WorkerQueue {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    fn push(&mut self, job: Job, priority: Priority) {
        match priority {
            Priority::Interactive => self.interactive.push_back(job),
            Priority::Bulk => self.bulk.push_back(job),
        }
    }

    /// Takes the owner's next job: interactive first, except that after
    /// [`BULK_BYPASS_LIMIT`] consecutive bypasses a waiting bulk job is
    /// served unconditionally — bulk throughput degrades under interactive
    /// load but never stops.
    fn pop_local(&mut self) -> Option<Job> {
        let bulk_due = !self.bulk.is_empty()
            && (self.interactive.is_empty() || self.bulk_bypassed >= BULK_BYPASS_LIMIT);
        if bulk_due {
            self.bulk_bypassed = 0;
            return self.bulk.pop_front();
        }
        let job = self.interactive.pop_front();
        if job.is_some() && !self.bulk.is_empty() {
            self.bulk_bypassed += 1;
        }
        job
    }

    /// Steals from the tail: the newest bulk job first (the oldest jobs keep
    /// their FIFO position with their owner, and bulk work benefits most
    /// from spare capacity), else the newest interactive one.
    fn steal_tail(&mut self) -> Option<Job> {
        self.bulk.pop_back().or_else(|| self.interactive.pop_back())
    }

    /// Takes up to `limit` additional interactive push jobs from the front
    /// of the queue: the riders of a checkout-coalescing run. Only while no
    /// bulk work waits — a coalesced run must not stretch the interactive
    /// bypass past the starvation guard. FIFO order is preserved and each
    /// rider still runs sequentially on one engine, so the run is
    /// bit-identical to serving the same jobs one scheduler round trip at a
    /// time (pushes to distinct clients are independent, and same-client
    /// pushes cannot be queued concurrently — the caller holds the client).
    fn coalesce_pushes(&mut self, limit: usize) -> Vec<Job> {
        let mut run = Vec::new();
        if !self.bulk.is_empty() {
            return run;
        }
        while run.len() < limit
            && matches!(
                self.interactive.front().map(|job| &job.kind),
                Some(JobKind::Push { .. })
            )
        {
            run.push(self.interactive.pop_front().expect("front just matched"));
        }
        run
    }
}

#[derive(Debug)]
struct SchedState {
    queues: Vec<WorkerQueue>,
    closed: bool,
    /// Rotating tiebreak for [`SchedState::least_loaded`]: among equally
    /// short queues, placement cycles through the workers instead of
    /// piling onto the lowest index. Without it, paced arrivals (each job
    /// arriving after the last one finished, every queue empty) would all
    /// land on worker 0 and re-create the one-hot-lane collapse this
    /// scheduler exists to kill.
    rr_cursor: usize,
}

impl SchedState {
    /// Worker with the shortest run queue (rotating tiebreak) — the
    /// placement target for non-affine submissions.
    fn least_loaded(&mut self) -> usize {
        let n = self.queues.len();
        let start = self.rr_cursor % n;
        // `min_by_key` keeps the first minimum in iteration order, i.e. the
        // shortest queue nearest the cursor.
        let target = (0..n)
            .map(|offset| (start + offset) % n)
            .min_by_key(|&i| self.queues[i].len())
            .unwrap_or(0);
        self.rr_cursor = (target + 1) % n;
        target
    }

    /// Steals one job for worker `me` from the tail of the most-loaded
    /// other queue. A victim's **last** job is off limits while the
    /// scheduler is open: its owner was notified and will serve it, and
    /// leaving it guarantees every worker gets a share of a saturating
    /// batch even when the host serializes the worker threads (a one-core
    /// box would otherwise let the first-scheduled worker drain the whole
    /// fleet's queues and collapse the lane-utilization spread). Once
    /// closed, stragglers are fair game so shutdown drains fast.
    fn steal_for(&mut self, me: usize) -> Option<Job> {
        let floor = if self.closed { 1 } else { 2 };
        let victim = (0..self.queues.len())
            .filter(|&i| i != me && self.queues[i].len() >= floor)
            .max_by_key(|&i| self.queues[i].len())?;
        self.queues[victim].steal_tail()
    }

    /// Whether any queue holds work.
    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| q.len() > 0)
    }
}

#[derive(Debug)]
struct SchedShared {
    pool: Arc<EnginePool>,
    state: Mutex<SchedState>,
    ready: Condvar,
    /// Shared with the replacement scheduler across a
    /// [`BatchRunner::set_exec`] swap, so ids stay globally monotonic and
    /// sorting by id always recovers submission order.
    next_id: Arc<AtomicU64>,
    recorder: LatencyRecorder,
    steals: AtomicU64,
    affinity_hits: AtomicU64,
    affinity_misses: AtomicU64,
    coalesced: AtomicU64,
    /// `worker_lanes[i]` is the engine lane worker `i` owns.
    worker_lanes: Vec<usize>,
}

/// A work-stealing scheduler over an [`EnginePool`]: every worker owns one
/// warm engine and a local two-lane run queue; requests arrive at any time
/// from any thread ([`Scheduler::submit`] for bulk work, [`Scheduler::call`]
/// / [`Scheduler::call_push`] for interactive round trips) and are placed on
/// the affine or least-loaded worker. An idle worker steals from the tail of
/// the most-loaded queue, so no single hot queue can strand the rest of the
/// fleet — and because every request is engine-agnostic, a stolen request's
/// result is bit-identical to an affine one's.
///
/// Shutting the scheduler down ([`Scheduler::shutdown`] or drop) is
/// graceful: already-queued work is finished (local or stolen) before the
/// workers check their engines back in and exit.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<SchedShared>,
    workers: Vec<JoinHandle<()>>,
    results_tx: mpsc::Sender<RequestRecord>,
    /// Behind a mutex so the scheduler is `Sync`: server threads share it
    /// via [`Scheduler::call`] while a batch driver owns `&mut` for
    /// submit/drain.
    results_rx: Mutex<mpsc::Receiver<RequestRecord>>,
    outstanding: usize,
}

impl Scheduler {
    /// Starts `workers` worker threads over `pool`, each owning one engine
    /// checked out for the worker's lifetime. `workers` is clamped to the
    /// pool size (an engine-less worker could serve nothing); size with
    /// [`ExecStrategy::pool_workers`]. Blocks until `workers` engines are
    /// free, so build the scheduler over a pool whose engines are not
    /// checked out elsewhere.
    #[must_use]
    pub fn new(pool: Arc<EnginePool>, workers: usize) -> Self {
        Self::with_ids(pool, workers, Arc::new(AtomicU64::new(0)))
    }

    /// Like [`Scheduler::new`], but drawing request ids from a shared
    /// counter — the mechanism that keeps ids monotonic across a
    /// [`BatchRunner::set_exec`] scheduler swap.
    fn with_ids(pool: Arc<EnginePool>, workers: usize, next_id: Arc<AtomicU64>) -> Self {
        let workers = workers.clamp(1, pool.lanes());
        let mut engines: Vec<PooledEngine> = (0..workers).map(|_| pool.checkout()).collect();
        // Deterministic worker→lane mapping (lowest lanes first), so tests
        // and telemetry can reason about placement.
        engines.sort_by_key(PooledEngine::lane);
        let worker_lanes: Vec<usize> = engines.iter().map(PooledEngine::lane).collect();
        let shared = Arc::new(SchedShared {
            pool,
            state: Mutex::new(SchedState {
                queues: (0..workers).map(|_| WorkerQueue::default()).collect(),
                closed: false,
                rr_cursor: 0,
            }),
            ready: Condvar::new(),
            next_id,
            recorder: LatencyRecorder::new(),
            steals: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            affinity_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            worker_lanes,
        });
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index, engine))
            })
            .collect();
        let (results_tx, results_rx) = mpsc::channel();
        Self {
            shared,
            workers,
            results_tx,
            results_rx: Mutex::new(results_rx),
            outstanding: 0,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Requests submitted with [`Scheduler::submit`] whose completion
    /// records have not been collected by [`Scheduler::drain`] yet.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The engine pool behind the scheduler.
    #[must_use]
    pub fn pool(&self) -> &Arc<EnginePool> {
        &self.shared.pool
    }

    /// Engine lane owned by each worker (`worker_lanes()[i]` is worker
    /// `i`'s lane): the valid affinity-hint values, and the lanes request
    /// records attribute service time to.
    #[must_use]
    pub fn worker_lanes(&self) -> &[usize] {
        &self.shared.worker_lanes
    }

    /// Requests queued but not yet picked up by a worker, over all lanes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("scheduler poisoned")
            .queues
            .iter()
            .map(WorkerQueue::len)
            .sum()
    }

    /// Cumulative request counters, steal/affinity telemetry and latency
    /// percentiles.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.shared.recorder.stats();
        stats.steals = self.shared.steals.load(Ordering::Relaxed);
        stats.affinity_hits = self.shared.affinity_hits.load(Ordering::Relaxed);
        stats.affinity_misses = self.shared.affinity_misses.load(Ordering::Relaxed);
        stats.coalesced = self.shared.coalesced.load(Ordering::Relaxed);
        stats
    }

    fn enqueue(&self, priority: Priority, affinity: Option<usize>, kind: JobKind) -> u64 {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            assert!(!state.closed, "submit on a shut-down scheduler");
            let target = affinity
                .and_then(|lane| self.shared.worker_lanes.iter().position(|&l| l == lane))
                .unwrap_or_else(|| state.least_loaded());
            state.queues[target].push(
                Job {
                    id,
                    enqueued: Instant::now(),
                    affinity,
                    kind,
                },
                priority,
            );
        }
        self.shared.ready.notify_one();
        id
    }

    /// Enqueues one bulk request; its completion is collected by
    /// [`Scheduler::drain`]. Returns the request id (ids order submissions).
    /// Accepts an owned stream or an `Arc` (no event copy for the latter).
    pub fn submit(&mut self, stream: impl Into<Arc<EventStream>>) -> u64 {
        let id = self.enqueue(
            Priority::Bulk,
            None,
            JobKind::Infer {
                stream: stream.into(),
                reply: InferReply::Channel(self.results_tx.clone()),
            },
        );
        self.outstanding += 1;
        id
    }

    /// Waits for every [`Scheduler::submit`]ted request to complete and
    /// returns the records sorted by request id (= submission order).
    pub fn drain(&mut self) -> Vec<RequestRecord> {
        let results_rx = self.results_rx.lock().expect("scheduler poisoned");
        let mut records = Vec::with_capacity(self.outstanding);
        for _ in 0..self.outstanding {
            records.push(results_rx.recv().expect("scheduler worker disconnected"));
        }
        self.outstanding = 0;
        records.sort_by_key(|r| r.id);
        records
    }

    /// Synchronous interactive round trip: enqueues the request on the
    /// priority lane (ahead of bulk [`Scheduler::submit`] work) and blocks
    /// until its completion record arrives. Callable from any thread (this
    /// is the entry point a server's connection handlers use).
    #[must_use]
    pub fn call(&self, stream: impl Into<Arc<EventStream>>) -> RequestRecord {
        self.call_with_affinity(stream, None)
    }

    /// [`Scheduler::call`] with a lane-affinity hint: the request is placed
    /// on the worker owning `affinity` when that lane exists (falling back
    /// to the least-loaded worker otherwise). The hint never changes the
    /// result — a steal still serves it bit-identically — it only biases
    /// placement; the record's `lane` says who actually served it.
    #[must_use]
    pub fn call_with_affinity(
        &self,
        stream: impl Into<Arc<EventStream>>,
        affinity: Option<usize>,
    ) -> RequestRecord {
        let (tx, rx) = mpsc::channel();
        let _ = self.enqueue(
            Priority::Interactive,
            affinity,
            JobKind::Infer {
                stream: stream.into(),
                reply: InferReply::Channel(tx),
            },
        );
        rx.recv().expect("scheduler worker disconnected")
    }

    /// Nonblocking [`Scheduler::call_with_affinity`]: enqueues the request
    /// on the interactive lane and returns immediately; `on_done` runs on
    /// the serving worker thread right after completion. This is the entry
    /// point for event-driven callers (a nonblocking reactor cannot park a
    /// thread per request). The callback must be quick and must not block
    /// on the scheduler — it runs ahead of the worker's next job. Returns
    /// the request id.
    pub fn call_async(
        &self,
        stream: impl Into<Arc<EventStream>>,
        affinity: Option<usize>,
        on_done: impl FnOnce(RequestRecord) + Send + 'static,
    ) -> u64 {
        self.enqueue(
            Priority::Interactive,
            affinity,
            JobKind::Infer {
                stream: stream.into(),
                reply: InferReply::Callback(Box::new(on_done)),
            },
        )
    }

    /// Synchronous interactive streaming round trip: sends `client` and one
    /// chunk of its feed through the fleet and blocks until the
    /// [`PushRecord`] (carrying the advanced `client`) comes back. Pass the
    /// previous record's `lane` as `affinity` to keep a session on a warm
    /// engine; state is engine-agnostic, so an affinity miss is
    /// bit-identical.
    #[must_use]
    pub fn call_push(
        &self,
        client: ClientState,
        chunk: impl Into<Arc<EventStream>>,
        affinity: Option<usize>,
    ) -> PushRecord {
        let (tx, rx) = mpsc::channel();
        let _ = self.enqueue(
            Priority::Interactive,
            affinity,
            JobKind::Push {
                client: Box::new(client),
                chunk: chunk.into(),
                reply: PushReply::Channel(tx),
            },
        );
        rx.recv().expect("scheduler worker disconnected")
    }

    /// Nonblocking [`Scheduler::call_push`]: the advanced [`ClientState`]
    /// comes back inside the [`PushRecord`] handed to `on_done` on the
    /// serving worker thread. Same contract as [`Scheduler::call_async`].
    /// Returns the request id.
    pub fn call_push_async(
        &self,
        client: ClientState,
        chunk: impl Into<Arc<EventStream>>,
        affinity: Option<usize>,
        on_done: impl FnOnce(PushRecord) + Send + 'static,
    ) -> u64 {
        self.enqueue(
            Priority::Interactive,
            affinity,
            JobKind::Push {
                client: Box::new(client),
                chunk: chunk.into(),
                reply: PushReply::Callback(Box::new(on_done)),
            },
        )
    }

    /// Graceful shutdown: queued work is finished, then the workers exit and
    /// are joined (idempotent; also runs on drop). Completion records of
    /// already-submitted work remain collectable with [`Scheduler::drain`];
    /// submitting *new* work after shutdown panics.
    pub fn shutdown(&mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.closed = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("scheduler worker panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One worker of the fleet: serve the local queue (interactive ahead of
/// bulk, bounded bypass), steal from the most-loaded peer when idle, exit —
/// returning the owned engine — only once the scheduler is closed and every
/// queue is empty (graceful drain-first shutdown).
fn worker_loop(shared: &SchedShared, index: usize, mut engine: PooledEngine) {
    loop {
        let mut stolen = false;
        let mut run: Vec<Job> = Vec::new();
        let drained = {
            let mut state = shared.state.lock().expect("scheduler poisoned");
            // A steal needs an expired grace period first: the victim was
            // notified for its own jobs and deserves one scheduling quantum
            // to serve them. Without the grace, the first worker a one-core
            // host happens to schedule strips every peer's queue — all
            // throughput, zero lane spread. Shutdown waives the grace so
            // the backlog drains at full speed.
            let mut grace_expired = false;
            loop {
                if let Some(job) = state.queues[index].pop_local() {
                    // Checkout coalescing: a local push may bring riders —
                    // the pushes queued right behind it — so one lock/wake
                    // round trip serves the whole run. Stolen jobs never
                    // coalesce (the victim's queue keeps its FIFO share).
                    let riders = if matches!(job.kind, JobKind::Push { .. }) {
                        state.queues[index].coalesce_pushes(PUSH_COALESCE_WINDOW - 1)
                    } else {
                        Vec::new()
                    };
                    run.push(job);
                    run.extend(riders);
                    break true;
                }
                if grace_expired || state.closed {
                    if let Some(job) = state.steal_for(index) {
                        stolen = true;
                        run.push(job);
                        break true;
                    }
                }
                if state.closed {
                    break false;
                }
                // Pending work this worker must not (yet) take: the wakeup
                // token that landed here was meant for the job's owner, so
                // forward it before sleeping — otherwise the notify would
                // be consumed and the job stranded. The bounded wait doubles
                // as the steal grace and as a lost-wakeup backstop: a missed
                // notify costs milliseconds, never a hang.
                if state.has_work() {
                    shared.ready.notify_one();
                }
                let (next, timeout) = shared
                    .ready
                    .wait_timeout(state, STEAL_GRACE)
                    .expect("scheduler poisoned");
                state = next;
                grace_expired = timeout.timed_out();
            }
        };
        if !drained {
            shared.pool.checkin(engine);
            return;
        }
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        if run.len() > 1 {
            shared
                .coalesced
                .fetch_add(run.len() as u64 - 1, Ordering::Relaxed);
        }
        for job in run {
            serve_job(shared, &mut engine, job);
        }
    }
}

/// Serves one job on the worker's owned engine: affinity accounting, queue
/// and service timing, inference or push, and the reply (channel send or
/// inline callback). Latency bookkeeping is per job even inside a coalesced
/// run, so a rider's record still shows its own queue wait.
fn serve_job(shared: &SchedShared, engine: &mut PooledEngine, job: Job) {
    let lane = engine.lane();
    if let Some(hint) = job.affinity {
        let counter = if hint == lane {
            &shared.affinity_hits
        } else {
            &shared.affinity_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
    let queue_us = job.enqueued.elapsed().as_secs_f64() * 1e6;
    let service_start = Instant::now();
    match job.kind {
        JobKind::Infer { stream, reply } => {
            let result = engine.infer(&stream);
            let service_us = service_start.elapsed().as_secs_f64() * 1e6;
            shared
                .recorder
                .record(queue_us, service_us, result.is_err());
            reply.complete(RequestRecord {
                id: job.id,
                result,
                lane,
                queue_us,
                service_us,
            });
        }
        JobKind::Push {
            mut client,
            chunk,
            reply,
        } => {
            let result = engine.push(&mut client, &chunk);
            let service_us = service_start.elapsed().as_secs_f64() * 1e6;
            shared
                .recorder
                .record(queue_us, service_us, result.is_err());
            reply.complete(PushRecord {
                id: job.id,
                client: *client,
                result,
                lane,
                queue_us,
                service_us,
            });
        }
    }
}

/// Aggregated outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-stream results, in input order.
    pub results: Vec<InferenceResult>,
    /// Number of pool engines (independent SNE instances) used.
    pub lanes: usize,
    /// Cycle statistics summed over every inference of the batch.
    pub total_stats: CycleStats,
    /// Energy summed over every inference, in µJ.
    pub total_energy_uj: f64,
    /// Modelled busy time of the busiest lane in milliseconds under the
    /// canonical round-robin placement (stream `i` on lane `i % lanes`) —
    /// the batch makespan when all lanes run concurrently. Derived from the
    /// modelled per-inference times, so it is deterministic.
    pub makespan_ms: f64,
    /// Sustained throughput of the fleet: inferences per second at the
    /// makespan ([`f64::INFINITY`] for an empty batch).
    pub aggregate_rate: f64,
    /// Mean energy per inference in µJ (0 for an empty batch).
    pub mean_energy_uj: f64,
    /// Host worker threads that drove the engines (1 for a sequential run).
    pub threads: usize,
    /// Host wall-clock queue-wait latency per request (zero for the
    /// statically pinned [`BatchRunner::run_round_robin`], which has no
    /// queue).
    pub queue_latency: LatencySummary,
    /// Host wall-clock service latency per request.
    pub service_latency: LatencySummary,
    /// Host busy fraction of each pool lane over the run's wall time, in
    /// `[0, 1]` (index = lane).
    pub lane_utilization: Vec<f64>,
    /// Evenness of the per-lane busy time: minimum lane busy time over the
    /// mean lane busy time, in `[0, 1]` (1 = perfectly even, 0 = at least
    /// one lane never served; 0 for an empty batch). The fairness gates
    /// assert a floor on this, so a lane-utilization collapse cannot
    /// regress silently.
    pub utilization_spread: f64,
    /// Requests served by a worker that stole them from another worker's
    /// queue (always 0 for the statically pinned
    /// [`BatchRunner::run_round_robin`]).
    pub steals: u64,
    /// Requests submitted with an affinity hint and served on the hinted
    /// lane.
    pub affinity_hits: u64,
    /// Requests submitted with an affinity hint and served elsewhere.
    pub affinity_misses: u64,
}

/// Drives a fleet of pooled engines over many streams and aggregates their
/// statistics — the compile-once, serve-many-users runtime.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sne::batch::BatchRunner;
/// use sne::compile::CompiledNetwork;
/// use sne::proportionality::stream_with_activity;
/// use sne_model::topology::Topology;
/// use sne_model::Shape;
/// use sne_sim::SneConfig;
///
/// # fn main() -> Result<(), sne::SneError> {
/// let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let network = CompiledNetwork::random(&topology, &mut rng)?;
/// let mut runner = BatchRunner::new(network, SneConfig::with_slices(2), 3)?;
///
/// let streams: Vec<_> = (0..6)
///     .map(|i| stream_with_activity((2, 8, 8), 16, 0.04, 100 + i))
///     .collect();
/// let report = runner.run(&streams)?;
/// assert_eq!(report.results.len(), 6);
/// assert!(report.aggregate_rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchRunner {
    pool: Arc<EnginePool>,
    scheduler: Scheduler,
    exec: ExecStrategy,
    /// Request-id source shared across every scheduler this runner builds,
    /// so ids stay monotonic (and drain order stays submission order)
    /// across [`BatchRunner::set_exec`] swaps.
    ids: Arc<AtomicU64>,
    /// Completion records rescued from a scheduler that was replaced by
    /// [`BatchRunner::set_exec`] while submissions were outstanding;
    /// returned (in order) by the next [`BatchRunner::drain`]. Each record
    /// keeps the lane of the engine that actually served it, so utilization
    /// telemetry stays truthful across the swap.
    carryover: Vec<RequestRecord>,
}

impl BatchRunner {
    /// Compiles-once and opens a pool of `lanes` engines sharing the
    /// compiled artifact, with one scheduler worker (requests served
    /// sequentially).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero and propagates
    /// artifact construction errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
    ) -> Result<Self, SneError> {
        Self::with_exec(network, config, lanes, ExecStrategy::Sequential)
    }

    /// Like [`BatchRunner::new`], but requests are served by
    /// `exec.pool_workers(lanes)` scheduler worker threads. Each engine
    /// stays sequential — the parallelism lives across the fleet, mirroring
    /// the independent SNE instances — and every per-stream result is
    /// bit-identical to the sequential runner's.
    ///
    /// # Errors
    ///
    /// Same as [`BatchRunner::new`].
    pub fn with_exec(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let pool = Arc::new(EnginePool::for_network(
            network,
            config,
            lanes,
            ExecStrategy::Sequential,
        )?);
        let ids = Arc::new(AtomicU64::new(0));
        let scheduler = Scheduler::with_ids(
            Arc::clone(&pool),
            exec.pool_workers(lanes),
            Arc::clone(&ids),
        );
        Ok(Self {
            pool,
            scheduler,
            exec,
            ids,
            carryover: Vec::new(),
        })
    }

    /// Number of pooled engines.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// The engine pool (e.g. to share it with a server front-end).
    #[must_use]
    pub fn pool(&self) -> &Arc<EnginePool> {
        &self.pool
    }

    /// The dynamic scheduler (e.g. to [`Scheduler::call`] it directly from
    /// request threads).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The execution strategy driving the fleet.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.exec
    }

    /// Changes the execution strategy: the scheduler is rebuilt with the new
    /// worker count. Submissions still outstanding on the old scheduler are
    /// waited for and their completion records carried over to the next
    /// [`BatchRunner::drain`] — no result is ever lost. Never changes
    /// results.
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.exec = exec;
        let workers = exec.pool_workers(self.pool.lanes());
        if workers != self.scheduler.workers() {
            if self.scheduler.outstanding() > 0 {
                // Rescued records keep the lane of the engine that served
                // them (never remapped to the new scheduler's workers), so
                // utilization attribution stays truthful across the swap.
                self.carryover.extend(self.scheduler.drain());
            }
            // Shut the old scheduler down FIRST: its workers own their
            // engines, and the replacement blocks checking its own out
            // until they are returned.
            self.scheduler.shutdown();
            self.scheduler =
                Scheduler::with_ids(Arc::clone(&self.pool), workers, Arc::clone(&self.ids));
        }
    }

    /// Submits one stream to the dynamic scheduler without waiting; collect
    /// with [`BatchRunner::drain`]. Returns the request id. Accepts an owned
    /// stream or an `Arc` (no event copy for the latter).
    pub fn submit(&mut self, stream: impl Into<Arc<EventStream>>) -> u64 {
        self.scheduler.submit(stream)
    }

    /// Waits for all submitted requests and returns their completion records
    /// in submission order. Ids are drawn from one shared counter across
    /// [`BatchRunner::set_exec`] swaps, so sorting rescued and fresh records
    /// together by id is exactly submission order.
    pub fn drain(&mut self) -> Vec<RequestRecord> {
        let mut records = std::mem::take(&mut self.carryover);
        records.extend(self.scheduler.drain());
        records.sort_by_key(|r| r.id);
        records
    }

    /// Runs every stream through the dynamic scheduler (submit-all, then
    /// drain) and aggregates the statistics. Placement is dynamic —
    /// least-loaded dispatch plus work stealing — so the stream→engine
    /// mapping varies run to run; every per-stream *result* is nonetheless
    /// bit-identical to the statically pinned
    /// [`BatchRunner::run_round_robin`], in input order, because each
    /// request starts from resting neuron state.
    ///
    /// # Errors
    ///
    /// Propagates the inference error of the lowest-numbered failing stream
    /// (the same error the round-robin runner reports).
    pub fn run(&mut self, streams: &[EventStream]) -> Result<BatchReport, SneError> {
        assert!(
            self.carryover.is_empty() && self.scheduler.outstanding() == 0,
            "drain() incremental submissions before a closed-batch run()"
        );
        let before = self.scheduler.stats();
        let wall_start = Instant::now();
        for stream in streams {
            let _ = self.scheduler.submit(stream.clone());
        }
        let records = self.scheduler.drain();
        let wall_us = wall_start.elapsed().as_secs_f64() * 1e6;
        let after = self.scheduler.stats();

        let mut queue_samples = Vec::with_capacity(records.len());
        let mut service_samples = Vec::with_capacity(records.len());
        let mut lane_busy_us = vec![0.0f64; self.pool.lanes()];
        let mut first_error: Option<(u64, SneError)> = None;
        let mut results = Vec::with_capacity(records.len());
        for record in records {
            queue_samples.push(record.queue_us);
            service_samples.push(record.service_us);
            lane_busy_us[record.lane] += record.service_us;
            match record.result {
                Ok(result) => results.push(result),
                Err(error) => {
                    if first_error.as_ref().map_or(true, |(id, _)| record.id < *id) {
                        first_error = Some((record.id, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(assemble_report(
            results,
            self.pool.lanes(),
            self.scheduler.workers(),
            &queue_samples,
            &service_samples,
            &lane_busy_us,
            wall_us,
            StealTelemetry {
                steals: after.steals - before.steals,
                affinity_hits: after.affinity_hits - before.affinity_hits,
                affinity_misses: after.affinity_misses - before.affinity_misses,
            },
        ))
    }

    /// The legacy statically pinned runner, kept as the reference oracle the
    /// dynamic scheduler is proven against: stream `i` runs on lane
    /// `i % lanes`, each lane consuming its share in input order (on worker
    /// threads under a parallel [`ExecStrategy`], exactly the pre-scheduler
    /// behavior). Queue-wait latency is zero by construction.
    ///
    /// The oracle fleet is built fresh from the shared artifact rather than
    /// checked out of the pool — the scheduler's workers own the pool's
    /// engines, and an engine is a deterministic function of the artifact,
    /// so a fresh fleet produces identical results without deadlocking on
    /// ownership.
    ///
    /// # Errors
    ///
    /// Propagates the inference error of the lowest-numbered failing stream.
    pub fn run_round_robin(&mut self, streams: &[EventStream]) -> Result<BatchReport, SneError> {
        let wall_start = Instant::now();
        let lanes = self.pool.lanes();
        let artifact = self.pool.artifact();
        let mut engines: Vec<PooledEngine> = (0..lanes)
            .map(|lane| PooledEngine {
                lane,
                artifact: Arc::clone(artifact),
                engine: artifact.new_engine(self.pool.engine_exec()),
                scratch: artifact.new_client(),
            })
            .collect();

        // The lane that served a walk slot, plus per-stream results (with
        // service time) — or the first `(stream index, error)` the slot
        // hit. Slot `i` owns lane `i` by construction, but the lane id is
        // still carried explicitly for utilization attribution.
        type LaneOutcome = (
            usize,
            Result<Vec<(usize, InferenceResult, f64)>, (usize, SneError)>,
        );
        // Lowest failing stream index observed so far, for deterministic
        // fail-fast: a failure at index `m` makes every result with a higher
        // index moot (the batch returns the minimum-index error), so lanes
        // stop once their next stream is beyond it. Streams below `m` always
        // run, so an even earlier failure is never missed — the reported
        // error is identical for every strategy and thread interleaving.
        let min_failed = AtomicUsize::new(usize::MAX);
        let lane_outcomes: Vec<LaneOutcome> = self.exec.map(&mut engines, |slot, engine| {
            let mut outcomes = Vec::new();
            for (i, stream) in streams.iter().enumerate().skip(slot).step_by(lanes) {
                if i > min_failed.load(Ordering::SeqCst) {
                    // Indices only grow within a lane; nothing left to do.
                    break;
                }
                let service_start = Instant::now();
                match engine.infer(stream) {
                    Ok(result) => {
                        outcomes.push((i, result, service_start.elapsed().as_secs_f64() * 1e6));
                    }
                    Err(error) => {
                        min_failed.fetch_min(i, Ordering::SeqCst);
                        return (engine.lane(), Err((i, error)));
                    }
                }
            }
            (engine.lane(), Ok(outcomes))
        });
        drop(engines);
        let wall_us = wall_start.elapsed().as_secs_f64() * 1e6;

        // Deterministic reduction: first failing stream index wins; otherwise
        // scatter the per-lane results back into input order.
        let mut first_error: Option<(usize, SneError)> = None;
        let mut slots: Vec<Option<InferenceResult>> = (0..streams.len()).map(|_| None).collect();
        let mut service_samples = Vec::with_capacity(streams.len());
        let mut lane_busy_us = vec![0.0f64; lanes];
        for (lane, outcome) in lane_outcomes {
            match outcome {
                Ok(outcomes) => {
                    for (i, result, service_us) in outcomes {
                        slots[i] = Some(result);
                        service_samples.push(service_us);
                        lane_busy_us[lane] += service_us;
                    }
                }
                Err((i, error)) => {
                    if first_error.as_ref().map_or(true, |(j, _)| i < *j) {
                        first_error = Some((i, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        let results: Vec<InferenceResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every stream produced a result"))
            .collect();
        let queue_samples = vec![0.0f64; results.len()];
        Ok(assemble_report(
            results,
            lanes,
            self.exec.threads(),
            &queue_samples,
            &service_samples,
            &lane_busy_us,
            wall_us,
            StealTelemetry::default(),
        ))
    }
}

/// Work-stealing/affinity counters of one batch run (all zero for the
/// statically pinned oracle).
#[derive(Debug, Default)]
struct StealTelemetry {
    steals: u64,
    affinity_hits: u64,
    affinity_misses: u64,
}

/// Builds the aggregated report from per-stream results plus the
/// host-measured latency samples — shared by the dynamic and the round-robin
/// runner so the deterministic (modelled) fields cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    results: Vec<InferenceResult>,
    lanes: usize,
    threads: usize,
    queue_samples: &[f64],
    service_samples: &[f64],
    lane_busy_us: &[f64],
    wall_us: f64,
    stealing: StealTelemetry,
) -> BatchReport {
    let mut lane_time_ms = vec![0.0f64; lanes];
    let mut total_stats = CycleStats::new();
    let mut total_energy_uj = 0.0;
    for (i, result) in results.iter().enumerate() {
        lane_time_ms[i % lanes] += result.inference_time_ms;
        total_stats += result.stats;
        total_energy_uj += result.energy.energy_uj;
    }
    let makespan_ms = lane_time_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    let aggregate_rate = if results.is_empty() {
        f64::INFINITY
    } else if makespan_ms > 0.0 {
        results.len() as f64 / (makespan_ms / 1_000.0)
    } else {
        0.0
    };
    let mean_energy_uj = if results.is_empty() {
        0.0
    } else {
        total_energy_uj / results.len() as f64
    };
    let lane_utilization: Vec<f64> = lane_busy_us
        .iter()
        .map(|&busy| {
            if wall_us > 0.0 {
                (busy / wall_us).min(1.0)
            } else {
                0.0
            }
        })
        .collect();
    let busy_mean = lane_busy_us.iter().sum::<f64>() / lanes.max(1) as f64;
    let busy_min = lane_busy_us.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let utilization_spread = if busy_mean > 0.0 {
        (busy_min / busy_mean).min(1.0)
    } else {
        0.0
    };
    BatchReport {
        lanes,
        total_stats,
        total_energy_uj,
        makespan_ms,
        aggregate_rate,
        mean_energy_uj,
        threads,
        queue_latency: LatencySummary::from_samples_us(queue_samples),
        service_latency: LatencySummary::from_samples_us(service_samples),
        lane_utilization,
        utilization_spread,
        steals: stealing.steals,
        affinity_hits: stealing.affinity_hits,
        affinity_misses: stealing.affinity_misses,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::InferenceSession;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn streams(n: u64) -> Vec<EventStream> {
        (0..n)
            .map(|i| crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.04, 50 + i))
            .collect()
    }

    #[test]
    fn zero_lanes_are_rejected() {
        assert!(matches!(
            BatchRunner::new(compiled(), SneConfig::with_slices(2), 0),
            Err(SneError::EmptyBatch)
        ));
        let artifact =
            Arc::new(RuntimeArtifact::new(compiled(), SneConfig::with_slices(2)).unwrap());
        assert!(matches!(
            EnginePool::new(artifact, 0, ExecStrategy::Sequential),
            Err(SneError::EmptyBatch)
        ));
    }

    #[test]
    fn latency_summary_uses_nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let summary = LatencySummary::from_samples_us(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_us, 50.0);
        assert_eq!(summary.p95_us, 95.0);
        assert_eq!(summary.p99_us, 99.0);
        assert_eq!(summary.max_us, 100.0);
        assert!((summary.mean_us - 50.5).abs() < 1e-12);
        assert_eq!(
            LatencySummary::from_samples_us(&[]),
            LatencySummary::default()
        );
        let single = LatencySummary::from_samples_us(&[7.0]);
        assert_eq!(single.p50_us, 7.0);
        assert_eq!(single.p99_us, 7.0);
    }

    #[test]
    fn pool_checkout_and_checkin_cycle_every_lane() {
        let pool = EnginePool::for_network(
            compiled(),
            SneConfig::with_slices(2),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(pool.lanes(), 3);
        assert_eq!(pool.idle_lanes(), 3);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.idle_lanes(), 0);
        assert!(pool.try_checkout().is_none());
        let mut lanes = [a.lane(), b.lane(), c.lane()];
        lanes.sort_unstable();
        assert_eq!(lanes, [0, 1, 2]);
        pool.checkin(a);
        pool.checkin(b);
        pool.checkin(c);
        assert_eq!(pool.idle_lanes(), 3);
        // A checked-out engine serves whole-sample requests from rest.
        let stream = &streams(1)[0];
        let mut engine = pool.checkout();
        let first = engine.infer(stream).unwrap();
        let again = engine.infer(stream).unwrap();
        assert_eq!(first, again);
        pool.checkin(engine);
    }

    #[test]
    fn pooled_engines_serve_parked_client_states() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                2,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let stream = &streams(1)[0];
        let mut reference = InferenceSession::new(
            Arc::clone(pool.artifact().network_arc()),
            SneConfig::with_slices(2),
        )
        .unwrap();

        // Push the chunks through *alternating* engines of the pool; the
        // neuron state lives in the parked ClientState, so the outcome is
        // bit-identical to one dedicated session consuming the same chunks.
        let mut client = pool.artifact().new_client();
        for chunk in stream.chunks(4) {
            let mut engine = pool.checkout();
            let out = engine.push(&mut client, &chunk).unwrap();
            assert_eq!(out, reference.push(&chunk).unwrap());
            // Return and immediately rotate to the other engine.
            pool.checkin(engine);
            let rotate = pool.checkout();
            pool.checkin(rotate);
        }
        assert_eq!(pool.artifact().summary(&client), reference.summary());
    }

    #[test]
    fn scheduler_submit_drain_returns_submission_order() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                3,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let mut scheduler = Scheduler::new(Arc::clone(&pool), 3);
        assert_eq!(scheduler.workers(), 3);
        let streams = streams(7);
        let ids: Vec<u64> = streams
            .iter()
            .map(|s| scheduler.submit(s.clone()))
            .collect();
        let records = scheduler.drain();
        assert_eq!(records.len(), 7);
        assert_eq!(records.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
        for record in &records {
            assert!(record.result.is_ok());
            assert!(record.lane < 3);
            assert!(record.service_us > 0.0);
            assert!(record.queue_us >= 0.0);
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 7);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.service.count, 7);
        assert!(stats.service.p99_us >= stats.service.p50_us);
        // `call` is the synchronous round trip request threads use.
        let record = scheduler.call(streams[0].clone());
        assert!(record.result.is_ok());
        assert_eq!(scheduler.stats().completed, 8);
        assert_eq!(scheduler.pending(), 0);
        scheduler.shutdown();
        assert_eq!(pool.idle_lanes(), 3);
    }

    #[test]
    fn scheduler_shutdown_drains_queued_work() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                1,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let mut scheduler = Scheduler::new(Arc::clone(&pool), 1);
        for stream in streams(5) {
            let _ = scheduler.submit(stream);
        }
        // Shut down FIRST: the backlog must still be finished (graceful
        // drain), its records delivered, and the engine returned.
        scheduler.shutdown();
        assert_eq!(scheduler.stats().completed, 5);
        let collected = scheduler.drain();
        assert_eq!(collected.len(), 5);
        assert!(collected.iter().all(|r| r.result.is_ok()));
        assert_eq!(pool.idle_lanes(), 1);
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn report_aggregates_per_stream_results() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 3).unwrap();
        assert_eq!(runner.lanes(), 3);
        let streams = streams(7);
        let report = runner.run(&streams).unwrap();
        assert_eq!(report.results.len(), 7);
        assert_eq!(report.lanes, 3);
        let cycle_sum: u64 = report.results.iter().map(|r| r.stats.total_cycles).sum();
        assert_eq!(report.total_stats.total_cycles, cycle_sum);
        let energy_sum: f64 = report.results.iter().map(|r| r.energy.energy_uj).sum();
        assert!((report.total_energy_uj - energy_sum).abs() < 1e-9);
        assert!((report.mean_energy_uj - energy_sum / 7.0).abs() < 1e-9);
        // Lane 0 serves streams 0, 3 and 6 under the modelled round-robin
        // placement; the makespan covers at least it.
        let lane0: f64 = [0, 3, 6]
            .iter()
            .map(|&i| report.results[i].inference_time_ms)
            .sum();
        assert!(report.makespan_ms >= lane0 - 1e-9);
        assert!(report.makespan_ms <= report.results.iter().map(|r| r.inference_time_ms).sum());
        assert!(report.aggregate_rate > 0.0);
        // Host-measured serving telemetry.
        assert_eq!(report.service_latency.count, 7);
        assert_eq!(report.queue_latency.count, 7);
        assert!(report.service_latency.p50_us > 0.0);
        assert!(report.service_latency.p99_us >= report.service_latency.p50_us);
        assert_eq!(report.lane_utilization.len(), 3);
        assert!(report
            .lane_utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert!(report.lane_utilization.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn batch_results_match_individual_sessions() {
        let network = Arc::new(compiled());
        let streams = streams(4);
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&streams).unwrap();
        let mut single = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        for (stream, batched) in streams.iter().zip(&report.results) {
            assert_eq!(&single.infer(stream).unwrap(), batched);
        }
        // Engines are reusable across batches; the deterministic fields of
        // the report are stable (only host latencies vary run to run).
        let again = runner.run(&streams).unwrap();
        assert_eq!(report.results, again.results);
        assert_eq!(report.total_stats, again.total_stats);
        assert!((report.makespan_ms - again.makespan_ms).abs() < 1e-12);
    }

    #[test]
    fn dynamic_run_matches_the_round_robin_oracle() {
        let network = Arc::new(compiled());
        let streams = streams(9);
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 3).unwrap();
        let reference = runner.run_round_robin(&streams).unwrap();
        assert_eq!(reference.queue_latency.p99_us, 0.0);
        let dynamic = runner.run(&streams).unwrap();
        assert_eq!(dynamic.results, reference.results);
        assert_eq!(dynamic.total_stats, reference.total_stats);
        assert_eq!(dynamic.lanes, reference.lanes);
        assert!((dynamic.makespan_ms - reference.makespan_ms).abs() < 1e-12);
        assert!((dynamic.total_energy_uj - reference.total_energy_uj).abs() < 1e-12);
    }

    #[test]
    fn threaded_lanes_produce_a_bit_identical_report() {
        let network = Arc::new(compiled());
        let streams = streams(9);
        let mut sequential =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 4).unwrap();
        let reference = sequential.run(&streams).unwrap();
        assert_eq!(reference.threads, 1);
        for threads in [2usize, 3, 8] {
            let mut parallel = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                4,
                ExecStrategy::threaded(threads),
            )
            .unwrap();
            let report = parallel.run(&streams).unwrap();
            assert_eq!(report.threads, threads.min(4));
            assert_eq!(report.results, reference.results, "threads = {threads}");
            assert_eq!(report.total_stats, reference.total_stats);
            assert_eq!(report.lanes, reference.lanes);
            assert!((report.makespan_ms - reference.makespan_ms).abs() < 1e-12);
            assert!((report.total_energy_uj - reference.total_energy_uj).abs() < 1e-12);
        }
    }

    #[test]
    fn exec_strategy_is_switchable_between_batches() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let streams = streams(5);
        let before = runner.run(&streams).unwrap();
        runner.set_exec(ExecStrategy::threaded(4));
        assert!(runner.exec().is_parallel());
        let after = runner.run(&streams).unwrap();
        assert_eq!(before.results, after.results);
        // 4 requested, clamped to the 2 pool lanes.
        assert_eq!(after.threads, 2);
    }

    #[test]
    fn set_exec_never_loses_outstanding_results() {
        let network = Arc::new(compiled());
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 2).unwrap();
        let streams = streams(3);
        let expected = runner.run(&streams).unwrap();
        for stream in &streams {
            let _ = runner.submit(stream.clone());
        }
        // Swapping the scheduler mid-flight must rescue the outstanding
        // completions instead of dropping them with the old scheduler.
        runner.set_exec(ExecStrategy::threaded(2));
        let records = runner.drain();
        assert_eq!(records.len(), 3);
        for (record, expected) in records.iter().zip(&expected.results) {
            assert_eq!(record.result.as_ref().unwrap(), expected);
        }
        // And the runner is fully usable afterwards.
        assert_eq!(runner.run(&streams).unwrap().results, expected.results);
    }

    #[test]
    fn threaded_error_reporting_matches_the_sequential_choice() {
        let network = compiled();
        let mut streams = streams(6);
        // Streams 2 and 5 are malformed (wrong geometry).
        streams[2] = EventStream::new(16, 16, 2, 8);
        streams[5] = EventStream::new(4, 4, 1, 8);
        let mut sequential =
            BatchRunner::new(network.clone(), SneConfig::with_slices(2), 3).unwrap();
        let expected = sequential.run(&streams).unwrap_err();
        assert_eq!(sequential.run_round_robin(&streams).unwrap_err(), expected);
        let mut parallel = BatchRunner::with_exec(
            network,
            SneConfig::with_slices(2),
            3,
            ExecStrategy::threaded(3),
        )
        .unwrap();
        assert_eq!(parallel.run(&streams).unwrap_err(), expected);
        assert_eq!(parallel.run_round_robin(&streams).unwrap_err(), expected);
    }

    #[test]
    fn empty_batches_produce_an_empty_report() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&[]).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.total_stats.total_cycles, 0);
        assert_eq!(report.mean_energy_uj, 0.0);
        assert!(report.aggregate_rate.is_infinite());
        assert_eq!(report.service_latency, LatencySummary::default());
        assert_eq!(report.lane_utilization, vec![0.0, 0.0]);
        assert_eq!(report.utilization_spread, 0.0);
        assert_eq!(report.steals, 0);
        // The sequential runner's single worker owns one of the two engines
        // for the scheduler's lifetime; the other lane stays idle.
        assert_eq!(runner.pool().idle_lanes(), 1);
        let pool = Arc::clone(runner.pool());
        drop(runner);
        assert_eq!(pool.idle_lanes(), 2);
    }

    fn dummy_job(id: u64) -> Job {
        let (reply, _rx) = mpsc::channel();
        Job {
            id,
            enqueued: Instant::now(),
            affinity: None,
            kind: JobKind::Infer {
                stream: Arc::new(EventStream::new(8, 8, 2, 8)),
                reply: InferReply::Channel(reply),
            },
        }
    }

    #[test]
    fn bulk_bypass_guard_prevents_starvation() {
        let mut queue = WorkerQueue::default();
        for id in 0..10 {
            queue.push(dummy_job(id), Priority::Interactive);
        }
        queue.push(dummy_job(100), Priority::Bulk);
        queue.push(dummy_job(101), Priority::Bulk);
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_local())
            .map(|job| job.id)
            .collect();
        // Interactive goes first, but after BULK_BYPASS_LIMIT bypasses a
        // waiting bulk job is force-served — bulk never starves.
        assert_eq!(order, vec![0, 1, 2, 3, 100, 4, 5, 6, 7, 101, 8, 9]);
    }

    #[test]
    fn steal_takes_the_newest_bulk_job_first() {
        let mut queue = WorkerQueue::default();
        queue.push(dummy_job(0), Priority::Interactive);
        queue.push(dummy_job(1), Priority::Interactive);
        queue.push(dummy_job(10), Priority::Bulk);
        queue.push(dummy_job(11), Priority::Bulk);
        // Newest bulk first (owner keeps its FIFO head), then newest
        // interactive once bulk is exhausted.
        let stolen: Vec<u64> = std::iter::from_fn(|| queue.steal_tail())
            .map(|job| job.id)
            .collect();
        assert_eq!(stolen, vec![11, 10, 1, 0]);
    }

    #[test]
    fn set_exec_carryover_keeps_lane_attribution() {
        let network = Arc::new(compiled());
        // 3-lane pool, sequential exec: one worker owning one engine. The
        // owned lane is whatever the pool handed out — capture it.
        let mut runner = BatchRunner::with_exec(
            Arc::clone(&network),
            SneConfig::with_slices(2),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap();
        let owned_lane = runner.scheduler().worker_lanes()[0];
        let streams = streams(4);
        for stream in &streams {
            let _ = runner.submit(stream.clone());
        }
        // The swap rescues the outstanding completions. Regression: rescued
        // records must keep the lane of the engine that actually served them
        // (the old scheduler's owned lane), not be remapped to the new
        // scheduler's worker indices.
        runner.set_exec(ExecStrategy::threaded(3));
        let records = runner.drain();
        assert_eq!(records.len(), 4);
        let mut session =
            InferenceSession::new(Arc::clone(&network), SneConfig::with_slices(2)).unwrap();
        for (record, stream) in records.iter().zip(&streams) {
            assert_eq!(record.lane, owned_lane, "carried record lost its lane");
            assert_eq!(
                record.result.as_ref().unwrap(),
                &session.infer(stream).unwrap()
            );
        }
        // Ids recover submission order across the swap.
        let ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}

//! Serving many users: N independent sessions over N event streams.
//!
//! The production scenario the ROADMAP targets is a fleet of SNE instances
//! consuming sustained event traffic from many sensors/users at once. A
//! [`BatchRunner`] models exactly that: it compiles the network once, opens
//! `lanes` independent [`InferenceSession`]s (one persistent engine + neuron
//! state each), assigns incoming streams round-robin to the lanes, and
//! aggregates the per-inference [`CycleStats`] and energy into a
//! [`BatchReport`]. Lanes are independent hardware instances, so the batch
//! makespan is the busiest lane, while energy adds across all of them.
//!
//! Because the lanes share no mutable state, they can be *driven* in
//! parallel too: under [`ExecStrategy::Threaded`] the runner fans its lanes
//! out over host worker threads ([`BatchRunner::with_exec`]), each lane
//! consuming its round-robin share of the streams in order. The stream→lane
//! assignment and every per-stream result are bit-identical to the
//! sequential runner; only the host wall-clock time changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sne_event::EventStream;
use sne_sim::{CycleStats, ExecStrategy, SneConfig};

use crate::compile::CompiledNetwork;
use crate::run::InferenceResult;
use crate::session::InferenceSession;
use crate::SneError;

/// Aggregated outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-stream results, in input order.
    pub results: Vec<InferenceResult>,
    /// Number of parallel lanes (independent SNE instances) used.
    pub lanes: usize,
    /// Cycle statistics summed over every inference of the batch.
    pub total_stats: CycleStats,
    /// Energy summed over every inference, in µJ.
    pub total_energy_uj: f64,
    /// Busy time of the busiest lane in milliseconds — the batch makespan
    /// when all lanes run concurrently.
    pub makespan_ms: f64,
    /// Sustained throughput of the fleet: inferences per second at the
    /// makespan ([`f64::INFINITY`] for an empty batch).
    pub aggregate_rate: f64,
    /// Mean energy per inference in µJ (0 for an empty batch).
    pub mean_energy_uj: f64,
    /// Host worker threads that drove the lanes (1 for a sequential run).
    pub threads: usize,
}

/// Drives N independent [`InferenceSession`]s over N streams and aggregates
/// their statistics — the compile-once, serve-many-users runtime.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sne::batch::BatchRunner;
/// use sne::compile::CompiledNetwork;
/// use sne::proportionality::stream_with_activity;
/// use sne_model::topology::Topology;
/// use sne_model::Shape;
/// use sne_sim::SneConfig;
///
/// # fn main() -> Result<(), sne::SneError> {
/// let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let network = CompiledNetwork::random(&topology, &mut rng)?;
/// let mut runner = BatchRunner::new(network, SneConfig::with_slices(2), 3)?;
///
/// let streams: Vec<_> = (0..6)
///     .map(|i| stream_with_activity((2, 8, 8), 16, 0.04, 100 + i))
///     .collect();
/// let report = runner.run(&streams)?;
/// assert_eq!(report.results.len(), 6);
/// assert!(report.aggregate_rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchRunner {
    sessions: Vec<InferenceSession>,
    exec: ExecStrategy,
}

impl BatchRunner {
    /// Compiles-once and opens `lanes` sessions sharing the compiled network
    /// (lanes driven sequentially on the calling thread).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero and propagates
    /// session construction errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
    ) -> Result<Self, SneError> {
        Self::with_exec(network, config, lanes, ExecStrategy::Sequential)
    }

    /// Like [`BatchRunner::new`], but the N lanes are driven on (up to) N
    /// host worker threads under a parallel [`ExecStrategy`]. Each lane's
    /// engine stays sequential — the parallelism lives across lanes, mirroring
    /// the independent SNE instances of the fleet — and the report is
    /// bit-identical to the sequential runner's.
    ///
    /// # Errors
    ///
    /// Same as [`BatchRunner::new`].
    pub fn with_exec(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        if lanes == 0 {
            return Err(SneError::EmptyBatch);
        }
        let network = network.into();
        // Compile the sparse-datapath tables once; every lane shares the
        // same read-only set across its worker thread.
        let plans = Arc::new(network.build_plans());
        let sessions = (0..lanes)
            .map(|_| {
                InferenceSession::with_shared_plans(
                    Arc::clone(&network),
                    config,
                    ExecStrategy::Sequential,
                    Arc::clone(&plans),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { sessions, exec })
    }

    /// Number of parallel lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.sessions.len()
    }

    /// The execution strategy driving the lanes.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.exec
    }

    /// Changes the execution strategy (takes effect on the next batch; never
    /// changes results).
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.exec = exec;
    }

    /// One lane's session (e.g. to stream into it directly).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn session_mut(&mut self, lane: usize) -> &mut InferenceSession {
        &mut self.sessions[lane]
    }

    /// Runs every stream (stream `i` on lane `i % lanes`) and aggregates the
    /// statistics. Sessions are re-used across calls — no compilation or
    /// allocation happens per stream. Under a parallel strategy the lanes run
    /// on worker threads; each lane still consumes its streams in input
    /// order, so every per-stream result (and the whole report) is
    /// bit-identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Propagates the inference error of the lowest-numbered failing stream
    /// (the same error a sequential run reports first).
    pub fn run(&mut self, streams: &[EventStream]) -> Result<BatchReport, SneError> {
        let lanes = self.sessions.len();
        let exec = self.exec;
        // Per-stream results of one lane, or the first `(stream index, error)`
        // the lane hit.
        type LaneOutcome = Result<Vec<(usize, InferenceResult)>, (usize, SneError)>;
        // Lowest failing stream index observed so far, for deterministic
        // fail-fast: a failure at index `m` makes every result with a higher
        // index moot (the batch returns the minimum-index error), so lanes
        // stop once their next stream is beyond it. Streams below `m` always
        // run, so an even earlier failure is never missed — the reported
        // error is identical for every strategy and thread interleaving.
        let min_failed = AtomicUsize::new(usize::MAX);
        // Fan the lanes out: lane `l` infers streams `l, l + lanes, ...` in
        // order — exactly the round-robin schedule of the sequential loop,
        // just regrouped by lane. `infer` resets the session first, so the
        // regrouping cannot change any result.
        let lane_outcomes: Vec<LaneOutcome> = exec.map(&mut self.sessions, |lane, session| {
            let mut outcomes = Vec::new();
            for (i, stream) in streams.iter().enumerate().skip(lane).step_by(lanes) {
                if i > min_failed.load(Ordering::SeqCst) {
                    // Indices only grow within a lane; nothing left to do.
                    break;
                }
                match session.infer(stream) {
                    Ok(result) => outcomes.push((i, result)),
                    Err(error) => {
                        min_failed.fetch_min(i, Ordering::SeqCst);
                        return Err((i, error));
                    }
                }
            }
            Ok(outcomes)
        });

        // Deterministic reduction: first failing stream index wins; otherwise
        // scatter the per-lane results back into input order.
        let mut first_error: Option<(usize, SneError)> = None;
        let mut slots: Vec<Option<InferenceResult>> = (0..streams.len()).map(|_| None).collect();
        for outcome in lane_outcomes {
            match outcome {
                Ok(outcomes) => {
                    for (i, result) in outcomes {
                        slots[i] = Some(result);
                    }
                }
                Err((i, error)) => {
                    if first_error.as_ref().map_or(true, |(j, _)| i < *j) {
                        first_error = Some((i, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }

        let results: Vec<InferenceResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every stream produced a result"))
            .collect();
        let mut lane_time_ms = vec![0.0f64; lanes];
        let mut total_stats = CycleStats::new();
        let mut total_energy_uj = 0.0;
        for (i, result) in results.iter().enumerate() {
            lane_time_ms[i % lanes] += result.inference_time_ms;
            total_stats += result.stats;
            total_energy_uj += result.energy.energy_uj;
        }
        let makespan_ms = lane_time_ms.iter().fold(0.0f64, |a, &b| a.max(b));
        let aggregate_rate = if streams.is_empty() {
            f64::INFINITY
        } else if makespan_ms > 0.0 {
            results.len() as f64 / (makespan_ms / 1_000.0)
        } else {
            0.0
        };
        let mean_energy_uj = if results.is_empty() {
            0.0
        } else {
            total_energy_uj / results.len() as f64
        };
        Ok(BatchReport {
            lanes,
            total_stats,
            total_energy_uj,
            makespan_ms,
            aggregate_rate,
            mean_energy_uj,
            threads: exec.threads(),
            results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn streams(n: u64) -> Vec<EventStream> {
        (0..n)
            .map(|i| crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.04, 50 + i))
            .collect()
    }

    #[test]
    fn zero_lanes_are_rejected() {
        assert!(matches!(
            BatchRunner::new(compiled(), SneConfig::with_slices(2), 0),
            Err(SneError::EmptyBatch)
        ));
    }

    #[test]
    fn report_aggregates_per_stream_results() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 3).unwrap();
        assert_eq!(runner.lanes(), 3);
        let streams = streams(7);
        let report = runner.run(&streams).unwrap();
        assert_eq!(report.results.len(), 7);
        assert_eq!(report.lanes, 3);
        let cycle_sum: u64 = report.results.iter().map(|r| r.stats.total_cycles).sum();
        assert_eq!(report.total_stats.total_cycles, cycle_sum);
        let energy_sum: f64 = report.results.iter().map(|r| r.energy.energy_uj).sum();
        assert!((report.total_energy_uj - energy_sum).abs() < 1e-9);
        assert!((report.mean_energy_uj - energy_sum / 7.0).abs() < 1e-9);
        // Lane 0 serves streams 0, 3 and 6; the makespan covers at least it.
        let lane0: f64 = [0, 3, 6]
            .iter()
            .map(|&i| report.results[i].inference_time_ms)
            .sum();
        assert!(report.makespan_ms >= lane0 - 1e-9);
        assert!(report.makespan_ms <= report.results.iter().map(|r| r.inference_time_ms).sum());
        assert!(report.aggregate_rate > 0.0);
    }

    #[test]
    fn batch_results_match_individual_sessions() {
        let network = Arc::new(compiled());
        let streams = streams(4);
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&streams).unwrap();
        let mut single = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        for (stream, batched) in streams.iter().zip(&report.results) {
            assert_eq!(&single.infer(stream).unwrap(), batched);
        }
        // Lanes are reusable across batches.
        let again = runner.run(&streams).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn threaded_lanes_produce_a_bit_identical_report() {
        let network = Arc::new(compiled());
        let streams = streams(9);
        let mut sequential =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 4).unwrap();
        let reference = sequential.run(&streams).unwrap();
        assert_eq!(reference.threads, 1);
        for threads in [2usize, 3, 8] {
            let mut parallel = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                4,
                ExecStrategy::threaded(threads),
            )
            .unwrap();
            let report = parallel.run(&streams).unwrap();
            assert_eq!(report.threads, threads);
            assert_eq!(report.results, reference.results, "threads = {threads}");
            assert_eq!(report.total_stats, reference.total_stats);
            assert_eq!(report.lanes, reference.lanes);
            assert!((report.makespan_ms - reference.makespan_ms).abs() < 1e-12);
            assert!((report.total_energy_uj - reference.total_energy_uj).abs() < 1e-12);
        }
    }

    #[test]
    fn exec_strategy_is_switchable_between_batches() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let streams = streams(5);
        let before = runner.run(&streams).unwrap();
        runner.set_exec(ExecStrategy::threaded(4));
        assert!(runner.exec().is_parallel());
        let after = runner.run(&streams).unwrap();
        assert_eq!(before.results, after.results);
        assert_eq!(after.threads, 4);
    }

    #[test]
    fn threaded_error_reporting_matches_the_sequential_choice() {
        let network = compiled();
        let mut streams = streams(6);
        // Streams 2 and 5 are malformed (wrong geometry).
        streams[2] = EventStream::new(16, 16, 2, 8);
        streams[5] = EventStream::new(4, 4, 1, 8);
        let mut sequential =
            BatchRunner::new(network.clone(), SneConfig::with_slices(2), 3).unwrap();
        let expected = sequential.run(&streams).unwrap_err();
        let mut parallel = BatchRunner::with_exec(
            network,
            SneConfig::with_slices(2),
            3,
            ExecStrategy::threaded(3),
        )
        .unwrap();
        assert_eq!(parallel.run(&streams).unwrap_err(), expected);
    }

    #[test]
    fn empty_batches_produce_an_empty_report() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&[]).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.total_stats.total_cycles, 0);
        assert_eq!(report.mean_energy_uj, 0.0);
        assert!(report.aggregate_rate.is_infinite());
        runner.session_mut(0).reset();
    }
}

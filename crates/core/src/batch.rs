//! Serving many users: an engine pool, a work-queue scheduler, and the
//! closed-batch runner rebuilt on top of them.
//!
//! The production scenario the ROADMAP targets is a fleet of SNE instances
//! consuming sustained event traffic from many sensors/users at once. Multi-
//! instance accelerators (Mega, SpiDR) frame the hardware exactly this way:
//! a pool of identical engines fed from a shared queue. The runtime mirrors
//! that split in three tiers:
//!
//! * [`EnginePool`] holds N warm engines (plus a scratch [`ClientState`]
//!   each) built from one shared [`RuntimeArtifact`]. Engines are **checked
//!   out per request** and checked back in afterwards, so any engine can
//!   serve any client — the prerequisite for dynamic work arrival.
//! * [`Scheduler`] is a FIFO work queue (std `mpsc` + worker threads, no new
//!   dependencies) in front of the pool: requests are [`Scheduler::submit`]ed
//!   as they arrive, workers check an engine out per request, and every
//!   completion carries its **queue-wait** and **service** latency
//!   ([`RequestRecord`]).
//! * [`BatchRunner`] is the closed-batch convenience preserved from the
//!   earlier lane-pinned runner: [`BatchRunner::run`] submits every stream,
//!   drains, and aggregates a [`BatchReport`]. The legacy statically-pinned
//!   round-robin walk survives as [`BatchRunner::run_round_robin`] — the
//!   reference oracle the dynamic scheduler is proven bit-identical against
//!   (`tests/scheduler_equivalence.rs`).
//!
//! Because every request starts from resting neuron state (`infer` resets
//! the engine's scratch client first), *which* engine serves a request can
//! never change its result: the dynamic scheduler's per-stream results are
//! bit-identical to the static round-robin runner's, in input order, for
//! every [`ExecStrategy`]. Only the host-measured latencies differ.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use sne_event::EventStream;
use sne_sim::{CycleStats, Engine, ExecStrategy, SneConfig};

use crate::artifact::{ClientState, RuntimeArtifact};
use crate::compile::CompiledNetwork;
use crate::run::InferenceResult;
use crate::session::ChunkOutput;
use crate::SneError;

/// Order statistics of a set of host-measured latencies, in microseconds.
///
/// Percentiles use the nearest-rank method; an empty sample set reports all
/// zeros. These are **wall-clock host** numbers (unlike the modelled
/// cycle-derived times), so they vary run to run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean in µs.
    pub mean_us: f64,
    /// Median (50th percentile) in µs.
    pub p50_us: f64,
    /// 95th percentile in µs.
    pub p95_us: f64,
    /// 99th percentile in µs.
    pub p99_us: f64,
    /// Largest sample in µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a sample set (order irrelevant; not modified).
    #[must_use]
    pub fn from_samples_us(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let nearest_rank = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_us: nearest_rank(0.50),
            p95_us: nearest_rank(0.95),
            p99_us: nearest_rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// One warm engine of the fleet, bundled with the shared artifact and a
/// reusable scratch [`ClientState`] for whole-sample requests. Obtained from
/// [`EnginePool::checkout`] and returned with [`EnginePool::checkin`].
#[derive(Debug)]
pub struct PooledEngine {
    lane: usize,
    artifact: Arc<RuntimeArtifact>,
    engine: Engine,
    scratch: ClientState,
}

impl PooledEngine {
    /// Stable index of this engine within its pool (`0..lanes`).
    #[must_use]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The shared artifact this engine executes against.
    #[must_use]
    pub fn artifact(&self) -> &Arc<RuntimeArtifact> {
        &self.artifact
    }

    /// Runs one whole-sample inference on this engine's scratch client
    /// (reset first, so results never depend on which engine served which
    /// request).
    ///
    /// # Errors
    ///
    /// Same as [`crate::session::InferenceSession::infer`].
    pub fn infer(&mut self, input: &EventStream) -> Result<InferenceResult, SneError> {
        self.artifact
            .infer(&mut self.engine, &mut self.scratch, input, true)
    }

    /// Streams one chunk of an external client's feed through this engine:
    /// the neuron state lives in the caller's [`ClientState`], so the
    /// client's next chunk may be served by any other engine of the pool.
    ///
    /// # Errors
    ///
    /// Same as [`crate::session::InferenceSession::push`].
    pub fn push(
        &mut self,
        client: &mut ClientState,
        chunk: &EventStream,
    ) -> Result<ChunkOutput, SneError> {
        self.artifact.push(&mut self.engine, client, chunk, true)
    }
}

/// A fixed fleet of warm engines sharing one [`RuntimeArtifact`]: check one
/// out per request, run, check it back in. [`EnginePool::checkout`] blocks
/// until an engine is free, which is what turns N engines plus any number of
/// request threads into a well-formed queueing system.
#[derive(Debug)]
pub struct EnginePool {
    artifact: Arc<RuntimeArtifact>,
    idle: Mutex<Vec<PooledEngine>>,
    available: Condvar,
    lanes: usize,
}

impl EnginePool {
    /// Builds `lanes` engines (and scratch clients) against `artifact`, all
    /// allocated here, once. `engine_exec` is each engine's per-slice worker
    /// fan-out (keep it [`ExecStrategy::Sequential`] when the parallelism
    /// lives across lanes, as in [`BatchRunner`]).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero.
    pub fn new(
        artifact: Arc<RuntimeArtifact>,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        if lanes == 0 {
            return Err(SneError::EmptyBatch);
        }
        let idle = (0..lanes)
            .map(|lane| PooledEngine {
                lane,
                artifact: Arc::clone(&artifact),
                engine: artifact.new_engine(engine_exec),
                scratch: artifact.new_client(),
            })
            .collect();
        Ok(Self {
            artifact,
            idle: Mutex::new(idle),
            available: Condvar::new(),
            lanes,
        })
    }

    /// Convenience: compiles the artifact and builds the pool in one step.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero, plus
    /// [`RuntimeArtifact::new`]'s errors.
    pub fn for_network(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        if lanes == 0 {
            return Err(SneError::EmptyBatch);
        }
        Self::new(
            Arc::new(RuntimeArtifact::new(network, config)?),
            lanes,
            engine_exec,
        )
    }

    /// Total engines in the fleet.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Engines currently idle (not checked out).
    #[must_use]
    pub fn idle_lanes(&self) -> usize {
        self.idle.lock().expect("engine pool poisoned").len()
    }

    /// The shared artifact the fleet executes against.
    #[must_use]
    pub fn artifact(&self) -> &Arc<RuntimeArtifact> {
        &self.artifact
    }

    /// Checks an engine out, blocking until one is free.
    #[must_use]
    pub fn checkout(&self) -> PooledEngine {
        let mut idle = self.idle.lock().expect("engine pool poisoned");
        loop {
            if let Some(engine) = idle.pop() {
                return engine;
            }
            idle = self.available.wait(idle).expect("engine pool poisoned");
        }
    }

    /// Checks an engine out if one is free right now.
    #[must_use]
    pub fn try_checkout(&self) -> Option<PooledEngine> {
        self.idle.lock().expect("engine pool poisoned").pop()
    }

    /// Returns an engine to the pool and wakes one waiter.
    pub fn checkin(&self, engine: PooledEngine) {
        debug_assert!(
            Arc::ptr_eq(&engine.artifact, &self.artifact),
            "engine returned to a foreign pool"
        );
        self.idle.lock().expect("engine pool poisoned").push(engine);
        self.available.notify_one();
    }
}

/// Completion record of one scheduled request.
#[derive(Debug)]
pub struct RequestRecord {
    /// Monotonic request id, assigned at [`Scheduler::submit`] time (ids
    /// order submissions, so sorting by id recovers input order).
    pub id: u64,
    /// The inference outcome.
    pub result: Result<InferenceResult, SneError>,
    /// Pool lane that served the request.
    pub lane: usize,
    /// Host time from submission until service started (queue + engine
    /// checkout wait), in µs.
    pub queue_us: f64,
    /// Host time the engine spent on the request, in µs.
    pub service_us: f64,
}

/// Cumulative counters of a [`Scheduler`] (or any other request recorder):
/// totals plus latency order statistics over a bounded window of recent
/// requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerStats {
    /// Requests completed (success or error).
    pub completed: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Queue-wait latency summary over the recent-request window.
    pub queue: LatencySummary,
    /// Service latency summary over the recent-request window.
    pub service: LatencySummary,
}

/// Bounded reservoir of recent latency samples plus total counters — shared
/// by the scheduler and reusable by any front-end (e.g. `sne_serve`) that
/// wants `/v1/stats`-style percentiles without unbounded memory.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    inner: Mutex<RecorderInner>,
}

#[derive(Debug, Default)]
struct RecorderInner {
    completed: u64,
    errors: u64,
    queue_us: VecDeque<f64>,
    service_us: VecDeque<f64>,
}

/// Samples kept per latency series (oldest evicted first).
const RECORDER_WINDOW: usize = 4096;

impl LatencyRecorder {
    /// A recorder with empty counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&self, queue_us: f64, service_us: f64, is_error: bool) {
        let mut guard = self.inner.lock().expect("latency recorder poisoned");
        let inner = &mut *guard;
        inner.completed += 1;
        inner.errors += u64::from(is_error);
        for (series, sample) in [
            (&mut inner.queue_us, queue_us),
            (&mut inner.service_us, service_us),
        ] {
            if series.len() == RECORDER_WINDOW {
                series.pop_front();
            }
            series.push_back(sample);
        }
    }

    /// Snapshot of the counters and latency summaries.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.inner.lock().expect("latency recorder poisoned");
        let queue: Vec<f64> = inner.queue_us.iter().copied().collect();
        let service: Vec<f64> = inner.service_us.iter().copied().collect();
        SchedulerStats {
            completed: inner.completed,
            errors: inner.errors,
            queue: LatencySummary::from_samples_us(&queue),
            service: LatencySummary::from_samples_us(&service),
        }
    }
}

/// One queued request. The stream is behind an `Arc` so callers that
/// already hold shared streams submit without copying event data.
struct Job {
    id: u64,
    stream: Arc<EventStream>,
    enqueued: Instant,
    reply: mpsc::Sender<RequestRecord>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish()
    }
}

#[derive(Debug)]
struct SchedQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

#[derive(Debug)]
struct SchedShared {
    pool: Arc<EnginePool>,
    queue: Mutex<SchedQueue>,
    ready: Condvar,
    next_id: AtomicU64,
    recorder: LatencyRecorder,
}

/// A dynamic work-queue scheduler over an [`EnginePool`]: requests arrive at
/// any time from any thread ([`Scheduler::submit`] /
/// [`Scheduler::call`]), worker threads pull them FIFO, check an engine out
/// per request and record queue-wait and service latency per completion.
///
/// Shutting the scheduler down ([`Scheduler::shutdown`] or drop) is
/// graceful: already-queued work is finished before the workers exit.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<SchedShared>,
    workers: Vec<JoinHandle<()>>,
    results_tx: mpsc::Sender<RequestRecord>,
    /// Behind a mutex so the scheduler is `Sync`: server threads share it
    /// via [`Scheduler::call`] while a batch driver owns `&mut` for
    /// submit/drain.
    results_rx: Mutex<mpsc::Receiver<RequestRecord>>,
    outstanding: usize,
}

impl Scheduler {
    /// Starts `workers` worker threads over `pool`. More workers than pool
    /// lanes cannot help (they would only queue on the pool); size with
    /// [`ExecStrategy::pool_workers`].
    #[must_use]
    pub fn new(pool: Arc<EnginePool>, workers: usize) -> Self {
        let shared = Arc::new(SchedShared {
            pool,
            queue: Mutex::new(SchedQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            next_id: AtomicU64::new(0),
            recorder: LatencyRecorder::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let (results_tx, results_rx) = mpsc::channel();
        Self {
            shared,
            workers,
            results_tx,
            results_rx: Mutex::new(results_rx),
            outstanding: 0,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Requests submitted with [`Scheduler::submit`] whose completion
    /// records have not been collected by [`Scheduler::drain`] yet.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The engine pool behind the scheduler.
    #[must_use]
    pub fn pool(&self) -> &Arc<EnginePool> {
        &self.shared.pool
    }

    /// Requests queued but not yet picked up by a worker.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("scheduler poisoned")
            .jobs
            .len()
    }

    /// Cumulative request counters and latency percentiles.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        self.shared.recorder.stats()
    }

    fn enqueue(&self, stream: Arc<EventStream>, reply: mpsc::Sender<RequestRecord>) -> u64 {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.shared.queue.lock().expect("scheduler poisoned");
            assert!(!queue.closed, "submit on a shut-down scheduler");
            queue.jobs.push_back(Job {
                id,
                stream,
                enqueued: Instant::now(),
                reply,
            });
        }
        self.shared.ready.notify_one();
        id
    }

    /// Enqueues one request; its completion is collected by
    /// [`Scheduler::drain`]. Returns the request id (ids order submissions).
    /// Accepts an owned stream or an `Arc` (no event copy for the latter).
    pub fn submit(&mut self, stream: impl Into<Arc<EventStream>>) -> u64 {
        let id = self.enqueue(stream.into(), self.results_tx.clone());
        self.outstanding += 1;
        id
    }

    /// Waits for every [`Scheduler::submit`]ted request to complete and
    /// returns the records sorted by request id (= submission order).
    pub fn drain(&mut self) -> Vec<RequestRecord> {
        let results_rx = self.results_rx.lock().expect("scheduler poisoned");
        let mut records = Vec::with_capacity(self.outstanding);
        for _ in 0..self.outstanding {
            records.push(results_rx.recv().expect("scheduler worker disconnected"));
        }
        self.outstanding = 0;
        records.sort_by_key(|r| r.id);
        records
    }

    /// Synchronous round trip: enqueues the request and blocks until its
    /// completion record arrives. Callable from any thread (this is the
    /// entry point a server's connection handlers use).
    #[must_use]
    pub fn call(&self, stream: impl Into<Arc<EventStream>>) -> RequestRecord {
        let (tx, rx) = mpsc::channel();
        let _ = self.enqueue(stream.into(), tx);
        rx.recv().expect("scheduler worker disconnected")
    }

    /// Graceful shutdown: queued work is finished, then the workers exit and
    /// are joined (idempotent; also runs on drop). Completion records of
    /// already-submitted work remain collectable with [`Scheduler::drain`];
    /// submitting *new* work after shutdown panics.
    pub fn shutdown(&mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("scheduler poisoned");
            queue.closed = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("scheduler worker panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &SchedShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("scheduler poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.closed {
                    break None;
                }
                queue = shared.ready.wait(queue).expect("scheduler poisoned");
            }
        };
        let Some(job) = job else { return };
        let mut engine = shared.pool.checkout();
        let queue_us = job.enqueued.elapsed().as_secs_f64() * 1e6;
        let service_start = Instant::now();
        let result = engine.infer(&job.stream);
        let service_us = service_start.elapsed().as_secs_f64() * 1e6;
        let lane = engine.lane();
        shared.pool.checkin(engine);
        shared
            .recorder
            .record(queue_us, service_us, result.is_err());
        // A dropped receiver (caller gave up) is not an error.
        let _ = job.reply.send(RequestRecord {
            id: job.id,
            result,
            lane,
            queue_us,
            service_us,
        });
    }
}

/// Aggregated outcome of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-stream results, in input order.
    pub results: Vec<InferenceResult>,
    /// Number of pool engines (independent SNE instances) used.
    pub lanes: usize,
    /// Cycle statistics summed over every inference of the batch.
    pub total_stats: CycleStats,
    /// Energy summed over every inference, in µJ.
    pub total_energy_uj: f64,
    /// Modelled busy time of the busiest lane in milliseconds under the
    /// canonical round-robin placement (stream `i` on lane `i % lanes`) —
    /// the batch makespan when all lanes run concurrently. Derived from the
    /// modelled per-inference times, so it is deterministic.
    pub makespan_ms: f64,
    /// Sustained throughput of the fleet: inferences per second at the
    /// makespan ([`f64::INFINITY`] for an empty batch).
    pub aggregate_rate: f64,
    /// Mean energy per inference in µJ (0 for an empty batch).
    pub mean_energy_uj: f64,
    /// Host worker threads that drove the engines (1 for a sequential run).
    pub threads: usize,
    /// Host wall-clock queue-wait latency per request (zero for the
    /// statically pinned [`BatchRunner::run_round_robin`], which has no
    /// queue).
    pub queue_latency: LatencySummary,
    /// Host wall-clock service latency per request.
    pub service_latency: LatencySummary,
    /// Host busy fraction of each pool lane over the run's wall time, in
    /// `[0, 1]` (index = lane).
    pub lane_utilization: Vec<f64>,
}

/// Drives a fleet of pooled engines over many streams and aggregates their
/// statistics — the compile-once, serve-many-users runtime.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sne::batch::BatchRunner;
/// use sne::compile::CompiledNetwork;
/// use sne::proportionality::stream_with_activity;
/// use sne_model::topology::Topology;
/// use sne_model::Shape;
/// use sne_sim::SneConfig;
///
/// # fn main() -> Result<(), sne::SneError> {
/// let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let network = CompiledNetwork::random(&topology, &mut rng)?;
/// let mut runner = BatchRunner::new(network, SneConfig::with_slices(2), 3)?;
///
/// let streams: Vec<_> = (0..6)
///     .map(|i| stream_with_activity((2, 8, 8), 16, 0.04, 100 + i))
///     .collect();
/// let report = runner.run(&streams)?;
/// assert_eq!(report.results.len(), 6);
/// assert!(report.aggregate_rate > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchRunner {
    pool: Arc<EnginePool>,
    scheduler: Scheduler,
    exec: ExecStrategy,
    /// Completion records rescued from a scheduler that was replaced by
    /// [`BatchRunner::set_exec`] while submissions were outstanding;
    /// returned (in order) by the next [`BatchRunner::drain`].
    carryover: Vec<RequestRecord>,
}

impl BatchRunner {
    /// Compiles-once and opens a pool of `lanes` engines sharing the
    /// compiled artifact, with one scheduler worker (requests served
    /// sequentially).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyBatch`] if `lanes` is zero and propagates
    /// artifact construction errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
    ) -> Result<Self, SneError> {
        Self::with_exec(network, config, lanes, ExecStrategy::Sequential)
    }

    /// Like [`BatchRunner::new`], but requests are served by
    /// `exec.pool_workers(lanes)` scheduler worker threads. Each engine
    /// stays sequential — the parallelism lives across the fleet, mirroring
    /// the independent SNE instances — and every per-stream result is
    /// bit-identical to the sequential runner's.
    ///
    /// # Errors
    ///
    /// Same as [`BatchRunner::new`].
    pub fn with_exec(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let pool = Arc::new(EnginePool::for_network(
            network,
            config,
            lanes,
            ExecStrategy::Sequential,
        )?);
        let scheduler = Scheduler::new(Arc::clone(&pool), exec.pool_workers(lanes));
        Ok(Self {
            pool,
            scheduler,
            exec,
            carryover: Vec::new(),
        })
    }

    /// Number of pooled engines.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// The engine pool (e.g. to share it with a server front-end).
    #[must_use]
    pub fn pool(&self) -> &Arc<EnginePool> {
        &self.pool
    }

    /// The dynamic scheduler (e.g. to [`Scheduler::call`] it directly from
    /// request threads).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The execution strategy driving the fleet.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.exec
    }

    /// Changes the execution strategy: the scheduler is rebuilt with the new
    /// worker count. Submissions still outstanding on the old scheduler are
    /// waited for and their completion records carried over to the next
    /// [`BatchRunner::drain`] — no result is ever lost. Never changes
    /// results.
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.exec = exec;
        let workers = exec.pool_workers(self.pool.lanes());
        if workers != self.scheduler.workers() {
            if self.scheduler.outstanding() > 0 {
                self.carryover.extend(self.scheduler.drain());
            }
            self.scheduler = Scheduler::new(Arc::clone(&self.pool), workers);
        }
    }

    /// Submits one stream to the dynamic scheduler without waiting; collect
    /// with [`BatchRunner::drain`]. Returns the request id. Accepts an owned
    /// stream or an `Arc` (no event copy for the latter).
    pub fn submit(&mut self, stream: impl Into<Arc<EventStream>>) -> u64 {
        self.scheduler.submit(stream)
    }

    /// Waits for all submitted requests and returns their completion records
    /// in submission order (records rescued by [`BatchRunner::set_exec`]
    /// first — submission order is preserved across the swap).
    pub fn drain(&mut self) -> Vec<RequestRecord> {
        let mut records = std::mem::take(&mut self.carryover);
        records.extend(self.scheduler.drain());
        records
    }

    /// Runs every stream through the dynamic scheduler (submit-all, then
    /// drain) and aggregates the statistics. Engines are checked out per
    /// request, so the stream→engine placement is dynamic; every per-stream
    /// *result* is nonetheless bit-identical to the statically pinned
    /// [`BatchRunner::run_round_robin`], in input order, because each
    /// request starts from resting neuron state.
    ///
    /// # Errors
    ///
    /// Propagates the inference error of the lowest-numbered failing stream
    /// (the same error the round-robin runner reports).
    pub fn run(&mut self, streams: &[EventStream]) -> Result<BatchReport, SneError> {
        assert!(
            self.carryover.is_empty() && self.scheduler.outstanding() == 0,
            "drain() incremental submissions before a closed-batch run()"
        );
        let wall_start = Instant::now();
        for stream in streams {
            let _ = self.scheduler.submit(stream.clone());
        }
        let records = self.scheduler.drain();
        let wall_us = wall_start.elapsed().as_secs_f64() * 1e6;

        let mut queue_samples = Vec::with_capacity(records.len());
        let mut service_samples = Vec::with_capacity(records.len());
        let mut lane_busy_us = vec![0.0f64; self.pool.lanes()];
        let mut first_error: Option<(u64, SneError)> = None;
        let mut results = Vec::with_capacity(records.len());
        for record in records {
            queue_samples.push(record.queue_us);
            service_samples.push(record.service_us);
            lane_busy_us[record.lane] += record.service_us;
            match record.result {
                Ok(result) => results.push(result),
                Err(error) => {
                    if first_error.as_ref().map_or(true, |(id, _)| record.id < *id) {
                        first_error = Some((record.id, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(assemble_report(
            results,
            self.pool.lanes(),
            self.scheduler.workers(),
            &queue_samples,
            &service_samples,
            &lane_busy_us,
            wall_us,
        ))
    }

    /// The legacy statically pinned runner, kept as the reference oracle the
    /// dynamic scheduler is proven against: stream `i` runs on lane
    /// `i % lanes`, each lane consuming its share in input order (on worker
    /// threads under a parallel [`ExecStrategy`], exactly the pre-scheduler
    /// behavior). Queue-wait latency is zero by construction.
    ///
    /// # Errors
    ///
    /// Propagates the inference error of the lowest-numbered failing stream.
    pub fn run_round_robin(&mut self, streams: &[EventStream]) -> Result<BatchReport, SneError> {
        let wall_start = Instant::now();
        let lanes = self.pool.lanes();
        let mut engines: Vec<PooledEngine> = (0..lanes).map(|_| self.pool.checkout()).collect();

        // The physical pool lane that served a walk slot, plus per-stream
        // results (with service time) — or the first `(stream index, error)`
        // the slot hit. Checkout order is unspecified, so the physical lane
        // id is carried explicitly for utilization attribution.
        type LaneOutcome = (
            usize,
            Result<Vec<(usize, InferenceResult, f64)>, (usize, SneError)>,
        );
        // Lowest failing stream index observed so far, for deterministic
        // fail-fast: a failure at index `m` makes every result with a higher
        // index moot (the batch returns the minimum-index error), so lanes
        // stop once their next stream is beyond it. Streams below `m` always
        // run, so an even earlier failure is never missed — the reported
        // error is identical for every strategy and thread interleaving.
        let min_failed = AtomicUsize::new(usize::MAX);
        let lane_outcomes: Vec<LaneOutcome> = self.exec.map(&mut engines, |slot, engine| {
            let mut outcomes = Vec::new();
            for (i, stream) in streams.iter().enumerate().skip(slot).step_by(lanes) {
                if i > min_failed.load(Ordering::SeqCst) {
                    // Indices only grow within a lane; nothing left to do.
                    break;
                }
                let service_start = Instant::now();
                match engine.infer(stream) {
                    Ok(result) => {
                        outcomes.push((i, result, service_start.elapsed().as_secs_f64() * 1e6));
                    }
                    Err(error) => {
                        min_failed.fetch_min(i, Ordering::SeqCst);
                        return (engine.lane(), Err((i, error)));
                    }
                }
            }
            (engine.lane(), Ok(outcomes))
        });
        for engine in engines {
            self.pool.checkin(engine);
        }
        let wall_us = wall_start.elapsed().as_secs_f64() * 1e6;

        // Deterministic reduction: first failing stream index wins; otherwise
        // scatter the per-lane results back into input order.
        let mut first_error: Option<(usize, SneError)> = None;
        let mut slots: Vec<Option<InferenceResult>> = (0..streams.len()).map(|_| None).collect();
        let mut service_samples = Vec::with_capacity(streams.len());
        let mut lane_busy_us = vec![0.0f64; lanes];
        for (lane, outcome) in lane_outcomes {
            match outcome {
                Ok(outcomes) => {
                    for (i, result, service_us) in outcomes {
                        slots[i] = Some(result);
                        service_samples.push(service_us);
                        lane_busy_us[lane] += service_us;
                    }
                }
                Err((i, error)) => {
                    if first_error.as_ref().map_or(true, |(j, _)| i < *j) {
                        first_error = Some((i, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        let results: Vec<InferenceResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every stream produced a result"))
            .collect();
        let queue_samples = vec![0.0f64; results.len()];
        Ok(assemble_report(
            results,
            lanes,
            self.exec.threads(),
            &queue_samples,
            &service_samples,
            &lane_busy_us,
            wall_us,
        ))
    }
}

/// Builds the aggregated report from per-stream results plus the
/// host-measured latency samples — shared by the dynamic and the round-robin
/// runner so the deterministic (modelled) fields cannot drift apart.
fn assemble_report(
    results: Vec<InferenceResult>,
    lanes: usize,
    threads: usize,
    queue_samples: &[f64],
    service_samples: &[f64],
    lane_busy_us: &[f64],
    wall_us: f64,
) -> BatchReport {
    let mut lane_time_ms = vec![0.0f64; lanes];
    let mut total_stats = CycleStats::new();
    let mut total_energy_uj = 0.0;
    for (i, result) in results.iter().enumerate() {
        lane_time_ms[i % lanes] += result.inference_time_ms;
        total_stats += result.stats;
        total_energy_uj += result.energy.energy_uj;
    }
    let makespan_ms = lane_time_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    let aggregate_rate = if results.is_empty() {
        f64::INFINITY
    } else if makespan_ms > 0.0 {
        results.len() as f64 / (makespan_ms / 1_000.0)
    } else {
        0.0
    };
    let mean_energy_uj = if results.is_empty() {
        0.0
    } else {
        total_energy_uj / results.len() as f64
    };
    let lane_utilization = lane_busy_us
        .iter()
        .map(|&busy| {
            if wall_us > 0.0 {
                (busy / wall_us).min(1.0)
            } else {
                0.0
            }
        })
        .collect();
    BatchReport {
        lanes,
        total_stats,
        total_energy_uj,
        makespan_ms,
        aggregate_rate,
        mean_energy_uj,
        threads,
        queue_latency: LatencySummary::from_samples_us(queue_samples),
        service_latency: LatencySummary::from_samples_us(service_samples),
        lane_utilization,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::InferenceSession;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn streams(n: u64) -> Vec<EventStream> {
        (0..n)
            .map(|i| crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.04, 50 + i))
            .collect()
    }

    #[test]
    fn zero_lanes_are_rejected() {
        assert!(matches!(
            BatchRunner::new(compiled(), SneConfig::with_slices(2), 0),
            Err(SneError::EmptyBatch)
        ));
        let artifact =
            Arc::new(RuntimeArtifact::new(compiled(), SneConfig::with_slices(2)).unwrap());
        assert!(matches!(
            EnginePool::new(artifact, 0, ExecStrategy::Sequential),
            Err(SneError::EmptyBatch)
        ));
    }

    #[test]
    fn latency_summary_uses_nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let summary = LatencySummary::from_samples_us(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_us, 50.0);
        assert_eq!(summary.p95_us, 95.0);
        assert_eq!(summary.p99_us, 99.0);
        assert_eq!(summary.max_us, 100.0);
        assert!((summary.mean_us - 50.5).abs() < 1e-12);
        assert_eq!(
            LatencySummary::from_samples_us(&[]),
            LatencySummary::default()
        );
        let single = LatencySummary::from_samples_us(&[7.0]);
        assert_eq!(single.p50_us, 7.0);
        assert_eq!(single.p99_us, 7.0);
    }

    #[test]
    fn pool_checkout_and_checkin_cycle_every_lane() {
        let pool = EnginePool::for_network(
            compiled(),
            SneConfig::with_slices(2),
            3,
            ExecStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(pool.lanes(), 3);
        assert_eq!(pool.idle_lanes(), 3);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.idle_lanes(), 0);
        assert!(pool.try_checkout().is_none());
        let mut lanes = [a.lane(), b.lane(), c.lane()];
        lanes.sort_unstable();
        assert_eq!(lanes, [0, 1, 2]);
        pool.checkin(a);
        pool.checkin(b);
        pool.checkin(c);
        assert_eq!(pool.idle_lanes(), 3);
        // A checked-out engine serves whole-sample requests from rest.
        let stream = &streams(1)[0];
        let mut engine = pool.checkout();
        let first = engine.infer(stream).unwrap();
        let again = engine.infer(stream).unwrap();
        assert_eq!(first, again);
        pool.checkin(engine);
    }

    #[test]
    fn pooled_engines_serve_parked_client_states() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                2,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let stream = &streams(1)[0];
        let mut reference = InferenceSession::new(
            Arc::clone(pool.artifact().network_arc()),
            SneConfig::with_slices(2),
        )
        .unwrap();

        // Push the chunks through *alternating* engines of the pool; the
        // neuron state lives in the parked ClientState, so the outcome is
        // bit-identical to one dedicated session consuming the same chunks.
        let mut client = pool.artifact().new_client();
        for chunk in stream.chunks(4) {
            let mut engine = pool.checkout();
            let out = engine.push(&mut client, &chunk).unwrap();
            assert_eq!(out, reference.push(&chunk).unwrap());
            // Return and immediately rotate to the other engine.
            pool.checkin(engine);
            let rotate = pool.checkout();
            pool.checkin(rotate);
        }
        assert_eq!(pool.artifact().summary(&client), reference.summary());
    }

    #[test]
    fn scheduler_submit_drain_returns_submission_order() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                3,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let mut scheduler = Scheduler::new(Arc::clone(&pool), 3);
        assert_eq!(scheduler.workers(), 3);
        let streams = streams(7);
        let ids: Vec<u64> = streams
            .iter()
            .map(|s| scheduler.submit(s.clone()))
            .collect();
        let records = scheduler.drain();
        assert_eq!(records.len(), 7);
        assert_eq!(records.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
        for record in &records {
            assert!(record.result.is_ok());
            assert!(record.lane < 3);
            assert!(record.service_us > 0.0);
            assert!(record.queue_us >= 0.0);
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 7);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.service.count, 7);
        assert!(stats.service.p99_us >= stats.service.p50_us);
        // `call` is the synchronous round trip request threads use.
        let record = scheduler.call(streams[0].clone());
        assert!(record.result.is_ok());
        assert_eq!(scheduler.stats().completed, 8);
        assert_eq!(scheduler.pending(), 0);
        scheduler.shutdown();
        assert_eq!(pool.idle_lanes(), 3);
    }

    #[test]
    fn scheduler_shutdown_drains_queued_work() {
        let pool = Arc::new(
            EnginePool::for_network(
                compiled(),
                SneConfig::with_slices(2),
                1,
                ExecStrategy::Sequential,
            )
            .unwrap(),
        );
        let mut scheduler = Scheduler::new(Arc::clone(&pool), 1);
        for stream in streams(5) {
            let _ = scheduler.submit(stream);
        }
        // Shut down FIRST: the backlog must still be finished (graceful
        // drain), its records delivered, and the engine returned.
        scheduler.shutdown();
        assert_eq!(scheduler.stats().completed, 5);
        let collected = scheduler.drain();
        assert_eq!(collected.len(), 5);
        assert!(collected.iter().all(|r| r.result.is_ok()));
        assert_eq!(pool.idle_lanes(), 1);
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn report_aggregates_per_stream_results() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 3).unwrap();
        assert_eq!(runner.lanes(), 3);
        let streams = streams(7);
        let report = runner.run(&streams).unwrap();
        assert_eq!(report.results.len(), 7);
        assert_eq!(report.lanes, 3);
        let cycle_sum: u64 = report.results.iter().map(|r| r.stats.total_cycles).sum();
        assert_eq!(report.total_stats.total_cycles, cycle_sum);
        let energy_sum: f64 = report.results.iter().map(|r| r.energy.energy_uj).sum();
        assert!((report.total_energy_uj - energy_sum).abs() < 1e-9);
        assert!((report.mean_energy_uj - energy_sum / 7.0).abs() < 1e-9);
        // Lane 0 serves streams 0, 3 and 6 under the modelled round-robin
        // placement; the makespan covers at least it.
        let lane0: f64 = [0, 3, 6]
            .iter()
            .map(|&i| report.results[i].inference_time_ms)
            .sum();
        assert!(report.makespan_ms >= lane0 - 1e-9);
        assert!(report.makespan_ms <= report.results.iter().map(|r| r.inference_time_ms).sum());
        assert!(report.aggregate_rate > 0.0);
        // Host-measured serving telemetry.
        assert_eq!(report.service_latency.count, 7);
        assert_eq!(report.queue_latency.count, 7);
        assert!(report.service_latency.p50_us > 0.0);
        assert!(report.service_latency.p99_us >= report.service_latency.p50_us);
        assert_eq!(report.lane_utilization.len(), 3);
        assert!(report
            .lane_utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert!(report.lane_utilization.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn batch_results_match_individual_sessions() {
        let network = Arc::new(compiled());
        let streams = streams(4);
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&streams).unwrap();
        let mut single = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        for (stream, batched) in streams.iter().zip(&report.results) {
            assert_eq!(&single.infer(stream).unwrap(), batched);
        }
        // Engines are reusable across batches; the deterministic fields of
        // the report are stable (only host latencies vary run to run).
        let again = runner.run(&streams).unwrap();
        assert_eq!(report.results, again.results);
        assert_eq!(report.total_stats, again.total_stats);
        assert!((report.makespan_ms - again.makespan_ms).abs() < 1e-12);
    }

    #[test]
    fn dynamic_run_matches_the_round_robin_oracle() {
        let network = Arc::new(compiled());
        let streams = streams(9);
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 3).unwrap();
        let reference = runner.run_round_robin(&streams).unwrap();
        assert_eq!(reference.queue_latency.p99_us, 0.0);
        let dynamic = runner.run(&streams).unwrap();
        assert_eq!(dynamic.results, reference.results);
        assert_eq!(dynamic.total_stats, reference.total_stats);
        assert_eq!(dynamic.lanes, reference.lanes);
        assert!((dynamic.makespan_ms - reference.makespan_ms).abs() < 1e-12);
        assert!((dynamic.total_energy_uj - reference.total_energy_uj).abs() < 1e-12);
    }

    #[test]
    fn threaded_lanes_produce_a_bit_identical_report() {
        let network = Arc::new(compiled());
        let streams = streams(9);
        let mut sequential =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 4).unwrap();
        let reference = sequential.run(&streams).unwrap();
        assert_eq!(reference.threads, 1);
        for threads in [2usize, 3, 8] {
            let mut parallel = BatchRunner::with_exec(
                Arc::clone(&network),
                SneConfig::with_slices(2),
                4,
                ExecStrategy::threaded(threads),
            )
            .unwrap();
            let report = parallel.run(&streams).unwrap();
            assert_eq!(report.threads, threads.min(4));
            assert_eq!(report.results, reference.results, "threads = {threads}");
            assert_eq!(report.total_stats, reference.total_stats);
            assert_eq!(report.lanes, reference.lanes);
            assert!((report.makespan_ms - reference.makespan_ms).abs() < 1e-12);
            assert!((report.total_energy_uj - reference.total_energy_uj).abs() < 1e-12);
        }
    }

    #[test]
    fn exec_strategy_is_switchable_between_batches() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let streams = streams(5);
        let before = runner.run(&streams).unwrap();
        runner.set_exec(ExecStrategy::threaded(4));
        assert!(runner.exec().is_parallel());
        let after = runner.run(&streams).unwrap();
        assert_eq!(before.results, after.results);
        // 4 requested, clamped to the 2 pool lanes.
        assert_eq!(after.threads, 2);
    }

    #[test]
    fn set_exec_never_loses_outstanding_results() {
        let network = Arc::new(compiled());
        let mut runner =
            BatchRunner::new(Arc::clone(&network), SneConfig::with_slices(2), 2).unwrap();
        let streams = streams(3);
        let expected = runner.run(&streams).unwrap();
        for stream in &streams {
            let _ = runner.submit(stream.clone());
        }
        // Swapping the scheduler mid-flight must rescue the outstanding
        // completions instead of dropping them with the old scheduler.
        runner.set_exec(ExecStrategy::threaded(2));
        let records = runner.drain();
        assert_eq!(records.len(), 3);
        for (record, expected) in records.iter().zip(&expected.results) {
            assert_eq!(record.result.as_ref().unwrap(), expected);
        }
        // And the runner is fully usable afterwards.
        assert_eq!(runner.run(&streams).unwrap().results, expected.results);
    }

    #[test]
    fn threaded_error_reporting_matches_the_sequential_choice() {
        let network = compiled();
        let mut streams = streams(6);
        // Streams 2 and 5 are malformed (wrong geometry).
        streams[2] = EventStream::new(16, 16, 2, 8);
        streams[5] = EventStream::new(4, 4, 1, 8);
        let mut sequential =
            BatchRunner::new(network.clone(), SneConfig::with_slices(2), 3).unwrap();
        let expected = sequential.run(&streams).unwrap_err();
        assert_eq!(sequential.run_round_robin(&streams).unwrap_err(), expected);
        let mut parallel = BatchRunner::with_exec(
            network,
            SneConfig::with_slices(2),
            3,
            ExecStrategy::threaded(3),
        )
        .unwrap();
        assert_eq!(parallel.run(&streams).unwrap_err(), expected);
        assert_eq!(parallel.run_round_robin(&streams).unwrap_err(), expected);
    }

    #[test]
    fn empty_batches_produce_an_empty_report() {
        let mut runner = BatchRunner::new(compiled(), SneConfig::with_slices(2), 2).unwrap();
        let report = runner.run(&[]).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.total_stats.total_cycles, 0);
        assert_eq!(report.mean_energy_uj, 0.0);
        assert!(report.aggregate_rate.is_infinite());
        assert_eq!(report.service_latency, LatencySummary::default());
        assert_eq!(report.lane_utilization, vec![0.0, 0.0]);
        assert_eq!(runner.pool().idle_lanes(), 2);
    }
}

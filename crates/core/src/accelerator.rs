//! The end-to-end accelerator runner.

use std::sync::Arc;

use sne_energy::{EnergyModel, PerformanceModel};
use sne_event::EventStream;
use sne_sim::{Engine, ExecStrategy, LayerMapping, LayerPlan, SneConfig};

use crate::compile::{CompiledNetwork, Stage};
use crate::run::InferenceResult;
use crate::session::{
    check_geometry, classify, pipeline_engines, pipeline_shares, run_stages, wavefront_makespan,
};
use crate::SneError;

/// An SNE instance ready to run compiled networks.
///
/// The accelerator runs the network in the time-multiplexed mapping mode of
/// paper §III-D.5: each accelerated layer executes on the engine, its output
/// event stream is written back to memory, the host folds any pooling stage
/// into the stream, and the next layer reads it back.
#[derive(Debug)]
pub struct SneAccelerator {
    engine: Engine,
    energy: EnergyModel,
    performance: PerformanceModel,
    /// Sparse-datapath plan set of the most recent network, reused across
    /// calls: repeated `run`s against the same network skip the
    /// configure-time plan compilation (the weight digest is re-verified per
    /// call, so an edited network can never run on a stale plan).
    cached_plans: Option<Arc<Vec<LayerPlan>>>,
}

impl SneAccelerator {
    /// Creates an accelerator with the given engine configuration.
    #[must_use]
    pub fn new(config: SneConfig) -> Self {
        Self::with_exec(config, ExecStrategy::Sequential)
    }

    /// Creates an accelerator whose engine fans its per-slice worker units
    /// out with the given [`ExecStrategy`] (bit-identical results for every
    /// strategy; only host wall-clock time differs).
    #[must_use]
    pub fn with_exec(config: SneConfig, exec: ExecStrategy) -> Self {
        Self {
            engine: Engine::with_exec(config, exec),
            energy: EnergyModel::new(),
            performance: PerformanceModel::new(),
            cached_plans: None,
        }
    }

    /// Returns the sparse-datapath plans for `network`, reusing the cached
    /// set when it verifiably matches (geometry **and** weight digests of
    /// every accelerated layer) and recompiling otherwise.
    fn plans_for(&mut self, network: &CompiledNetwork) -> Arc<Vec<LayerPlan>> {
        let mappings: Vec<&LayerMapping> =
            network.stages().iter().filter_map(Stage::mapping).collect();
        if let Some(plans) = &self.cached_plans {
            if plans.len() == mappings.len()
                && plans.iter().zip(&mappings).all(|(p, m)| p.matches(m))
            {
                return Arc::clone(plans);
            }
        }
        let plans = Arc::new(network.build_plans());
        self.cached_plans = Some(Arc::clone(&plans));
        plans
    }

    /// Whether a plan set is currently cached (for tests and diagnostics).
    #[must_use]
    pub fn has_cached_plans(&self) -> bool {
        self.cached_plans.is_some()
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &SneConfig {
        self.engine.config()
    }

    /// The execution strategy of the engine's per-slice worker units.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.engine.exec()
    }

    /// Changes the execution strategy (never changes results).
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.engine.set_exec(exec);
    }

    /// The underlying cycle-level engine (e.g. to enable tracing).
    #[must_use]
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Runs one inference over an input event stream.
    ///
    /// Every call executes the compiled stages on this accelerator's engine,
    /// starting from resting neuron state. For repeated inference on the same
    /// network prefer an [`crate::session::InferenceSession`], which is what
    /// this method routes through — the session additionally keeps the
    /// per-layer state buffers alive across calls and supports streaming.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the stream does not match
    /// the network input, and propagates simulator errors.
    pub fn run(
        &mut self,
        network: &CompiledNetwork,
        input: &EventStream,
    ) -> Result<InferenceResult, SneError> {
        check_geometry(network, input)?;
        if network.accelerated_layers() == 0 {
            return Err(SneError::EmptyNetwork);
        }

        let config = *self.engine.config();
        // Configure-time work is cached across calls: the sparse-datapath
        // tables are compiled on the first run of a network and reused
        // (digest-verified) until a different network shows up.
        let plans = self.plans_for(network);
        let outcome = run_stages(
            std::slice::from_mut(&mut self.engine),
            network,
            input,
            Some(&plans),
            None,
            false,
        )?;

        // The final stream's neurons are the classes; count spikes per class.
        let (predicted_class, counts) =
            classify(&outcome.stream, usize::from(network.output_classes()));
        let energy = self.energy.report(&config, &outcome.total);
        let inference_time_ms = self.performance.inference_time_ms(&config, &outcome.total);
        let inference_rate = self.performance.inference_rate(&config, &outcome.total);
        let mean_activity = outcome.mean_activity();

        Ok(InferenceResult {
            predicted_class,
            output_spike_counts: counts,
            stats: outcome.total,
            layers: outcome.layers,
            energy,
            inference_time_ms,
            inference_rate,
            mean_activity,
        })
    }
}

impl SneAccelerator {
    /// Runs one inference in the **pipelined layer-per-slice mode** of paper
    /// §III-D.5: the engine's slices are partitioned among the accelerated
    /// layers, every layer must fit its allocation in a single pass, output
    /// events flow to the next layer through the C-XBAR instead of external
    /// memory, and all layers execute concurrently. Functionally the result
    /// is identical to [`SneAccelerator::run`]; the timing differs — the
    /// inference duration is the *makespan* (the slowest layer) rather than
    /// the sum of the layer runtimes.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::PipelineDoesNotFit`] if there are fewer slices
    /// than accelerated layers or a layer exceeds its slice allocation, plus
    /// the same errors as [`SneAccelerator::run`].
    pub fn run_pipelined(
        &mut self,
        network: &CompiledNetwork,
        input: &EventStream,
    ) -> Result<InferenceResult, SneError> {
        check_geometry(network, input)?;
        let config = *self.engine.config();
        // Distribute the slices: every layer gets an equal share, the first
        // `num_slices % layers` layers get one extra slice. The one-shot
        // entry point discards neuron state at the end, so run stateless;
        // `PipelinedSession` is the persistent variant.
        let shares = pipeline_shares(network, &config)?;
        let mut engines = pipeline_engines(&config, &shares, self.engine.exec());
        let plans = self.plans_for(network);
        let outcome = run_stages(&mut engines, network, input, Some(&plans), None, false)?;

        // In the pipelined mode the layers overlap in time: the inference
        // duration is the makespan of the wavefront across the real
        // per-timestep layer schedules — layer `l` starts timestep `t` once
        // it finished `t - 1` and layer `l - 1` delivered `t` over the
        // C-XBAR.
        let mut pipeline_stats = outcome.total;
        pipeline_stats.total_cycles = wavefront_makespan(&outcome.profiles);

        let (predicted_class, counts) =
            classify(&outcome.stream, usize::from(network.output_classes()));
        let energy = self.energy.report(&config, &pipeline_stats);
        let inference_time_ms = self.performance.inference_time_ms(&config, &pipeline_stats);
        let inference_rate = self.performance.inference_rate(&config, &pipeline_stats);
        let mean_activity = outcome.mean_activity();

        Ok(InferenceResult {
            predicted_class,
            output_spike_counts: counts,
            stats: pipeline_stats,
            layers: outcome.layers,
            energy,
            inference_time_ms,
            inference_rate,
            mean_activity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_event::Event;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn input_stream(spikes_per_timestep: usize) -> EventStream {
        let mut stream = EventStream::new(8, 8, 2, 16);
        for t in 0..16 {
            for i in 0..spikes_per_timestep {
                stream
                    .push(Event::update(
                        t,
                        (i % 2) as u16,
                        (i % 8) as u16,
                        ((i * 3) % 8) as u16,
                    ))
                    .unwrap();
            }
        }
        stream
    }

    #[test]
    fn run_produces_prediction_and_per_layer_stats() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
        let result = accelerator.run(&compiled(), &input_stream(4)).unwrap();
        assert!(result.predicted_class < 3);
        assert_eq!(result.output_spike_counts.len(), 3);
        assert_eq!(result.layers.len(), 2);
        assert!(result.stats.total_cycles > 0);
        assert!(result.inference_time_ms > 0.0);
        assert!(result.inference_rate > 0.0);
        assert!(result.energy.energy_uj > 0.0);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(1));
        let wrong = EventStream::new(16, 16, 2, 8);
        assert!(matches!(
            accelerator.run(&compiled(), &wrong),
            Err(SneError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn more_input_events_cost_more_cycles_and_energy() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
        let network = compiled();
        let sparse = accelerator.run(&network, &input_stream(1)).unwrap();
        let dense = accelerator.run(&network, &input_stream(8)).unwrap();
        assert!(dense.stats.total_cycles > sparse.stats.total_cycles);
        assert!(dense.energy.energy_uj > sparse.energy.energy_uj);
        assert!(dense.input_events() > sparse.input_events());
    }

    #[test]
    fn plan_cache_is_reused_and_invalidated_per_network() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
        assert!(!accelerator.has_cached_plans());
        let network = compiled();
        let first = accelerator.run(&network, &input_stream(3)).unwrap();
        assert!(accelerator.has_cached_plans());
        let cached = Arc::clone(accelerator.cached_plans.as_ref().unwrap());
        // Same network: the cached set is reused pointer-identically and the
        // result is unchanged.
        let again = accelerator.run(&network, &input_stream(3)).unwrap();
        assert_eq!(first, again);
        assert!(Arc::ptr_eq(
            &cached,
            accelerator.cached_plans.as_ref().unwrap()
        ));
        // A different network (same topology, different weights) must miss
        // the cache and recompile — never run on a stale plan.
        let mut rng = StdRng::seed_from_u64(77);
        let other =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap();
        let mut dedicated = SneAccelerator::new(SneConfig::with_slices(2));
        let expected = dedicated.run(&other, &input_stream(3)).unwrap();
        assert_eq!(accelerator.run(&other, &input_stream(3)).unwrap(), expected);
        assert!(!Arc::ptr_eq(
            &cached,
            accelerator.cached_plans.as_ref().unwrap()
        ));
    }

    #[test]
    fn reruns_are_deterministic() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
        let network = compiled();
        let a = accelerator.run(&network, &input_stream(3)).unwrap();
        let b = accelerator.run(&network, &input_stream(3)).unwrap();
        assert_eq!(a.output_spike_counts, b.output_spike_counts);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn config_accessors_expose_engine() {
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(4));
        assert_eq!(accelerator.config().num_slices, 4);
        accelerator.engine_mut().enable_trace(16);
    }

    #[test]
    fn pipelined_mode_matches_time_multiplexed_functionally() {
        let network = compiled();
        let stream = input_stream(4);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
        let tm = accelerator.run(&network, &stream).unwrap();
        let pipelined = accelerator.run_pipelined(&network, &stream).unwrap();
        assert_eq!(tm.output_spike_counts, pipelined.output_spike_counts);
        assert_eq!(tm.predicted_class, pipelined.predicted_class);
        // The pipeline makespan is never longer than the serial schedule.
        assert!(pipelined.stats.total_cycles <= tm.stats.total_cycles);
        assert!(pipelined.inference_time_ms <= tm.inference_time_ms);
    }

    #[test]
    fn pipelined_mode_requires_enough_slices() {
        let network = compiled(); // two accelerated layers
        let stream = input_stream(2);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(1));
        assert!(matches!(
            accelerator.run_pipelined(&network, &stream),
            Err(SneError::PipelineDoesNotFit { .. })
        ));
    }

    #[test]
    fn pipelined_mode_rejects_oversized_layers() {
        // The Fig. 6 network at 32x32 has a 32*32*32 = 32768-neuron conv
        // layer, which cannot fit the 4096 neurons of its 4-slice allocation.
        let mut rng = StdRng::seed_from_u64(2);
        let network =
            CompiledNetwork::random(&Topology::paper_fig6(Shape::new(2, 32, 32), 11), &mut rng)
                .unwrap();
        let stream = EventStream::new(32, 32, 2, 4);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
        assert!(matches!(
            accelerator.run_pipelined(&network, &stream),
            Err(SneError::PipelineDoesNotFit { .. })
        ));
    }

    #[test]
    fn pipelined_mode_checks_geometry() {
        let network = compiled();
        let wrong = EventStream::new(16, 16, 2, 8);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
        assert!(matches!(
            accelerator.run_pipelined(&network, &wrong),
            Err(SneError::GeometryMismatch { .. })
        ));
    }
}

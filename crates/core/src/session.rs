//! The compile-once, run-many execution runtime.
//!
//! The SNE chip is configured once — weights, layer geometry, LIF parameters
//! — and events then stream through continuously (paper §III-D.5). This
//! module mirrors that split in software:
//!
//! * [`CompiledNetwork`] is the *configure* phase: validated geometry and
//!   per-layer hardware mappings, produced once.
//! * [`InferenceSession`] is the *run* phase: it owns a long-lived
//!   [`Engine`] plus per-layer persistent neuron state, so repeated
//!   inferences ([`InferenceSession::infer`]) re-use every allocation, and a
//!   continuous DVS feed can be consumed chunk by chunk
//!   ([`InferenceSession::push`]) with membrane state surviving between
//!   chunks. [`InferenceSession::reset`] returns the neuron state to rest.
//! * [`PipelinedSession`] is the same runtime for the pipelined
//!   layer-per-slice mapping mode: one persistent engine per layer, with the
//!   inference makespan computed from the real overlapped per-timestep
//!   schedule instead of an analytic approximation.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sne::compile::CompiledNetwork;
//! use sne::session::InferenceSession;
//! use sne_model::topology::Topology;
//! use sne_model::Shape;
//! use sne_sim::SneConfig;
//!
//! # fn main() -> Result<(), sne::SneError> {
//! let topology = Topology::tiny(Shape::new(2, 8, 8), 4, 3);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let network = CompiledNetwork::random(&topology, &mut rng)?;
//!
//! // Compile once ...
//! let mut session = InferenceSession::new(network, SneConfig::with_slices(2))?;
//! // ... run many: every inference re-uses the engine and state buffers.
//! let stream = sne::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, 3);
//! for _ in 0..3 {
//!     let result = session.infer(&stream)?;
//!     assert!(result.predicted_class < 3);
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::mpsc;
use std::sync::Arc;

use sne_event::EventStream;
use sne_sim::{
    CycleStats, Engine, ExecStrategy, Kernel, LayerMapping, LayerPlan, LayerRunOutput, LayerState,
    SimError, SneConfig,
};

use crate::artifact::{ClientState, RuntimeArtifact};
use crate::compile::{CompiledNetwork, Stage};
use crate::run::{InferenceResult, LayerExecution};
use crate::SneError;

/// Checks an input stream against the network input geometry (the timestep
/// count is free: a chunk may cover any window of the feed).
pub(crate) fn check_geometry(
    network: &CompiledNetwork,
    input: &EventStream,
) -> Result<(), SneError> {
    let g = input.geometry();
    let expected = network.input_shape();
    if (g.channels, g.height, g.width) != expected {
        return Err(SneError::GeometryMismatch {
            expected,
            found: (g.channels, g.height, g.width),
        });
    }
    Ok(())
}

/// Counts output spikes per class and picks the winner (lowest class index on
/// ties, matching the accelerator's priority encoder).
pub(crate) fn classify(stream: &EventStream, classes: usize) -> (usize, Vec<u32>) {
    let mut counts = vec![0u32; classes];
    for event in stream.iter().filter(|e| e.is_spike()) {
        if usize::from(event.ch) < classes {
            counts[usize::from(event.ch)] += 1;
        }
    }
    let predicted = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (predicted, counts)
}

/// What running every stage over one stream (whole sample or chunk) produced.
pub(crate) struct StageOutcome {
    /// Final-layer output events (chunk-local timeline).
    pub stream: EventStream,
    /// Per accelerated layer execution record.
    pub layers: Vec<LayerExecution>,
    /// Per accelerated layer per-timestep cycle schedule.
    pub profiles: Vec<Vec<u64>>,
    /// Aggregated cycle statistics.
    pub total: CycleStats,
}

impl StageOutcome {
    /// Mean output activity across the accelerated layers.
    pub fn mean_activity(&self) -> f64 {
        self.layers.iter().map(|l| l.output_activity).sum::<f64>() / self.layers.len().max(1) as f64
    }
}

/// Builds the per-layer execution record from one engine run — the single
/// formula both the sequential and the threaded stage walks use, so their
/// bookkeeping cannot drift apart. `timesteps` is the timestep count of the
/// layer's *input* stream (after any pooling).
fn layer_execution(
    description: &str,
    mapping: &LayerMapping,
    run: &LayerRunOutput,
    input_events: u64,
    timesteps: u32,
) -> LayerExecution {
    let output_events = run.output.spike_count() as u64;
    let neurons = mapping.total_output_neurons() as f64;
    let timesteps = f64::from(timesteps);
    let output_activity = if neurons * timesteps > 0.0 {
        output_events as f64 / (neurons * timesteps)
    } else {
        0.0
    };
    LayerExecution {
        description: description.to_owned(),
        stats: run.stats,
        input_events,
        output_events,
        output_activity,
    }
}

/// Dispatches one layer run to the engine, picking the planned or the naive
/// datapath and the stateful or stateless entry point — the single
/// dispatcher every stage walk uses, so the paths cannot drift apart.
fn run_one_layer(
    engine: &mut Engine,
    mapping: &LayerMapping,
    plan: Option<&LayerPlan>,
    stream: &EventStream,
    state: Option<&mut LayerState>,
    resume: bool,
) -> Result<LayerRunOutput, SimError> {
    match (plan, state) {
        (Some(plan), Some(state)) => {
            engine.run_layer_stateful_planned(mapping, plan, stream, state, resume)
        }
        (Some(plan), None) => engine.run_layer_planned(mapping, plan, stream),
        (None, Some(state)) => engine.run_layer_stateful(mapping, stream, state, resume),
        (None, None) => engine.run_layer(mapping, stream),
    }
}

/// Runs every compiled stage over `input` on `engines`, threading the
/// intermediate event streams through pooling stages.
///
/// `engines` holds either one engine (time-multiplexed mode: every layer runs
/// on it) or one engine per accelerated layer (pipelined mode). When `plans`
/// is provided (one [`LayerPlan`] per accelerated layer) the layers run on
/// the compiled sparse datapath — bit-identical to the naive mapping walk,
/// only faster on the host. When `states` is provided (one [`LayerState`] per
/// accelerated layer) the layers run stateful: with `resume` they continue
/// from the saved neuron state instead of starting from rest.
pub(crate) fn run_stages(
    engines: &mut [Engine],
    network: &CompiledNetwork,
    input: &EventStream,
    plans: Option<&[LayerPlan]>,
    mut states: Option<&mut [LayerState]>,
    resume: bool,
) -> Result<StageOutcome, SneError> {
    let mut stream = input.clone();
    let mut total = CycleStats::new();
    let mut layers = Vec::new();
    let mut profiles = Vec::new();
    let mut layer_index = 0usize;

    for stage in network.stages() {
        match stage {
            Stage::Pool { window, .. } => {
                stream = stream.downscale(*window);
            }
            Stage::Accelerated {
                mapping,
                description,
            } => {
                let engine = if engines.len() == 1 {
                    &mut engines[0]
                } else {
                    &mut engines[layer_index]
                };
                let input_events = stream.spike_count() as u64;
                let run = run_one_layer(
                    engine,
                    mapping,
                    plans.map(|p| &p[layer_index]),
                    &stream,
                    states.as_deref_mut().map(|s| &mut s[layer_index]),
                    resume,
                )?;
                total += run.stats;
                layers.push(layer_execution(
                    description,
                    mapping,
                    &run,
                    input_events,
                    stream.geometry().timesteps,
                ));
                profiles.push(run.timestep_cycles);
                stream = run.output;
                layer_index += 1;
            }
        }
    }

    Ok(StageOutcome {
        stream,
        layers,
        profiles,
        total,
    })
}

/// The stages handled by one pipeline worker thread: any pooling stages that
/// precede the accelerated layer, then the layer itself.
struct PipelineStage<'n> {
    pools: Vec<u16>,
    mapping: &'n LayerMapping,
    plan: Option<&'n LayerPlan>,
    description: &'n str,
}

/// [`run_stages`] with one **host thread per accelerated layer**: each layer
/// owns its engine and persistent state on its own thread, and intermediate
/// event streams flow between the stage threads over channels (the software
/// counterpart of the C-XBAR links between slice partitions).
///
/// Each stage consumes its complete input stream before the next stage runs
/// on it, exactly like [`run_stages`], so the outcome — output events,
/// per-layer statistics, cycle profiles — is bit-identical to the sequential
/// walk. The whole-stream handoff is what bit-exactness requires, and it
/// also means the stage threads execute **one after another** within a
/// single call: this path is the structural decomposition (isolated
/// engine + state per stage), not a wall-clock win today. The *modelled*
/// overlap of the pipeline remains [`wavefront_makespan`] over the
/// per-timestep schedules; real host overlap needs sub-stream-granularity
/// handoff, which this structure is the enabler for.
pub(crate) fn run_stages_pipelined(
    engines: &mut [Engine],
    network: &CompiledNetwork,
    input: &EventStream,
    plans: Option<&[LayerPlan]>,
    states: Option<&mut [LayerState]>,
    resume: bool,
) -> Result<StageOutcome, SneError> {
    // Partition the stage list into per-layer groups (pools attach to the
    // accelerated layer that follows them).
    let mut groups: Vec<PipelineStage<'_>> = Vec::new();
    let mut pending_pools: Vec<u16> = Vec::new();
    for stage in network.stages() {
        match stage {
            Stage::Pool { window, .. } => pending_pools.push(*window),
            Stage::Accelerated {
                mapping,
                description,
            } => {
                let layer_index = groups.len();
                groups.push(PipelineStage {
                    pools: std::mem::take(&mut pending_pools),
                    mapping,
                    plan: plans.map(|p| &p[layer_index]),
                    description,
                });
            }
        }
    }
    let trailing_pools = pending_pools;
    // Nothing to overlap (single layer), or the time-multiplexed
    // configuration (one engine shared by every layer, which cannot split
    // across stage threads): the sequential walk is the same computation.
    if groups.len() <= 1 || engines.len() != groups.len() {
        return run_stages(engines, network, input, plans, states, resume);
    }

    let mut state_shares: Vec<Option<&mut LayerState>> = match states {
        Some(states) => states.iter_mut().map(Some).collect(),
        None => engines.iter().map(|_| None).collect(),
    };

    type StageResult = Result<(LayerExecution, Vec<u64>), Option<SneError>>;
    let (layer_results, final_stream): (Vec<StageResult>, Option<EventStream>) =
        std::thread::scope(|scope| {
            let mut upstream_rx: Option<mpsc::Receiver<Option<EventStream>>> = None;
            let mut handles = Vec::with_capacity(groups.len());
            for ((group, engine), state) in groups
                .iter()
                .zip(engines.iter_mut())
                .zip(state_shares.drain(..))
            {
                let (tx, rx) = mpsc::channel::<Option<EventStream>>();
                let upstream = upstream_rx.replace(rx);
                handles.push(scope.spawn(move || -> StageResult {
                    // `None` on the channel (or a dropped sender) means an
                    // upstream stage failed; propagate the marker and report
                    // no error of our own (`Err(None)`): the upstream
                    // stage's own `Err(Some(..))` carries the real error.
                    let received = match upstream {
                        None => Some(input.clone()),
                        Some(rx) => rx.recv().unwrap_or(None),
                    };
                    let Some(mut stream) = received else {
                        let _ = tx.send(None);
                        return Err(None);
                    };
                    for &window in &group.pools {
                        stream = stream.downscale(window);
                    }
                    let input_events = stream.spike_count() as u64;
                    let run =
                        run_one_layer(engine, group.mapping, group.plan, &stream, state, resume);
                    match run {
                        Err(e) => {
                            let _ = tx.send(None);
                            Err(Some(SneError::from(e)))
                        }
                        Ok(run) => {
                            let layer = layer_execution(
                                group.description,
                                group.mapping,
                                &run,
                                input_events,
                                stream.geometry().timesteps,
                            );
                            let _ = tx.send(Some(run.output));
                            Ok((layer, run.timestep_cycles))
                        }
                    }
                }));
            }
            // The last channel delivers the final layer's output stream.
            let final_stream = upstream_rx
                .expect("pipeline has at least two stages")
                .recv()
                .unwrap_or(None);
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("pipeline stage thread panicked"))
                .collect();
            (results, final_stream)
        });

    // First failing layer (in layer order) wins — the same error the
    // sequential walk would have returned.
    let mut layers = Vec::with_capacity(layer_results.len());
    let mut profiles = Vec::with_capacity(layer_results.len());
    let mut total = CycleStats::new();
    for result in layer_results {
        match result {
            Ok((layer, profile)) => {
                total.merge(&layer.stats);
                layers.push(layer);
                profiles.push(profile);
            }
            Err(Some(error)) => return Err(error),
            Err(None) => unreachable!("upstream failure without a reported error"),
        }
    }
    let mut stream = final_stream.expect("pipeline completed but produced no stream");
    for &window in &trailing_pools {
        stream = stream.downscale(window);
    }
    Ok(StageOutcome {
        stream,
        layers,
        profiles,
        total,
    })
}

/// Completion time of the last event of the last layer when the per-layer
/// per-timestep schedules overlap in a pipeline: layer `l` can process
/// timestep `t` only after it finished timestep `t - 1` *and* layer `l - 1`
/// delivered timestep `t` through the C-XBAR.
pub(crate) fn wavefront_makespan(profiles: &[Vec<u64>]) -> u64 {
    let mut prev_finish: Vec<u64> = Vec::new();
    for profile in profiles {
        let mut finish = Vec::with_capacity(profile.len());
        let mut own_ready = 0u64;
        for (t, &cost) in profile.iter().enumerate() {
            let upstream_ready = prev_finish.get(t).copied().unwrap_or(0);
            let done = own_ready.max(upstream_ready) + cost;
            finish.push(done);
            own_ready = done;
        }
        prev_finish = finish;
    }
    prev_finish.last().copied().unwrap_or(0)
}

/// Output of one streamed chunk pushed through an [`InferenceSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkOutput {
    /// Final-layer output events of this chunk, on the session's absolute
    /// timeline (timestamps offset by [`ChunkOutput::start_timestep`]).
    pub output: EventStream,
    /// Cycles spent consuming this chunk, summed over all layers.
    pub stats: CycleStats,
    /// First absolute timestep the chunk covers.
    pub start_timestep: u32,
    /// Number of timesteps the chunk covers.
    pub timesteps: u32,
}

/// A long-lived execution session: one engine, per-layer persistent neuron
/// state, pre-sized at construction from the compiled network.
///
/// Create it once per (network, configuration) pair, then call
/// [`InferenceSession::infer`] for repeated whole-sample inference or
/// [`InferenceSession::push`] to stream a continuous feed chunk by chunk;
/// [`InferenceSession::reset`] starts a fresh sample.
///
/// A session is the convenience composite of the serving runtime's three
/// pieces: one shared [`RuntimeArtifact`] (immutable compiled network +
/// plans + configuration), one [`Engine`], and one [`ClientState`]
/// (per-layer neuron state + streaming cursor). Multi-client serving keeps
/// those pieces separate — see [`crate::batch::EnginePool`].
#[derive(Debug)]
pub struct InferenceSession {
    artifact: Arc<RuntimeArtifact>,
    engine: Engine,
    client: ClientState,
    /// Whether inference runs on the compiled plan (the default) or on the
    /// naive mapping walk (the reference oracle, kept for A/B validation and
    /// the `datapath_report` benchmark). Results are bit-identical.
    plan_enabled: bool,
}

impl InferenceSession {
    /// Builds a session for `network` on an engine with configuration
    /// `config`: the configuration is validated and every engine resource and
    /// per-layer state buffer is allocated here, once.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyNetwork`] if the network has no accelerated
    /// stage and propagates configuration validation errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
    ) -> Result<Self, SneError> {
        Self::with_exec(network, config, ExecStrategy::Sequential)
    }

    /// Builds a session whose engine fans its per-slice worker units out with
    /// the given [`ExecStrategy`]. Results are bit-identical to
    /// [`InferenceSession::new`] for every strategy; only wall-clock time on
    /// the host differs.
    ///
    /// # Errors
    ///
    /// Same as [`InferenceSession::new`].
    pub fn with_exec(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let network = network.into();
        let plans = Arc::new(network.build_plans());
        Self::with_shared_plans(network, config, exec, plans)
    }

    /// Builds a session that reuses an already-compiled set of layer plans —
    /// the constructor [`crate::batch::BatchRunner`] uses so N lanes share
    /// one read-only table set instead of compiling N copies. The plans must
    /// have been built from this `network` (one per accelerated layer).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::Sim`] if `plans` does not match the network's
    /// accelerated layers, plus the same errors as
    /// [`InferenceSession::new`].
    pub fn with_shared_plans(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        exec: ExecStrategy,
        plans: Arc<Vec<LayerPlan>>,
    ) -> Result<Self, SneError> {
        let artifact = RuntimeArtifact::with_shared_plans(network, config, plans)?;
        Ok(Self::from_artifact(Arc::new(artifact), exec))
    }

    /// Builds a session around an already-compiled (and validated)
    /// [`RuntimeArtifact`]: allocates one engine and one client state.
    /// Infallible — the artifact carries a validated configuration.
    #[must_use]
    pub fn from_artifact(artifact: Arc<RuntimeArtifact>, exec: ExecStrategy) -> Self {
        let engine = artifact.new_engine(exec);
        let client = artifact.new_client();
        Self {
            artifact,
            engine,
            client,
            plan_enabled: true,
        }
    }

    /// The shared runtime artifact the session executes against.
    #[must_use]
    pub fn artifact(&self) -> &Arc<RuntimeArtifact> {
        &self.artifact
    }

    /// The compiled network the session executes.
    #[must_use]
    pub fn network(&self) -> &CompiledNetwork {
        self.artifact.network()
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &SneConfig {
        self.engine.config()
    }

    /// The underlying cycle-level engine (e.g. to enable tracing).
    #[must_use]
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The execution strategy of the engine's per-slice worker units.
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.engine.exec()
    }

    /// Changes the execution strategy (takes effect on the next inference;
    /// never changes results).
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.engine.set_exec(exec);
    }

    /// The membrane kernel the session's engine runs on (blocked/SIMD or the
    /// scalar oracle).
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.engine.kernel()
    }

    /// Switches the engine between the blocked/SIMD membrane kernel and the
    /// scalar oracle. The two are bit-identical in outputs, statistics,
    /// traces and persisted state; only host wall-clock time differs — this
    /// switch exists for A/B validation and the `datapath_report` benchmark.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.engine.set_kernel(kernel);
    }

    /// The compiled layer plans the session runs on (shared, read-only).
    #[must_use]
    pub fn plans(&self) -> &Arc<Vec<LayerPlan>> {
        self.artifact.plans()
    }

    /// Whether inference runs on the compiled sparse datapath (`true`, the
    /// default) or on the naive mapping walk.
    #[must_use]
    pub fn plan_enabled(&self) -> bool {
        self.plan_enabled
    }

    /// Switches between the compiled sparse datapath and the naive mapping
    /// walk (the reference oracle). The two are bit-identical in outputs,
    /// statistics and modelled cycles; only host wall-clock time differs —
    /// this switch exists for A/B validation and the `datapath_report`
    /// benchmark.
    pub fn set_plan_enabled(&mut self, enabled: bool) {
        self.plan_enabled = enabled;
    }

    /// Absolute timesteps consumed since the last [`InferenceSession::reset`].
    #[must_use]
    pub fn elapsed_timesteps(&self) -> u32 {
        self.client.elapsed_timesteps()
    }

    /// Returns all neuron state to rest and clears the streaming
    /// accumulators, as if the session had just been created (no engine or
    /// state buffer is reallocated).
    pub fn reset(&mut self) {
        self.client.reset();
    }

    /// Runs one whole-sample inference: the neuron state is reset, the full
    /// stream is consumed and the result is returned — functionally and
    /// cycle-for-cycle identical to [`crate::SneAccelerator::run`], but
    /// without any per-call compilation or allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the stream does not match
    /// the network input, and propagates simulator errors.
    pub fn infer(&mut self, input: &EventStream) -> Result<InferenceResult, SneError> {
        self.artifact
            .infer(&mut self.engine, &mut self.client, input, self.plan_enabled)
    }

    /// Streams one chunk of a continuous feed through the network. Neuron
    /// state persists between chunks: pushing a stream split at arbitrary
    /// timestep boundaries produces exactly the same output events as a
    /// single [`InferenceSession::infer`] over the whole stream.
    ///
    /// The returned [`ChunkOutput`] carries the final-layer events of this
    /// chunk on the session's absolute timeline.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the chunk's spatial geometry
    /// does not match the network input, and propagates simulator errors.
    pub fn push(&mut self, chunk: &EventStream) -> Result<ChunkOutput, SneError> {
        self.artifact
            .push(&mut self.engine, &mut self.client, chunk, self.plan_enabled)
    }

    /// The inference result accumulated since the last
    /// [`InferenceSession::reset`]: prediction and spike counts over all
    /// pushed chunks, per-layer statistics, energy and timing of the whole
    /// streamed window. After a plain [`InferenceSession::infer`] this is the
    /// result of that inference.
    #[must_use]
    pub fn summary(&self) -> InferenceResult {
        self.artifact.summary(&self.client)
    }
}

/// Slice allocation of the pipelined layer-per-slice mapping mode: every
/// accelerated layer gets an equal share of the slices, the first
/// `num_slices % layers` layers get one extra.
///
/// # Errors
///
/// Returns [`SneError::PipelineDoesNotFit`] if there are fewer slices than
/// layers or a layer exceeds its allocation in a single pass.
pub(crate) fn pipeline_shares(
    network: &CompiledNetwork,
    config: &SneConfig,
) -> Result<Vec<usize>, SneError> {
    let accelerated = network.accelerated_layers();
    if accelerated == 0 {
        return Err(SneError::EmptyNetwork);
    }
    if config.num_slices < accelerated {
        return Err(SneError::PipelineDoesNotFit {
            layer: "whole network".to_owned(),
            required_neurons: accelerated * config.neurons_per_slice(),
            available_neurons: config.num_slices * config.neurons_per_slice(),
        });
    }
    let base_share = config.num_slices / accelerated;
    let remainder = config.num_slices % accelerated;
    let mut shares = Vec::with_capacity(accelerated);
    let mut layer_index = 0usize;
    for stage in network.stages() {
        if let Stage::Accelerated {
            mapping,
            description,
        } = stage
        {
            let slices = base_share + usize::from(layer_index < remainder);
            let available = slices * config.neurons_per_slice();
            if mapping.total_output_neurons() > available {
                return Err(SneError::PipelineDoesNotFit {
                    layer: description.clone(),
                    required_neurons: mapping.total_output_neurons(),
                    available_neurons: available,
                });
            }
            shares.push(slices);
            layer_index += 1;
        }
    }
    Ok(shares)
}

/// Builds the per-layer engines of the pipelined mode: one engine per
/// accelerated layer (shares are in stage order), configured with that
/// layer's slice share and the given per-engine execution strategy.
pub(crate) fn pipeline_engines(
    config: &SneConfig,
    shares: &[usize],
    exec: ExecStrategy,
) -> Vec<Engine> {
    shares
        .iter()
        .map(|&slices| {
            Engine::with_exec(
                SneConfig {
                    num_slices: slices,
                    ..*config
                },
                exec,
            )
        })
        .collect()
}

/// A long-lived session for the pipelined layer-per-slice mapping mode of
/// paper §III-D.5: the slices are partitioned among the layers once, each
/// layer keeps its own engine, and output events flow to the next layer
/// through the C-XBAR. Functionally identical to [`InferenceSession::infer`];
/// the inference duration is the *makespan* of the wavefront over the
/// per-timestep layer schedules, not the sum of the layer runtimes.
#[derive(Debug)]
pub struct PipelinedSession {
    artifact: Arc<RuntimeArtifact>,
    engines: Vec<Engine>,
    states: Vec<LayerState>,
    exec: ExecStrategy,
}

impl PipelinedSession {
    /// Partitions the slices among the accelerated layers and allocates one
    /// engine (and state buffer) per layer, once.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::PipelineDoesNotFit`] if there are fewer slices
    /// than accelerated layers or a layer exceeds its slice allocation, and
    /// propagates configuration validation errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
    ) -> Result<Self, SneError> {
        Self::with_exec(network, config, ExecStrategy::Sequential)
    }

    /// Builds a pipelined session that, under a parallel strategy, runs each
    /// layer stage on its **own host thread**, with intermediate streams
    /// handed over between stage threads (the software counterpart of the
    /// C-XBAR links). Results are bit-identical to [`PipelinedSession::new`]
    /// for every strategy.
    ///
    /// Two caveats to set expectations: the stage pipeline has exactly one
    /// thread per accelerated layer — a parallel strategy turns the stage
    /// threads *on*, its worker count is not a cap here (unlike [`Engine`]
    /// and [`crate::batch::BatchRunner`], where `Threaded(n)` bounds the
    /// workers) — and because bit-exactness requires each stage to receive
    /// its predecessor's *complete* stream, the stage threads run one after
    /// another within a single inference: expect structure, not a speedup.
    /// For host wall-clock wins use [`crate::batch::BatchRunner::with_exec`]
    /// (independent lanes) or the engine's per-slice fan-out.
    ///
    /// # Errors
    ///
    /// Same as [`PipelinedSession::new`].
    pub fn with_exec(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let artifact = Arc::new(RuntimeArtifact::new(network, config)?);
        let shares = pipeline_shares(artifact.network(), artifact.config())?;
        // Stage threads carry the parallelism; the per-layer engines (each
        // owning only a few slices) stay sequential to avoid oversubscribing
        // the host.
        let engines = pipeline_engines(artifact.config(), &shares, ExecStrategy::Sequential);
        let states = artifact
            .network()
            .stages()
            .iter()
            .filter_map(Stage::mapping)
            .zip(&engines)
            .map(|(mapping, engine)| LayerState::new(engine.config(), mapping))
            .collect();
        Ok(Self {
            artifact,
            engines,
            states,
            exec,
        })
    }

    /// The compiled network the session executes.
    #[must_use]
    pub fn network(&self) -> &CompiledNetwork {
        self.artifact.network()
    }

    /// Slices allocated to each accelerated layer.
    #[must_use]
    pub fn slice_shares(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.config().num_slices).collect()
    }

    /// The execution strategy of the layer-stage pipeline (a parallel
    /// strategy means one host thread per accelerated layer; the worker
    /// count is not a cap — see [`PipelinedSession::with_exec`]).
    #[must_use]
    pub fn exec(&self) -> ExecStrategy {
        self.exec
    }

    /// Changes the execution strategy (takes effect on the next inference;
    /// never changes results).
    pub fn set_exec(&mut self, exec: ExecStrategy) {
        self.exec = exec;
    }

    /// Runs one inference with all layers executing concurrently on their
    /// slice partitions. `stats.total_cycles` (and the derived time, rate and
    /// energy) reflect the real overlapped schedule: layer `l` starts
    /// timestep `t` once it finished `t - 1` and layer `l - 1` delivered `t`.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the stream does not match
    /// the network input, and propagates simulator errors.
    pub fn infer(&mut self, input: &EventStream) -> Result<InferenceResult, SneError> {
        check_geometry(self.artifact.network(), input)?;
        let stages_fn = if self.exec.is_parallel() {
            run_stages_pipelined
        } else {
            run_stages
        };
        let outcome = stages_fn(
            &mut self.engines,
            self.artifact.network(),
            input,
            Some(self.artifact.plans().as_slice()),
            Some(&mut self.states),
            false,
        )?;

        // The layers overlap in time; the inference duration is the makespan
        // of the per-timestep wavefront across the layer schedules.
        let mut pipeline_stats = outcome.total;
        pipeline_stats.total_cycles = wavefront_makespan(&outcome.profiles);

        let (predicted_class, counts) = classify(
            &outcome.stream,
            usize::from(self.artifact.network().output_classes()),
        );
        let mean_activity = outcome.mean_activity();
        Ok(self.artifact.result_from_stats(
            pipeline_stats,
            predicted_class,
            counts,
            outcome.layers,
            mean_activity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SneAccelerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_event::Event;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn input_stream(seed: u64) -> EventStream {
        crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
    }

    #[test]
    fn session_infer_matches_the_one_shot_accelerator_exactly() {
        let network = compiled();
        let stream = input_stream(3);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(2));
        let reference = accelerator.run(&network, &stream).unwrap();
        let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        let result = session.infer(&stream).unwrap();
        assert_eq!(reference, result);
    }

    #[test]
    fn repeated_inference_reuses_state_without_leaking_it() {
        let mut session = InferenceSession::new(compiled(), SneConfig::with_slices(2)).unwrap();
        let a = session.infer(&input_stream(5)).unwrap();
        let _ = session.infer(&input_stream(6)).unwrap();
        let again = session.infer(&input_stream(5)).unwrap();
        assert_eq!(a, again);
    }

    #[test]
    fn naive_datapath_matches_the_compiled_plan() {
        let network = compiled();
        let stream = input_stream(31);
        let mut planned =
            InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
        assert!(planned.plan_enabled());
        assert_eq!(planned.plans().len(), network.accelerated_layers());
        let expected = planned.infer(&stream).unwrap();

        let mut naive = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        naive.set_plan_enabled(false);
        assert!(!naive.plan_enabled());
        assert_eq!(naive.infer(&stream).unwrap(), expected);
        // Streaming on the naive oracle matches too, then switch back.
        naive.reset();
        let mut spikes = 0;
        for chunk in stream.chunks(5) {
            spikes += naive.push(&chunk).unwrap().output.spike_count();
        }
        assert_eq!(
            spikes as u32,
            expected.output_spike_counts.iter().sum::<u32>()
        );
        naive.set_plan_enabled(true);
        assert_eq!(naive.infer(&stream).unwrap(), expected);
    }

    #[test]
    fn shared_plans_must_match_the_network() {
        let network = compiled();
        let mut rng = StdRng::seed_from_u64(99);
        let other =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap();
        let foreign = Arc::new(other.build_plans());
        assert!(matches!(
            InferenceSession::with_shared_plans(
                network.clone(),
                SneConfig::with_slices(2),
                ExecStrategy::Sequential,
                foreign,
            ),
            Err(SneError::Sim(_))
        ));
        let own = Arc::new(network.build_plans());
        let mut session = InferenceSession::with_shared_plans(
            network,
            SneConfig::with_slices(2),
            ExecStrategy::Sequential,
            Arc::clone(&own),
        )
        .unwrap();
        assert!(Arc::ptr_eq(session.plans(), &own));
        assert!(session.infer(&input_stream(3)).is_ok());
    }

    #[test]
    fn pushed_chunks_match_a_whole_infer() {
        let network = compiled();
        let stream = input_stream(7);
        let mut whole = InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
        let reference = whole.infer(&stream).unwrap();
        // The whole stream pushed as one chunk yields the reference output
        // events on the absolute timeline.
        whole.reset();
        let reference_events = whole.push(&stream).unwrap().output.into_events();

        let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        let mut events = Vec::new();
        let mut chunk_cycle_sum = 0;
        for chunk in stream.chunks(5) {
            let out = session.push(&chunk).unwrap();
            chunk_cycle_sum += out.stats.total_cycles;
            events.extend(out.output.into_events());
        }
        assert_eq!(session.elapsed_timesteps(), 16);
        let summary = session.summary();
        assert_eq!(summary.output_spike_counts, reference.output_spike_counts);
        assert_eq!(summary.predicted_class, reference.predicted_class);
        assert_eq!(summary.stats.total_cycles, chunk_cycle_sum);
        // Spike-for-spike identical output on the absolute timeline.
        assert_eq!(events, reference_events);
        assert_eq!(
            events.iter().filter(|e| e.is_spike()).count() as u32,
            reference.output_spike_counts.iter().sum::<u32>()
        );
    }

    #[test]
    fn chunk_outputs_live_on_the_absolute_timeline() {
        let mut session = InferenceSession::new(compiled(), SneConfig::with_slices(2)).unwrap();
        let stream = input_stream(9);
        let chunks: Vec<_> = stream.chunks(4).collect();
        let first = session.push(&chunks[0]).unwrap();
        assert_eq!(first.start_timestep, 0);
        assert_eq!(first.timesteps, 4);
        let second = session.push(&chunks[1]).unwrap();
        assert_eq!(second.start_timestep, 4);
        assert!(second.output.iter().all(|e| (4..8).contains(&e.t)));
        assert_eq!(second.output.geometry().timesteps, 8);
    }

    #[test]
    fn reset_restores_a_freshly_compiled_session() {
        let network = compiled();
        let mut fresh = InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
        let reference = fresh.infer(&input_stream(13)).unwrap();

        let mut session = InferenceSession::new(network, SneConfig::with_slices(2)).unwrap();
        // Pollute the neuron state mid-stream, then reset.
        let _ = session.push(&input_stream(21)).unwrap();
        session.reset();
        assert_eq!(session.elapsed_timesteps(), 0);
        let result = session.infer(&input_stream(13)).unwrap();
        assert_eq!(reference, result);
    }

    #[test]
    fn session_rejects_mismatched_geometry_and_empty_networks() {
        let mut session = InferenceSession::new(compiled(), SneConfig::with_slices(2)).unwrap();
        let wrong = EventStream::new(16, 16, 2, 8);
        assert!(matches!(
            session.push(&wrong),
            Err(SneError::GeometryMismatch { .. })
        ));
        assert!(matches!(
            session.infer(&wrong),
            Err(SneError::GeometryMismatch { .. })
        ));
        assert!(InferenceSession::new(
            compiled(),
            SneConfig {
                num_slices: 0,
                ..SneConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn session_accessors_expose_engine_network_and_config() {
        let mut session = InferenceSession::new(compiled(), SneConfig::with_slices(4)).unwrap();
        assert_eq!(session.config().num_slices, 4);
        assert_eq!(session.network().output_classes(), 3);
        session.engine_mut().enable_trace(8);
    }

    #[test]
    fn pipelined_session_matches_the_accelerator_entry_point() {
        let network = compiled();
        let stream = input_stream(17);
        let mut accelerator = SneAccelerator::new(SneConfig::with_slices(8));
        let reference = accelerator.run_pipelined(&network, &stream).unwrap();
        let mut session = PipelinedSession::new(network, SneConfig::with_slices(8)).unwrap();
        assert_eq!(session.slice_shares(), vec![4, 4]);
        let result = session.infer(&stream).unwrap();
        assert_eq!(reference, result);
        // Sessions are reusable: a second inference gives the same answer.
        assert_eq!(session.infer(&stream).unwrap(), result);
        assert_eq!(session.network().accelerated_layers(), 2);
    }

    #[test]
    fn threaded_session_and_pipeline_are_bit_exact() {
        let network = compiled();
        let stream = input_stream(19);
        let mut sequential =
            InferenceSession::new(network.clone(), SneConfig::with_slices(2)).unwrap();
        let expected = sequential.infer(&stream).unwrap();
        let mut threaded = InferenceSession::with_exec(
            network.clone(),
            SneConfig::with_slices(2),
            ExecStrategy::threaded(2),
        )
        .unwrap();
        assert!(threaded.exec().is_parallel());
        assert_eq!(threaded.infer(&stream).unwrap(), expected);
        threaded.set_exec(ExecStrategy::Sequential);
        assert_eq!(threaded.infer(&stream).unwrap(), expected);

        // Pipelined: one real host thread per layer stage, same outcome.
        let mut pipe_seq =
            PipelinedSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
        let pipe_expected = pipe_seq.infer(&stream).unwrap();
        for threads in [2usize, 8] {
            let mut pipe_threaded = PipelinedSession::with_exec(
                network.clone(),
                SneConfig::with_slices(8),
                ExecStrategy::threaded(threads),
            )
            .unwrap();
            assert_eq!(
                pipe_threaded.infer(&stream).unwrap(),
                pipe_expected,
                "threads = {threads}"
            );
            // Re-usable across inferences like the sequential session.
            assert_eq!(pipe_threaded.infer(&stream).unwrap(), pipe_expected);
            assert_eq!(pipe_threaded.exec().threads(), threads);
        }
    }

    #[test]
    fn threaded_pipeline_reports_layer_errors_like_the_sequential_walk() {
        // An input stream with valid geometry but an event outside the first
        // layer's mapped feature map triggers a simulator error in layer 0;
        // the threaded pipeline must surface the same error.
        let network = compiled();
        let mut stream = EventStream::new(8, 8, 2, 4);
        stream.push_unchecked(Event::update(0, 7, 3, 3)); // channel out of range
        let mut sequential =
            PipelinedSession::new(network.clone(), SneConfig::with_slices(8)).unwrap();
        let expected = sequential.infer(&stream).unwrap_err();
        let mut threaded = PipelinedSession::with_exec(
            network,
            SneConfig::with_slices(8),
            ExecStrategy::threaded(2),
        )
        .unwrap();
        assert_eq!(threaded.infer(&stream).unwrap_err(), expected);
    }

    #[test]
    fn pipelined_session_requires_enough_slices() {
        assert!(matches!(
            PipelinedSession::new(compiled(), SneConfig::with_slices(1)),
            Err(SneError::PipelineDoesNotFit { .. })
        ));
    }

    #[test]
    fn wavefront_of_one_layer_is_its_serial_schedule() {
        assert_eq!(wavefront_makespan(&[vec![3, 4, 5]]), 12);
        assert_eq!(wavefront_makespan(&[]), 0);
    }

    #[test]
    fn wavefront_overlaps_layers_but_respects_dependencies() {
        // Layer 0: |--4--|--4--|   Layer 1 can start t=0 at cycle 4.
        let profiles = [vec![4, 4], vec![2, 2]];
        // finish_0 = [4, 8]; finish_1 = [max(0,4)+2=6, max(6,8)+2=10].
        assert_eq!(wavefront_makespan(&profiles), 10);
        // The makespan is bounded by max(layer) below and sum above.
        let serial: u64 = profiles.iter().flatten().sum();
        assert!(wavefront_makespan(&profiles) <= serial);
        assert!(wavefront_makespan(&profiles) >= 8);
    }
}

//! The artifact/state split of the serving runtime.
//!
//! The SNE deployment story (paper §III-D.5) is configure once, stream
//! events forever. For a *service* that story splits the run-many layer of
//! the runtime into two halves with very different lifetimes:
//!
//! * [`RuntimeArtifact`] is the **immutable, shared** half: the compiled
//!   network, the `Arc`-shared sparse-datapath plan set, the engine
//!   configuration and the energy/performance models. One artifact is built
//!   once per (network, configuration) pair and then serves any number of
//!   concurrent clients — it is `Send + Sync` plain data, so engines on any
//!   thread can execute against it.
//! * [`ClientState`] is the **mutable, per-client** half: the per-layer
//!   persistent neuron state plus the streaming cursor and result
//!   accumulators. It is cheap (a few state buffers), carries no engine, and
//!   can be parked in a session table between requests — which is what lets
//!   a pooled engine pick up *any* client's next chunk.
//!
//! [`crate::session::InferenceSession`] is the convenience composite of one
//! artifact + one engine + one client; [`crate::batch::EnginePool`] shares
//! one artifact across many engines; `sne_serve` parks [`ClientState`]s in a
//! session registry keyed by client id.

use std::sync::Arc;

use sne_energy::{EnergyModel, PerformanceModel};
use sne_event::stream::Geometry;
use sne_event::{Event, EventStream};
use sne_sim::{
    CycleStats, Engine, ExecStrategy, LayerMapping, LayerPlan, LayerState, SimError, SneConfig,
};

use crate::compile::{CompiledNetwork, Stage};
use crate::run::{InferenceResult, LayerExecution};
use crate::session::{check_geometry, classify, run_stages, ChunkOutput};
use crate::SneError;

/// Per-layer accumulation across the chunks of a streamed inference.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LayerTotals {
    pub description: String,
    pub neurons: f64,
    pub stats: CycleStats,
    pub input_events: u64,
    pub output_events: u64,
}

/// The immutable, shareable half of the run-many runtime: compiled network,
/// sparse-datapath plans, engine configuration and the energy/performance
/// models — everything that is read-only at serving time.
///
/// Build it once ([`RuntimeArtifact::new`]), wrap it in an [`Arc`], and any
/// number of engines/clients can execute against it concurrently. The plans
/// are verified against the network's accelerated layers (full weight
/// digest) at construction; the engine re-checks the O(1) geometry digest on
/// every run.
#[derive(Debug, Clone)]
pub struct RuntimeArtifact {
    network: Arc<CompiledNetwork>,
    plans: Arc<Vec<LayerPlan>>,
    config: SneConfig,
    energy: EnergyModel,
    performance: PerformanceModel,
}

impl RuntimeArtifact {
    /// Compiles the artifact for `network` under `config`: validates the
    /// configuration, checks the network has at least one accelerated stage
    /// and builds the sparse-datapath plan set.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::EmptyNetwork`] if the network has no accelerated
    /// stage and propagates configuration validation errors.
    pub fn new(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
    ) -> Result<Self, SneError> {
        let network = network.into();
        let plans = Arc::new(network.build_plans());
        Self::with_shared_plans(network, config, plans)
    }

    /// Builds the artifact around an already-compiled plan set (e.g. one
    /// recovered from an [`crate::SneAccelerator`] cache). The plans must
    /// have been built from this `network`, one per accelerated layer —
    /// verified here with the full weight digest.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::Sim`] if `plans` was not compiled from this
    /// network's accelerated layers, plus the same errors as
    /// [`RuntimeArtifact::new`].
    pub fn with_shared_plans(
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        plans: Arc<Vec<LayerPlan>>,
    ) -> Result<Self, SneError> {
        let network = network.into();
        config.validate()?;
        if network.accelerated_layers() == 0 {
            return Err(SneError::EmptyNetwork);
        }
        let mappings: Vec<&LayerMapping> =
            network.stages().iter().filter_map(Stage::mapping).collect();
        if plans.len() != mappings.len()
            || plans
                .iter()
                .zip(&mappings)
                .any(|(plan, mapping)| !plan.matches(mapping))
        {
            return Err(SneError::Sim(SimError::InvalidConfig {
                name: "layer plans",
                reason: "plans were not compiled from this network's accelerated layers".to_owned(),
            }));
        }
        Ok(Self {
            network,
            plans,
            config,
            energy: EnergyModel::new(),
            performance: PerformanceModel::new(),
        })
    }

    /// The compiled network the artifact executes.
    #[must_use]
    pub fn network(&self) -> &CompiledNetwork {
        &self.network
    }

    /// The shared network handle (for composites that need their own `Arc`).
    #[must_use]
    pub fn network_arc(&self) -> &Arc<CompiledNetwork> {
        &self.network
    }

    /// The compiled sparse-datapath plan set (shared, read-only).
    #[must_use]
    pub fn plans(&self) -> &Arc<Vec<LayerPlan>> {
        &self.plans
    }

    /// The engine configuration every engine of this artifact runs with.
    #[must_use]
    pub fn config(&self) -> &SneConfig {
        &self.config
    }

    /// Allocates one engine configured for this artifact. Engines are the
    /// expensive, checkout-able resource; create as many as the fleet has
    /// lanes and reuse them across requests.
    #[must_use]
    pub fn new_engine(&self, exec: ExecStrategy) -> Engine {
        Engine::with_exec(self.config, exec)
    }

    /// Allocates one per-client state: resting neuron state for every
    /// accelerated layer plus zeroed streaming accumulators.
    #[must_use]
    pub fn new_client(&self) -> ClientState {
        let mut states = Vec::new();
        let mut layer_totals = Vec::new();
        for stage in self.network.stages() {
            if let Stage::Accelerated {
                mapping,
                description,
            } = stage
            {
                states.push(LayerState::new(&self.config, mapping));
                layer_totals.push(LayerTotals {
                    description: description.clone(),
                    neurons: mapping.total_output_neurons() as f64,
                    stats: CycleStats::new(),
                    input_events: 0,
                    output_events: 0,
                });
            }
        }
        ClientState {
            states,
            elapsed_timesteps: 0,
            chunks_pushed: 0,
            layer_totals,
            class_counts: vec![0; usize::from(self.network.output_classes())],
            total: CycleStats::new(),
        }
    }

    /// Streams one chunk of `client`'s feed through the network on `engine`.
    /// Neuron state persists in `client` between chunks, so any engine of the
    /// fleet can process the client's next chunk. With `plan_enabled` the
    /// layers run on the compiled sparse datapath (bit-identical to the naive
    /// walk, only faster on the host).
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the chunk's spatial geometry
    /// does not match the network input, and propagates simulator errors.
    pub fn push(
        &self,
        engine: &mut Engine,
        client: &mut ClientState,
        chunk: &EventStream,
        plan_enabled: bool,
    ) -> Result<ChunkOutput, SneError> {
        check_geometry(&self.network, chunk)?;
        let resume = client.chunks_pushed > 0;
        let plans = plan_enabled.then(|| self.plans.as_slice());
        let outcome = run_stages(
            std::slice::from_mut(engine),
            &self.network,
            chunk,
            plans,
            Some(&mut client.states),
            resume,
        )?;

        let start = client.elapsed_timesteps;
        client.elapsed_timesteps = client
            .elapsed_timesteps
            .saturating_add(chunk.geometry().timesteps);
        client.chunks_pushed += 1;
        client.total += outcome.total;
        for (totals, layer) in client.layer_totals.iter_mut().zip(&outcome.layers) {
            totals.stats += layer.stats;
            totals.input_events += layer.input_events;
            totals.output_events += layer.output_events;
        }
        let (_, counts) = classify(&outcome.stream, client.class_counts.len());
        for (acc, c) in client.class_counts.iter_mut().zip(counts) {
            *acc += c;
        }

        // Re-emit the chunk's output on the client's absolute timeline.
        let local = outcome.stream;
        let geometry = Geometry {
            timesteps: client.elapsed_timesteps.max(1),
            ..local.geometry()
        };
        let mut output = EventStream::with_geometry(geometry);
        output.extend(local.into_events().into_iter().map(|e| Event {
            t: e.t + start,
            ..e
        }));
        Ok(ChunkOutput {
            output,
            stats: outcome.total,
            start_timestep: start,
            timesteps: client.elapsed_timesteps - start,
        })
    }

    /// Runs one whole-sample inference for `client` on `engine`: the client
    /// state is reset, the full stream is consumed and the accumulated
    /// summary is returned.
    ///
    /// # Errors
    ///
    /// Returns [`SneError::GeometryMismatch`] if the stream does not match
    /// the network input, and propagates simulator errors.
    pub fn infer(
        &self,
        engine: &mut Engine,
        client: &mut ClientState,
        input: &EventStream,
        plan_enabled: bool,
    ) -> Result<InferenceResult, SneError> {
        check_geometry(&self.network, input)?;
        // Clearing the accumulators is all a fresh inference needs: with
        // `chunks_pushed` back at zero the push below runs non-resumed, which
        // never reads the prior neuron state and overwrites every cluster
        // slot on export — so the O(neurons) membrane zeroing of a full
        // [`ClientState::reset`] would be redundant work on the hot path.
        client.reset_accumulators();
        let _ = self.push(engine, client, input, plan_enabled)?;
        Ok(self.summary(client))
    }

    /// Attaches the artifact's energy/performance models to measured cycle
    /// statistics — the single formula every entry point uses to turn a
    /// finished run into an [`InferenceResult`].
    pub(crate) fn result_from_stats(
        &self,
        stats: CycleStats,
        predicted_class: usize,
        output_spike_counts: Vec<u32>,
        layers: Vec<LayerExecution>,
        mean_activity: f64,
    ) -> InferenceResult {
        InferenceResult {
            predicted_class,
            output_spike_counts,
            energy: self.energy.report(&self.config, &stats),
            inference_time_ms: self.performance.inference_time_ms(&self.config, &stats),
            inference_rate: self.performance.inference_rate(&self.config, &stats),
            stats,
            layers,
            mean_activity,
        }
    }

    /// The inference result `client` has accumulated since its last
    /// [`ClientState::reset`]: prediction and spike counts over all pushed
    /// chunks, per-layer statistics, energy and timing of the whole streamed
    /// window.
    #[must_use]
    pub fn summary(&self, client: &ClientState) -> InferenceResult {
        let elapsed = f64::from(client.elapsed_timesteps);
        let mut activity_sum = 0.0;
        let layers: Vec<LayerExecution> = client
            .layer_totals
            .iter()
            .map(|l| {
                let output_activity = if l.neurons * elapsed > 0.0 {
                    l.output_events as f64 / (l.neurons * elapsed)
                } else {
                    0.0
                };
                activity_sum += output_activity;
                LayerExecution {
                    description: l.description.clone(),
                    stats: l.stats,
                    input_events: l.input_events,
                    output_events: l.output_events,
                    output_activity,
                }
            })
            .collect();
        let predicted_class = client
            .class_counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.result_from_stats(
            client.total,
            predicted_class,
            client.class_counts.clone(),
            layers,
            activity_sum / client.layer_totals.len().max(1) as f64,
        )
    }
}

/// The mutable, per-client half of the runtime: per-layer persistent neuron
/// state plus the streaming cursor and result accumulators. Allocate one per
/// connected client with [`RuntimeArtifact::new_client`]; it carries no
/// engine, so it can wait in a session table between requests while the
/// engines serve other clients.
///
/// `PartialEq` compares the full architectural state (neuron membranes, TLU
/// bookkeeping, cursor and accumulators) — it is what the durability tests
/// mean by "bit-identical after restore".
#[derive(Debug, Clone, PartialEq)]
pub struct ClientState {
    pub(crate) states: Vec<LayerState>,
    pub(crate) elapsed_timesteps: u32,
    pub(crate) chunks_pushed: u64,
    pub(crate) layer_totals: Vec<LayerTotals>,
    pub(crate) class_counts: Vec<u32>,
    pub(crate) total: CycleStats,
}

impl ClientState {
    /// Absolute timesteps consumed since the last [`ClientState::reset`].
    #[must_use]
    pub fn elapsed_timesteps(&self) -> u32 {
        self.elapsed_timesteps
    }

    /// Number of chunks pushed since the last [`ClientState::reset`].
    #[must_use]
    pub fn chunks_pushed(&self) -> u64 {
        self.chunks_pushed
    }

    /// Returns all neuron state to rest and clears the streaming
    /// accumulators, as if freshly allocated (no buffer is reallocated).
    pub fn reset(&mut self) {
        for state in &mut self.states {
            state.reset();
        }
        self.reset_accumulators();
    }

    /// Clears the streaming cursor and result accumulators without touching
    /// the neuron state buffers. Sufficient before a whole-sample inference:
    /// a non-resumed run never reads prior state and overwrites every
    /// cluster slot on export ([`RuntimeArtifact::infer`] relies on this).
    pub(crate) fn reset_accumulators(&mut self) {
        for layer in &mut self.layer_totals {
            layer.stats = CycleStats::new();
            layer.input_events = 0;
            layer.output_events = 0;
        }
        self.class_counts.iter_mut().for_each(|c| *c = 0);
        self.total = CycleStats::new();
        self.elapsed_timesteps = 0;
        self.chunks_pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sne_model::topology::Topology;
    use sne_model::Shape;

    fn compiled() -> CompiledNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap()
    }

    fn input_stream(seed: u64) -> EventStream {
        crate::proportionality::stream_with_activity((2, 8, 8), 16, 0.05, seed)
    }

    #[test]
    fn one_artifact_serves_many_interleaved_clients() {
        let artifact =
            Arc::new(RuntimeArtifact::new(compiled(), SneConfig::with_slices(2)).unwrap());
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);

        // Two clients streaming interleaved chunks through ONE engine must
        // see exactly what two dedicated sessions consuming the same chunks
        // would have seen.
        let stream_a = input_stream(5);
        let stream_b = input_stream(6);
        let mut reference_a = crate::session::InferenceSession::new(
            Arc::clone(artifact.network_arc()),
            SneConfig::with_slices(2),
        )
        .unwrap();
        let mut reference_b = crate::session::InferenceSession::new(
            Arc::clone(artifact.network_arc()),
            SneConfig::with_slices(2),
        )
        .unwrap();

        let mut client_a = artifact.new_client();
        let mut client_b = artifact.new_client();
        let chunks_a: Vec<_> = stream_a.chunks(4).collect();
        let chunks_b: Vec<_> = stream_b.chunks(4).collect();
        for (ca, cb) in chunks_a.iter().zip(&chunks_b) {
            let out_a = artifact.push(&mut engine, &mut client_a, ca, true).unwrap();
            let out_b = artifact.push(&mut engine, &mut client_b, cb, true).unwrap();
            assert_eq!(out_a, reference_a.push(ca).unwrap());
            assert_eq!(out_b, reference_b.push(cb).unwrap());
        }
        assert_eq!(artifact.summary(&client_a), reference_a.summary());
        assert_eq!(artifact.summary(&client_b), reference_b.summary());
        assert_eq!(client_a.elapsed_timesteps(), 16);
        assert_eq!(client_a.chunks_pushed(), 4);
    }

    #[test]
    fn artifact_infer_resets_the_client_first() {
        let artifact =
            Arc::new(RuntimeArtifact::new(compiled(), SneConfig::with_slices(2)).unwrap());
        let mut engine = artifact.new_engine(ExecStrategy::Sequential);
        let mut client = artifact.new_client();
        let first = artifact
            .infer(&mut engine, &mut client, &input_stream(9), true)
            .unwrap();
        // Pollute, then infer again: same answer.
        let _ = artifact
            .push(&mut engine, &mut client, &input_stream(10), true)
            .unwrap();
        let again = artifact
            .infer(&mut engine, &mut client, &input_stream(9), true)
            .unwrap();
        assert_eq!(first, again);
        client.reset();
        assert_eq!(client.elapsed_timesteps(), 0);
    }

    #[test]
    fn artifact_rejects_empty_networks_and_foreign_plans() {
        let network = compiled();
        assert!(matches!(
            RuntimeArtifact::new(
                network.clone(),
                SneConfig {
                    num_slices: 0,
                    ..SneConfig::default()
                }
            ),
            Err(SneError::Sim(_))
        ));
        let mut rng = StdRng::seed_from_u64(99);
        let other =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng).unwrap();
        assert!(matches!(
            RuntimeArtifact::with_shared_plans(
                network,
                SneConfig::with_slices(2),
                Arc::new(other.build_plans()),
            ),
            Err(SneError::Sim(_))
        ));
    }

    #[test]
    fn artifact_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeArtifact>();
        assert_send_sync::<ClientState>();
    }
}

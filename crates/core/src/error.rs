use std::error::Error;
use std::fmt;

use sne_event::EventError;
use sne_model::ModelError;
use sne_sim::SimError;
use sne_store::StoreError;

/// Errors of the top-level SNE API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SneError {
    /// An error raised by the functional model.
    Model(ModelError),
    /// An error raised by the hardware simulator.
    Sim(SimError),
    /// An error raised while manipulating event streams.
    Event(EventError),
    /// The compiled network and the input stream disagree on geometry.
    GeometryMismatch {
        /// Expected `(channels, height, width)` of the network input.
        expected: (u16, u16, u16),
        /// Geometry of the provided stream.
        found: (u16, u16, u16),
    },
    /// The compiled network contains no accelerated stage.
    EmptyNetwork,
    /// A batch runner was requested with zero lanes.
    EmptyBatch,
    /// A durable snapshot could not be written, read or decoded (torn
    /// write, digest mismatch, wrong artifact, unsupported format, I/O).
    Snapshot(StoreError),
    /// The network cannot run in the pipelined layer-per-slice mode because a
    /// layer does not fit in the slices allocated to it.
    PipelineDoesNotFit {
        /// Description of the offending layer.
        layer: String,
        /// Neurons the layer needs.
        required_neurons: usize,
        /// Neurons available in the slices allocated to the layer.
        available_neurons: usize,
    },
}

impl fmt::Display for SneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Sim(e) => write!(f, "simulator error: {e}"),
            Self::Event(e) => write!(f, "event error: {e}"),
            Self::GeometryMismatch { expected, found } => write!(
                f,
                "input stream geometry {}x{}x{} does not match the network input {}x{}x{}",
                found.0, found.1, found.2, expected.0, expected.1, expected.2
            ),
            Self::EmptyNetwork => write!(f, "compiled network has no accelerated stage"),
            Self::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Self::EmptyBatch => write!(f, "a batch runner needs at least one lane"),
            Self::PipelineDoesNotFit { layer, required_neurons, available_neurons } => write!(
                f,
                "layer `{layer}` needs {required_neurons} neurons but its pipeline allocation provides {available_neurons}; use the time-multiplexed mode"
            ),
        }
    }
}

impl Error for SneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Event(e) => Some(e),
            Self::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SneError {
    fn from(value: ModelError) -> Self {
        Self::Model(value)
    }
}

impl From<SimError> for SneError {
    fn from(value: SimError) -> Self {
        Self::Sim(value)
    }
}

impl From<EventError> for SneError {
    fn from(value: EventError) -> Self {
        Self::Event(value)
    }
}

impl From<StoreError> for SneError {
    fn from(value: StoreError) -> Self {
        Self::Snapshot(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_the_source_error() {
        let err: SneError = ModelError::EmptyNetwork.into();
        assert!(matches!(err, SneError::Model(_)));
        assert!(err.source().is_some());
        let err: SneError = SimError::UnknownRegister(3).into();
        assert!(matches!(err, SneError::Sim(_)));
        let err: SneError = EventError::EmptyGeometry.into();
        assert!(matches!(err, SneError::Event(_)));
        let err: SneError = StoreError::BadMagic.into();
        assert!(matches!(err, SneError::Snapshot(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn display_is_nonempty() {
        let errors = [
            SneError::Model(ModelError::EmptyNetwork),
            SneError::GeometryMismatch {
                expected: (2, 32, 32),
                found: (2, 16, 16),
            },
            SneError::EmptyNetwork,
            SneError::EmptyBatch,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SneError>();
    }
}

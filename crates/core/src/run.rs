//! Results of running an inference on the accelerator.

use serde::{Deserialize, Serialize};
use sne_energy::EnergyReport;
use sne_sim::CycleStats;

/// Execution record of one accelerated layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerExecution {
    /// Layer description (e.g. `conv 2x32,3x3`).
    pub description: String,
    /// Cycle statistics of the layer run.
    pub stats: CycleStats,
    /// Input events consumed by the layer.
    pub input_events: u64,
    /// Output events produced by the layer.
    pub output_events: u64,
    /// Output activity of the layer (output events per neuron per timestep).
    pub output_activity: f64,
}

/// Result of one end-to-end inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// Class with the highest output spike count.
    pub predicted_class: usize,
    /// Output spike counts per class.
    pub output_spike_counts: Vec<u32>,
    /// Aggregated cycle statistics across all accelerated layers.
    pub stats: CycleStats,
    /// Per-layer execution records.
    pub layers: Vec<LayerExecution>,
    /// Energy report of the whole inference.
    pub energy: EnergyReport,
    /// Inference duration in milliseconds.
    pub inference_time_ms: f64,
    /// Sustainable inference rate in inferences per second.
    pub inference_rate: f64,
    /// Mean output activity across accelerated layers (the "network
    /// activity" the paper relates to the 1.2 %–4.9 % DVS-Gesture range).
    pub mean_activity: f64,
}

impl InferenceResult {
    /// Total number of input events consumed by the first layer.
    #[must_use]
    pub fn input_events(&self) -> u64 {
        self.layers.first().map_or(0, |l| l.input_events)
    }

    /// Energy per inference in µJ.
    #[must_use]
    pub fn energy_per_inference_uj(&self) -> f64 {
        self.energy.energy_uj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_read_the_first_layer_and_energy() {
        let result = InferenceResult {
            predicted_class: 2,
            output_spike_counts: vec![0, 1, 5],
            stats: CycleStats::default(),
            layers: vec![LayerExecution {
                description: "conv".into(),
                stats: CycleStats::default(),
                input_events: 42,
                output_events: 7,
                output_activity: 0.01,
            }],
            energy: EnergyReport {
                energy_uj: 80.0,
                ..EnergyReport::default()
            },
            inference_time_ms: 7.1,
            inference_rate: 140.8,
            mean_activity: 0.02,
        };
        assert_eq!(result.input_events(), 42);
        assert!((result.energy_per_inference_uj() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_has_zero_input_events() {
        let result = InferenceResult {
            predicted_class: 0,
            output_spike_counts: Vec::new(),
            stats: CycleStats::default(),
            layers: Vec::new(),
            energy: EnergyReport::default(),
            inference_time_ms: 0.0,
            inference_rate: 0.0,
            mean_activity: 0.0,
        };
        assert_eq!(result.input_events(), 0);
    }
}

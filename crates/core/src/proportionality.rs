//! Energy-proportionality experiments.
//!
//! The central claim of the paper is that the SNE performs a number of
//! operations — and therefore spends an amount of time and energy —
//! proportional to the number of events in the input stream. This module
//! sweeps the input activity of a fixed network and records events, cycles
//! and energy, which is what the `proportionality` benchmark binary prints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sne_event::{Event, EventStream};

use crate::accelerator::SneAccelerator;
use crate::compile::CompiledNetwork;
use crate::SneError;

/// One point of the activity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionalityPoint {
    /// Requested input activity (fraction of active positions per timestep).
    pub activity: f64,
    /// Input events actually generated.
    pub input_events: u64,
    /// Total cycles spent by the accelerator.
    pub cycles: u64,
    /// Synaptic operations performed.
    pub synaptic_ops: u64,
    /// Inference time in milliseconds.
    pub time_ms: f64,
    /// Energy per inference in µJ.
    pub energy_uj: f64,
}

/// Generates a random input stream with (approximately) the requested
/// activity for the given network input geometry.
#[must_use]
pub fn stream_with_activity(
    shape: (u16, u16, u16),
    timesteps: u32,
    activity: f64,
    seed: u64,
) -> EventStream {
    let (channels, height, width) = shape;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = EventStream::new(width, height, channels, timesteps);
    for t in 0..timesteps {
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    if rng.gen::<f64>() < activity {
                        stream.push_unchecked(Event::update(t, c, x, y));
                    }
                }
            }
        }
    }
    stream
}

/// Runs the activity sweep: one inference per requested activity level.
///
/// # Errors
///
/// Propagates accelerator errors.
pub fn activity_sweep(
    accelerator: &mut SneAccelerator,
    network: &CompiledNetwork,
    timesteps: u32,
    activities: &[f64],
    seed: u64,
) -> Result<Vec<ProportionalityPoint>, SneError> {
    let mut points = Vec::with_capacity(activities.len());
    for (i, &activity) in activities.iter().enumerate() {
        let stream = stream_with_activity(
            network.input_shape(),
            timesteps,
            activity,
            seed ^ (i as u64) << 16,
        );
        let events = stream.spike_count() as u64;
        let result = accelerator.run(network, &stream)?;
        points.push(ProportionalityPoint {
            activity,
            input_events: events,
            cycles: result.stats.total_cycles,
            synaptic_ops: result.stats.synaptic_ops,
            time_ms: result.inference_time_ms,
            energy_uj: result.energy.energy_uj,
        });
    }
    Ok(points)
}

/// Pearson correlation between input events and cycles across sweep points —
/// energy proportionality means this is close to 1.
#[must_use]
pub fn proportionality_correlation(points: &[ProportionalityPoint]) -> f64 {
    if points.len() < 2 {
        return 1.0;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.input_events as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.cycles as f64).collect();
    correlation(&xs, &ys)
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 1.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use sne_model::topology::Topology;
    use sne_model::Shape;
    use sne_sim::SneConfig;

    fn setup() -> (SneAccelerator, CompiledNetwork) {
        let mut rng = StdRng::seed_from_u64(3);
        let network =
            CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 2, 3), &mut rng).unwrap();
        (SneAccelerator::new(SneConfig::with_slices(2)), network)
    }

    #[test]
    fn stream_activity_tracks_the_request() {
        let stream = stream_with_activity((2, 16, 16), 40, 0.05, 9);
        let measured = stream.activity();
        assert!(
            (measured - 0.05).abs() < 0.02,
            "measured activity {measured}"
        );
    }

    #[test]
    fn sweep_produces_monotonic_event_counts() {
        let (mut accelerator, network) = setup();
        let points =
            activity_sweep(&mut accelerator, &network, 10, &[0.01, 0.03, 0.06], 7).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].input_events < points[2].input_events);
        assert!(points[0].cycles < points[2].cycles);
        assert!(points[0].energy_uj < points[2].energy_uj);
    }

    #[test]
    fn cycles_are_strongly_correlated_with_events() {
        let (mut accelerator, network) = setup();
        let points = activity_sweep(
            &mut accelerator,
            &network,
            10,
            &[0.005, 0.01, 0.02, 0.04, 0.08],
            13,
        )
        .unwrap();
        let r = proportionality_correlation(&points);
        assert!(r > 0.95, "correlation {r} should be close to 1");
    }

    #[test]
    fn correlation_handles_degenerate_inputs() {
        assert_eq!(proportionality_correlation(&[]), 1.0);
        let p = ProportionalityPoint {
            activity: 0.0,
            input_events: 0,
            cycles: 0,
            synaptic_ops: 0,
            time_ms: 0.0,
            energy_uj: 0.0,
        };
        assert_eq!(proportionality_correlation(&[p, p]), 1.0);
    }
}

//! Ordering utilities for event streams.
//!
//! The SNE consumes events strictly in time order (Listing 1: the outermost
//! hardware-managed loop spans the time dimension). The streamer stores
//! events linearly in memory, so host software must order them before
//! programming a transfer. These helpers provide the canonical orderings and
//! checks used throughout the workspace.

use crate::{Event, EventOp};

/// Canonical orderings for event sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventOrder {
    /// Time-major: sort by timestamp only (stable within a timestep).
    Time,
    /// Time, then channel, then row-major spatial position.
    TimeChannelRaster,
    /// Time, then raster position, then channel (used by the dense tensor view).
    TimeRasterChannel,
}

/// Sorts events in place according to the requested order.
pub fn sort_events(events: &mut [Event], order: EventOrder) {
    match order {
        EventOrder::Time => events.sort_by_key(|e| e.t),
        EventOrder::TimeChannelRaster => events.sort_by_key(|e| (e.t, e.ch, e.y, e.x)),
        EventOrder::TimeRasterChannel => events.sort_by_key(|e| (e.t, e.y, e.x, e.ch)),
    }
}

/// Returns `true` if timestamps are non-decreasing.
#[must_use]
pub fn is_time_ordered(events: &[Event]) -> bool {
    events.windows(2).all(|w| w[0].t <= w[1].t)
}

/// Returns `true` if the sequence is a well-formed SNE operation sequence:
///
/// * it starts with a `RST_OP`,
/// * timestamps are non-decreasing,
/// * every timestep that contains spikes is closed by a `FIRE_OP` at the same
///   timestep appearing after those spikes.
#[must_use]
pub fn is_valid_op_sequence(events: &[Event]) -> bool {
    if events.first().map(|e| e.op) != Some(EventOp::Reset) {
        return false;
    }
    if !is_time_ordered(events) {
        return false;
    }
    // For each timestep with spikes, a FIRE_OP must follow the last spike.
    let mut last_spike_index = std::collections::HashMap::new();
    let mut fire_index = std::collections::HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.op {
            EventOp::Update => {
                last_spike_index.insert(e.t, i);
            }
            EventOp::Fire => {
                fire_index.insert(e.t, i);
            }
            EventOp::Reset => {}
        }
    }
    last_spike_index
        .iter()
        .all(|(t, &spike_i)| matches!(fire_index.get(t), Some(&fire_i) if fire_i > spike_i))
}

/// Splits an ordered sequence into per-timestep chunks (spikes only).
#[must_use]
pub fn chunk_by_timestep(events: &[Event]) -> Vec<(u32, Vec<Event>)> {
    let mut chunks: Vec<(u32, Vec<Event>)> = Vec::new();
    for e in events.iter().filter(|e| e.is_spike()) {
        match chunks.last_mut() {
            Some((t, chunk)) if *t == e.t => chunk.push(*e),
            _ => chunks.push((e.t, vec![*e])),
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_sort_is_stable_within_timestep() {
        let mut events = vec![
            Event::update(1, 0, 9, 9),
            Event::update(0, 0, 5, 5),
            Event::update(0, 0, 1, 1),
        ];
        sort_events(&mut events, EventOrder::Time);
        assert_eq!(events[0].address(), (5, 5));
        assert_eq!(events[1].address(), (1, 1));
        assert_eq!(events[2].t, 1);
    }

    #[test]
    fn raster_sort_orders_by_row_then_column() {
        let mut events = vec![
            Event::update(0, 0, 3, 1),
            Event::update(0, 0, 1, 1),
            Event::update(0, 0, 2, 0),
        ];
        sort_events(&mut events, EventOrder::TimeChannelRaster);
        assert_eq!(events[0].address(), (2, 0));
        assert_eq!(events[1].address(), (1, 1));
        assert_eq!(events[2].address(), (3, 1));
    }

    #[test]
    fn op_sequence_validation_requires_leading_reset() {
        let events = vec![Event::update(0, 0, 0, 0), Event::fire(0)];
        assert!(!is_valid_op_sequence(&events));
    }

    #[test]
    fn op_sequence_validation_requires_fire_after_spikes() {
        let good = vec![Event::reset(0), Event::update(0, 0, 0, 0), Event::fire(0)];
        assert!(is_valid_op_sequence(&good));
        let missing_fire = vec![Event::reset(0), Event::update(0, 0, 0, 0)];
        assert!(!is_valid_op_sequence(&missing_fire));
        let fire_before_spike = vec![Event::reset(0), Event::fire(0), Event::update(0, 0, 0, 0)];
        assert!(!is_valid_op_sequence(&fire_before_spike));
    }

    #[test]
    fn op_sequence_validation_rejects_unordered_time() {
        let events = vec![
            Event::reset(0),
            Event::update(2, 0, 0, 0),
            Event::update(1, 0, 0, 0),
        ];
        assert!(!is_valid_op_sequence(&events));
    }

    #[test]
    fn chunking_groups_consecutive_timesteps() {
        let events = vec![
            Event::reset(0),
            Event::update(0, 0, 0, 0),
            Event::update(0, 0, 1, 1),
            Event::fire(0),
            Event::update(2, 0, 2, 2),
            Event::fire(2),
        ];
        let chunks = chunk_by_timestep(&events);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks[0].1.len(), 2);
        assert_eq!(chunks[1].0, 2);
        assert_eq!(chunks[1].1.len(), 1);
    }

    #[test]
    fn empty_sequences_are_time_ordered_but_not_valid_ops() {
        assert!(is_time_ordered(&[]));
        assert!(!is_valid_op_sequence(&[]));
    }
}

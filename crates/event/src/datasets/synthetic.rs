//! Parametric motion-pattern event generator.
//!
//! This is the low-level generator the gesture and digit datasets are built
//! on: it renders a moving bright "object" (bar, blob or arc) and emits
//! events where the simulated brightness changes between consecutive
//! timesteps, which is exactly how an event-based vision sensor produces its
//! output (ON events on rising edges, OFF events on falling edges).

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{sample_rng, EventDataset, LabeledStream};
use crate::stream::{EventStream, Geometry};
use crate::Event;

/// A parametric spatio-temporal motion pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionPattern {
    /// A vertical bar translating horizontally with the given speed
    /// (pixels per timestep, may be negative).
    TranslatingBar {
        /// Horizontal speed in pixels per timestep.
        speed: f64,
        /// Bar width in pixels.
        width: u16,
    },
    /// A circular blob orbiting the image centre.
    OrbitingBlob {
        /// Angular speed in radians per timestep.
        angular_speed: f64,
        /// Orbit radius as a fraction of the half-image size (0..1).
        radius_fraction: f64,
        /// Blob radius in pixels.
        blob_radius: u16,
    },
    /// A blob oscillating vertically (e.g. hand waving up/down).
    OscillatingBlob {
        /// Oscillation period in timesteps.
        period: f64,
        /// Peak-to-peak amplitude as a fraction of the image height.
        amplitude_fraction: f64,
        /// Blob radius in pixels.
        blob_radius: u16,
    },
    /// Two blobs approaching and separating periodically (e.g. hand clap).
    ConvergingBlobs {
        /// Period of the approach/separation cycle in timesteps.
        period: f64,
        /// Blob radius in pixels.
        blob_radius: u16,
    },
    /// An expanding/contracting ring (e.g. arm roll seen frontally).
    PulsingRing {
        /// Period of the expansion cycle in timesteps.
        period: f64,
        /// Maximum ring radius as a fraction of the half-image size.
        max_radius_fraction: f64,
    },
    /// Uniform random flicker covering the whole frame (a "none/other" class).
    RandomFlicker {
        /// Per-position per-timestep event probability.
        rate: f64,
    },
}

impl MotionPattern {
    /// Simulated object intensity at position `(x, y)` and time `t`, in `[0, 1]`.
    ///
    /// The generator emits an event when the thresholded intensity changes
    /// between `t-1` and `t` — ON events (channel 0) for rising edges, OFF
    /// events (channel 1) for falling edges — mimicking a DVS pixel.
    #[must_use]
    pub fn intensity(&self, geometry: Geometry, x: u16, y: u16, t: u32, phase: f64) -> f64 {
        let w = f64::from(geometry.width);
        let h = f64::from(geometry.height);
        let (xf, yf, tf) = (f64::from(x), f64::from(y), f64::from(t));
        match *self {
            MotionPattern::TranslatingBar { speed, width } => {
                let center = (phase * w + speed * tf).rem_euclid(w);
                let dist = (xf - center).abs().min(w - (xf - center).abs());
                if dist <= f64::from(width) / 2.0 {
                    1.0
                } else {
                    0.0
                }
            }
            MotionPattern::OrbitingBlob {
                angular_speed,
                radius_fraction,
                blob_radius,
            } => {
                let angle = phase * std::f64::consts::TAU + angular_speed * tf;
                let cx = w / 2.0 + radius_fraction * (w / 2.0) * angle.cos();
                let cy = h / 2.0 + radius_fraction * (h / 2.0) * angle.sin();
                blob(xf, yf, cx, cy, f64::from(blob_radius))
            }
            MotionPattern::OscillatingBlob {
                period,
                amplitude_fraction,
                blob_radius,
            } => {
                let cy = h / 2.0
                    + amplitude_fraction
                        * (h / 2.0)
                        * (std::f64::consts::TAU * (tf / period + phase)).sin();
                let cx = w / 2.0;
                blob(xf, yf, cx, cy, f64::from(blob_radius))
            }
            MotionPattern::ConvergingBlobs {
                period,
                blob_radius,
            } => {
                let sep =
                    (w / 4.0) * (1.0 + (std::f64::consts::TAU * (tf / period + phase)).cos()) / 2.0;
                let cy = h / 2.0;
                let left = blob(xf, yf, w / 2.0 - sep - 1.0, cy, f64::from(blob_radius));
                let right = blob(xf, yf, w / 2.0 + sep + 1.0, cy, f64::from(blob_radius));
                left.max(right)
            }
            MotionPattern::PulsingRing {
                period,
                max_radius_fraction,
            } => {
                let radius = max_radius_fraction
                    * (w.min(h) / 2.0)
                    * (0.5 + 0.5 * (std::f64::consts::TAU * (tf / period + phase)).sin());
                let dist = ((xf - w / 2.0).powi(2) + (yf - h / 2.0).powi(2)).sqrt();
                if (dist - radius).abs() <= 1.5 {
                    1.0
                } else {
                    0.0
                }
            }
            MotionPattern::RandomFlicker { .. } => 0.0,
        }
    }

    /// Renders the pattern into an event stream.
    #[must_use]
    pub fn render<R: Rng>(&self, geometry: Geometry, phase: f64, rng: &mut R) -> EventStream {
        let mut stream = EventStream::with_geometry(geometry);
        if let MotionPattern::RandomFlicker { rate } = *self {
            for t in 0..geometry.timesteps {
                for y in 0..geometry.height {
                    for x in 0..geometry.width {
                        if rng.gen::<f64>() < rate {
                            let ch = u16::from(rng.gen::<bool>()) % geometry.channels;
                            stream.push_unchecked(Event::update(t, ch, x, y));
                        }
                    }
                }
            }
            return stream;
        }

        let mut previous = vec![false; geometry.spatial_size()];
        for t in 0..geometry.timesteps {
            for y in 0..geometry.height {
                for x in 0..geometry.width {
                    let idx = usize::from(y) * usize::from(geometry.width) + usize::from(x);
                    let bright = self.intensity(geometry, x, y, t, phase) > 0.5;
                    if bright != previous[idx] {
                        // ON events on channel 0, OFF events on channel 1 when present.
                        let ch = if bright { 0 } else { 1 % geometry.channels };
                        stream.push_unchecked(Event::update(t, ch, x, y));
                    }
                    previous[idx] = bright;
                }
            }
        }
        stream
    }
}

fn blob(x: f64, y: f64, cx: f64, cy: f64, radius: f64) -> f64 {
    let dist = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
    if dist <= radius {
        1.0
    } else {
        0.0
    }
}

/// A sample produced by [`PatternDataset`]: pattern identity plus its stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSample {
    /// The labeled event stream.
    pub labeled: LabeledStream,
    /// The random phase used by the generator (useful for debugging).
    pub phase: f64,
}

/// A dataset whose classes are distinct [`MotionPattern`]s.
///
/// # Example
///
/// ```
/// use sne_event::datasets::{EventDataset, MotionPattern, PatternDataset};
///
/// let dataset = PatternDataset::new(
///     32, 32, 2, 50,
///     vec![
///         MotionPattern::TranslatingBar { speed: 1.0, width: 3 },
///         MotionPattern::OrbitingBlob { angular_speed: 0.2, radius_fraction: 0.6, blob_radius: 3 },
///     ],
///     7,
/// );
/// let sample = dataset.sample(0);
/// assert!(sample.stream.spike_count() > 0);
/// assert!(sample.label < dataset.num_classes());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternDataset {
    geometry: Geometry,
    patterns: Vec<MotionPattern>,
    seed: u64,
}

impl PatternDataset {
    /// Creates a dataset over the given patterns (one class per pattern).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or the geometry has a zero dimension.
    #[must_use]
    pub fn new(
        width: u16,
        height: u16,
        channels: u16,
        timesteps: u32,
        patterns: Vec<MotionPattern>,
        seed: u64,
    ) -> Self {
        assert!(
            !patterns.is_empty(),
            "a pattern dataset needs at least one class"
        );
        let geometry = Geometry::new(width, height, channels, timesteps)
            .expect("pattern dataset geometry must be non-zero");
        Self {
            geometry,
            patterns,
            seed,
        }
    }

    /// The motion patterns (classes) of this dataset.
    #[must_use]
    pub fn patterns(&self) -> &[MotionPattern] {
        &self.patterns
    }

    /// Generates a sample together with its generator phase.
    #[must_use]
    pub fn sample_with_phase(&self, index: u64) -> PatternSample {
        let mut rng = sample_rng(self.seed, index);
        let label = (index % self.patterns.len() as u64) as usize;
        let phase: f64 = rng.gen();
        let stream = self.patterns[label].render(self.geometry, phase, &mut rng);
        PatternSample {
            labeled: LabeledStream { stream, label },
            phase,
        }
    }
}

impl EventDataset for PatternDataset {
    fn num_classes(&self) -> usize {
        self.patterns.len()
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn sample(&self, index: u64) -> LabeledStream {
        self.sample_with_phase(index).labeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometry() -> Geometry {
        Geometry::new(32, 32, 2, 40).unwrap()
    }

    fn patterns() -> Vec<MotionPattern> {
        vec![
            MotionPattern::TranslatingBar {
                speed: 1.0,
                width: 3,
            },
            MotionPattern::OrbitingBlob {
                angular_speed: 0.25,
                radius_fraction: 0.6,
                blob_radius: 3,
            },
            MotionPattern::OscillatingBlob {
                period: 20.0,
                amplitude_fraction: 0.7,
                blob_radius: 3,
            },
            MotionPattern::ConvergingBlobs {
                period: 20.0,
                blob_radius: 3,
            },
            MotionPattern::PulsingRing {
                period: 20.0,
                max_radius_fraction: 0.8,
            },
        ]
    }

    #[test]
    fn every_pattern_produces_events() {
        let mut rng = StdRng::seed_from_u64(9);
        for p in patterns() {
            let stream = p.render(geometry(), 0.3, &mut rng);
            assert!(stream.spike_count() > 0, "pattern {p:?} produced no events");
            assert!(stream.validate_all().is_ok());
            assert!(stream.is_time_ordered());
        }
    }

    #[test]
    fn flicker_rate_controls_activity() {
        let mut rng = StdRng::seed_from_u64(11);
        let sparse = MotionPattern::RandomFlicker { rate: 0.01 }.render(geometry(), 0.0, &mut rng);
        let dense = MotionPattern::RandomFlicker { rate: 0.2 }.render(geometry(), 0.0, &mut rng);
        assert!(dense.spike_count() > sparse.spike_count());
    }

    #[test]
    fn samples_are_deterministic() {
        let dataset = PatternDataset::new(32, 32, 2, 40, patterns(), 123);
        let a = dataset.sample(5);
        let b = dataset.sample(5);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let dataset = PatternDataset::new(32, 32, 2, 40, patterns(), 123);
        for i in 0..10u64 {
            assert_eq!(dataset.sample(i).label, (i % 5) as usize);
        }
    }

    #[test]
    fn different_indices_give_different_streams() {
        let dataset = PatternDataset::new(32, 32, 2, 40, patterns(), 123);
        let a = dataset.sample(0);
        let b = dataset.sample(5); // same class (5 % 5 == 0), different phase
        assert_eq!(a.label, b.label);
        assert_ne!(a.stream, b.stream);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_pattern_list_panics() {
        let _ = PatternDataset::new(32, 32, 2, 40, Vec::new(), 1);
    }

    #[test]
    fn translating_bar_moves_over_time() {
        let p = MotionPattern::TranslatingBar {
            speed: 1.0,
            width: 2,
        };
        let g = geometry();
        // The bar centre at phase 0 starts at x = 0 and moves right.
        assert!(p.intensity(g, 0, 0, 0, 0.0) > 0.5);
        assert!(p.intensity(g, 10, 0, 10, 0.0) > 0.5);
        assert!(p.intensity(g, 20, 0, 0, 0.0) < 0.5);
    }
}

//! NMNIST-like synthetic dataset.
//!
//! NMNIST is produced by showing MNIST digits to a DVS camera mounted on a
//! pan/tilt unit that performs three micro-saccades; events appear at the
//! digit edges as the digit moves across the sensor. This surrogate renders
//! each digit from a 5×7 stroke font, upscales it to the 34×34 NMNIST
//! resolution, moves it along the classic three-saccade triangle and emits
//! ON/OFF events at the edge transitions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{sample_rng, EventDataset, LabeledStream};
use crate::noise::{apply_noise, NoiseConfig};
use crate::stream::{EventStream, Geometry};
use crate::Event;

/// 5×7 bitmap font for the digits 0–9 (row-major, one string per row).
const DIGIT_FONT: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ], // 0
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ], // 1
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ], // 2
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ], // 3
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ], // 4
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ], // 5
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ], // 6
    [
        "#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   ",
    ], // 7
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ], // 8
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ], // 9
];

/// A digit moving along the NMNIST three-saccade trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaccadeDigit {
    /// Digit value, 0–9.
    pub digit: u8,
    /// Integer upscaling factor applied to the 5×7 font bitmap.
    pub scale: u16,
}

impl SaccadeDigit {
    /// Returns `true` if the font bitmap of this digit is set at `(col, row)`
    /// in font coordinates (0..5, 0..7).
    #[must_use]
    pub fn font_pixel(&self, col: u16, row: u16) -> bool {
        if self.digit > 9 || col >= 5 || row >= 7 {
            return false;
        }
        DIGIT_FONT[usize::from(self.digit)][usize::from(row)]
            .as_bytes()
            .get(usize::from(col))
            .map(|&b| b == b'#')
            .unwrap_or(false)
    }

    /// Returns `true` if the upscaled digit, placed with its top-left corner
    /// at `(ox, oy)`, covers the sensor pixel `(x, y)`.
    #[must_use]
    pub fn covers(&self, x: i32, y: i32, ox: i32, oy: i32) -> bool {
        let scale = i32::from(self.scale.max(1));
        let col = (x - ox) / scale;
        let row = (y - oy) / scale;
        if (x - ox) < 0 || (y - oy) < 0 || col >= 5 || row >= 7 {
            return false;
        }
        self.font_pixel(col as u16, row as u16)
    }
}

/// Offset of the digit at timestep `t` following a triangular three-saccade
/// trajectory of the given amplitude (pixels), one saccade per third of the
/// sample duration.
fn saccade_offset(t: u32, timesteps: u32, amplitude: i32) -> (i32, i32) {
    let third = (timesteps / 3).max(1);
    let phase = t / third; // 0, 1, 2 (clamped)
    let progress = f64::from(t % third) / f64::from(third);
    let a = f64::from(amplitude);
    // Triangle: (0,0) -> (a, a) -> (-a, a) -> back to (0, 0).
    let (from, to) = match phase {
        0 => ((0.0, 0.0), (a, a)),
        1 => ((a, a), (-a, a)),
        _ => ((-a, a), (0.0, 0.0)),
    };
    let x = from.0 + (to.0 - from.0) * progress;
    let y = from.1 + (to.1 - from.1) * progress;
    (x.round() as i32, y.round() as i32)
}

/// The NMNIST-like synthetic dataset (10 classes, 34×34, 2 polarities).
///
/// # Example
///
/// ```
/// use sne_event::datasets::{EventDataset, NmnistDataset};
///
/// let dataset = NmnistDataset::new(60, 42);
/// let sample = dataset.sample(7);
/// assert_eq!(sample.label, 7);
/// assert!(sample.stream.spike_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmnistDataset {
    geometry: Geometry,
    noise: NoiseConfig,
    saccade_amplitude: i32,
    seed: u64,
}

impl NmnistDataset {
    /// NMNIST sensor resolution (34×34 pixels).
    pub const RESOLUTION: u16 = 34;

    /// Creates the dataset with the standard 34×34 geometry and default noise.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps` is zero.
    #[must_use]
    pub fn new(timesteps: u32, seed: u64) -> Self {
        Self::with_noise(timesteps, NoiseConfig::default(), seed)
    }

    /// Creates the dataset with an explicit noise configuration.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps` is zero.
    #[must_use]
    pub fn with_noise(timesteps: u32, noise: NoiseConfig, seed: u64) -> Self {
        let geometry = Geometry::new(Self::RESOLUTION, Self::RESOLUTION, 2, timesteps)
            .expect("NMNIST geometry must be non-zero");
        Self {
            geometry,
            noise,
            saccade_amplitude: 3,
            seed,
        }
    }

    /// Generates one sample of a specific digit.
    #[must_use]
    pub fn sample_digit(&self, digit: u8, index: u64) -> EventStream {
        let mut rng = sample_rng(self.seed ^ (u64::from(digit) << 40), index);
        let g = self.geometry;
        let digit = SaccadeDigit {
            digit: digit.min(9),
            scale: 4,
        };
        // Random base placement so different samples of the same digit differ.
        let base_x = rng.gen_range(2..=6);
        let base_y = rng.gen_range(1..=4);

        let mut stream = EventStream::with_geometry(g);
        let mut previous = vec![false; g.spatial_size()];
        for t in 0..g.timesteps {
            let (dx, dy) = saccade_offset(t, g.timesteps, self.saccade_amplitude);
            for y in 0..g.height {
                for x in 0..g.width {
                    let idx = usize::from(y) * usize::from(g.width) + usize::from(x);
                    let bright = digit.covers(i32::from(x), i32::from(y), base_x + dx, base_y + dy);
                    if bright != previous[idx] {
                        let ch = u16::from(!bright); // ON = 0, OFF = 1
                        stream.push_unchecked(Event::update(t, ch, x, y));
                    }
                    previous[idx] = bright;
                }
            }
        }
        apply_noise(&stream, &self.noise, &mut rng)
    }
}

impl EventDataset for NmnistDataset {
    fn num_classes(&self) -> usize {
        10
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn sample(&self, index: u64) -> LabeledStream {
        let label = (index % 10) as usize;
        LabeledStream {
            stream: self.sample_digit(label as u8, index),
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn font_has_ten_digits_of_five_by_seven() {
        for digit in 0..10u8 {
            let d = SaccadeDigit { digit, scale: 1 };
            let set: usize = (0..7)
                .flat_map(|row| (0..5).map(move |col| (col, row)))
                .filter(|&(c, r)| d.font_pixel(c, r))
                .count();
            assert!(set >= 7, "digit {digit} has implausibly few pixels ({set})");
        }
    }

    #[test]
    fn font_pixel_out_of_range_is_false() {
        let d = SaccadeDigit { digit: 0, scale: 1 };
        assert!(!d.font_pixel(5, 0));
        assert!(!d.font_pixel(0, 7));
        assert!(!SaccadeDigit {
            digit: 10,
            scale: 1
        }
        .font_pixel(0, 0));
    }

    #[test]
    fn covers_respects_scale_and_offset() {
        let d = SaccadeDigit { digit: 1, scale: 2 };
        // Digit 1 has a '#' at font (2, 0); scaled by 2 and offset by (10, 10)
        // it covers sensor pixels (14..16, 10..12).
        assert!(d.covers(14, 10, 10, 10));
        assert!(d.covers(15, 11, 10, 10));
        assert!(!d.covers(9, 10, 10, 10));
    }

    #[test]
    fn saccade_returns_to_origin() {
        let (x0, y0) = saccade_offset(0, 90, 3);
        assert_eq!((x0, y0), (0, 0));
        let (x_end, y_end) = saccade_offset(89, 90, 3);
        // Near the end of the third saccade the digit is back close to origin.
        assert!(x_end.abs() <= 3 && y_end <= 3);
    }

    #[test]
    fn dataset_covers_ten_classes_at_34x34() {
        let d = NmnistDataset::new(60, 5);
        assert_eq!(d.num_classes(), 10);
        assert_eq!(d.geometry().width, 34);
        assert_eq!(d.geometry().height, 34);
    }

    #[test]
    fn every_digit_produces_valid_events() {
        let d = NmnistDataset::new(60, 5);
        for digit in 0..10u8 {
            let s = d.sample_digit(digit, 0);
            assert!(s.spike_count() > 0, "digit {digit} produced no events");
            assert!(s.validate_all().is_ok());
        }
    }

    #[test]
    fn samples_are_deterministic_and_labels_match_digits() {
        let d = NmnistDataset::new(60, 5);
        assert_eq!(d.sample(23), d.sample(23));
        assert_eq!(d.sample(23).label, 3);
    }

    #[test]
    fn different_digits_produce_different_streams() {
        let d = NmnistDataset::new(60, 5);
        assert_ne!(d.sample_digit(0, 0), d.sample_digit(1, 0));
    }
}

//! Synthetic event-based datasets.
//!
//! The paper evaluates accuracy on the IBM DVS-Gesture and NMNIST datasets.
//! Neither dataset can be redistributed with this reproduction, so this
//! module provides parametric generators with the same geometry, class count
//! and — crucially for the energy experiments — the same *activity range*
//! (1.2 %–4.9 % for DVS-Gesture, paper §IV-B). The classification tasks are
//! non-trivial (classes are distinguished by spatio-temporal motion
//! patterns), so they exercise the same training and inference code paths the
//! paper exercises, but the absolute accuracy numbers are reported as
//! "synthetic surrogate" results (see `EXPERIMENTS.md`).

mod gesture;
mod nmnist;
mod synthetic;

pub use gesture::{GestureClass, GestureDataset};
pub use nmnist::{NmnistDataset, SaccadeDigit};
pub use synthetic::{MotionPattern, PatternDataset, PatternSample};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::stream::{EventStream, Geometry};

/// An event stream paired with its class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledStream {
    /// The event stream of this sample.
    pub stream: EventStream,
    /// Class label in `0..dataset.num_classes()`.
    pub label: usize,
}

/// A generator of labeled event streams.
///
/// Implementors are deterministic given `(seed, index)`, which makes the
/// train/validation/test splits reproducible without storing any data.
pub trait EventDataset {
    /// Number of classes of the classification task.
    fn num_classes(&self) -> usize;

    /// Geometry of every generated sample.
    fn geometry(&self) -> Geometry;

    /// Generates the `index`-th sample. The label cycles through the classes
    /// so that any contiguous index range is approximately class-balanced.
    fn sample(&self, index: u64) -> LabeledStream;

    /// Generates `count` samples starting at `start`.
    fn samples(&self, start: u64, count: u64) -> Vec<LabeledStream> {
        (start..start + count).map(|i| self.sample(i)).collect()
    }
}

/// A train/validation/test split of a dataset, expressed as index ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Number of training samples.
    pub train: u64,
    /// Number of validation samples.
    pub validation: u64,
    /// Number of test samples.
    pub test: u64,
}

impl DatasetSplit {
    /// Split matching the paper's DVS-Gesture protocol: 65 % / 10 % / 25 %.
    #[must_use]
    pub fn gesture_protocol(total: u64) -> Self {
        let train = total * 65 / 100;
        let validation = total * 10 / 100;
        Self {
            train,
            validation,
            test: total - train - validation,
        }
    }

    /// Split matching the paper's NMNIST protocol: 75 % / 10 % / 15 %.
    #[must_use]
    pub fn nmnist_protocol(total: u64) -> Self {
        let train = total * 75 / 100;
        let validation = total * 10 / 100;
        Self {
            train,
            validation,
            test: total - train - validation,
        }
    }

    /// Total number of samples in the split.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.train + self.validation + self.test
    }

    /// Index range of the training set.
    #[must_use]
    pub fn train_range(&self) -> std::ops::Range<u64> {
        0..self.train
    }

    /// Index range of the validation set.
    #[must_use]
    pub fn validation_range(&self) -> std::ops::Range<u64> {
        self.train..self.train + self.validation
    }

    /// Index range of the test set.
    #[must_use]
    pub fn test_range(&self) -> std::ops::Range<u64> {
        self.train + self.validation..self.total()
    }
}

/// Derives a per-sample RNG from a dataset seed and a sample index, so that
/// sample `i` is always identical regardless of generation order.
pub(crate) fn sample_rng(seed: u64, index: u64) -> StdRng {
    // SplitMix64-style mixing of (seed, index) into a 64-bit stream seed.
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gesture_split_matches_paper_percentages() {
        let split = DatasetSplit::gesture_protocol(1000);
        assert_eq!(split.train, 650);
        assert_eq!(split.validation, 100);
        assert_eq!(split.test, 250);
        assert_eq!(split.total(), 1000);
    }

    #[test]
    fn nmnist_split_matches_paper_percentages() {
        let split = DatasetSplit::nmnist_protocol(1000);
        assert_eq!(split.train, 750);
        assert_eq!(split.validation, 100);
        assert_eq!(split.test, 150);
        assert_eq!(split.total(), 1000);
    }

    #[test]
    fn split_ranges_are_contiguous_and_disjoint() {
        let split = DatasetSplit::gesture_protocol(200);
        assert_eq!(split.train_range().end, split.validation_range().start);
        assert_eq!(split.validation_range().end, split.test_range().start);
        assert_eq!(split.test_range().end, split.total());
    }

    #[test]
    fn sample_rng_is_deterministic_per_index() {
        use rand::Rng;
        let a: u64 = sample_rng(42, 7).gen();
        let b: u64 = sample_rng(42, 7).gen();
        let c: u64 = sample_rng(42, 8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! DVS-Gesture-like synthetic dataset.
//!
//! The IBM DVS-Gesture dataset contains 11 hand/arm gesture classes recorded
//! with a 128×128 DVS camera. This surrogate keeps the class count and the
//! two-polarity event encoding, and maps each gesture class to a distinct
//! parametric motion pattern; the default spatial resolution is 32×32 (the
//! paper's network of Fig. 6 also downscales its input). The generator's
//! target activity is tunable and defaults to the 1.2 %–4.9 % range the paper
//! measures on the real dataset.

use serde::{Deserialize, Serialize};

use super::synthetic::MotionPattern;
use super::{sample_rng, EventDataset, LabeledStream};
use crate::noise::{apply_noise, NoiseConfig};
use crate::stream::{EventStream, Geometry};

/// The eleven gesture classes of the surrogate dataset, mirroring the class
/// structure of IBM DVS-Gesture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GestureClass {
    /// Both hands clapping (converging/diverging blobs).
    HandClap,
    /// Right hand waving horizontally.
    RightHandWave,
    /// Left hand waving horizontally.
    LeftHandWave,
    /// Right arm rolling clockwise.
    RightArmRollCw,
    /// Right arm rolling counter-clockwise.
    RightArmRollCcw,
    /// Left arm rolling clockwise.
    LeftArmRollCw,
    /// Left arm rolling counter-clockwise.
    LeftArmRollCcw,
    /// Arm drumming (fast vertical oscillation).
    AirDrums,
    /// Air guitar (slow diagonal oscillation).
    AirGuitar,
    /// Expanding/contracting ring (arm circle seen frontally).
    ArmCircle,
    /// Random background activity ("other" class).
    Other,
}

impl GestureClass {
    /// All classes in label order.
    pub const ALL: [GestureClass; 11] = [
        GestureClass::HandClap,
        GestureClass::RightHandWave,
        GestureClass::LeftHandWave,
        GestureClass::RightArmRollCw,
        GestureClass::RightArmRollCcw,
        GestureClass::LeftArmRollCw,
        GestureClass::LeftArmRollCcw,
        GestureClass::AirDrums,
        GestureClass::AirGuitar,
        GestureClass::ArmCircle,
        GestureClass::Other,
    ];

    /// Numeric label of the class.
    #[must_use]
    pub fn label(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class is in ALL")
    }

    /// Class from its numeric label.
    #[must_use]
    pub fn from_label(label: usize) -> Option<Self> {
        Self::ALL.get(label).copied()
    }

    /// The motion pattern that renders this gesture.
    #[must_use]
    pub fn pattern(self) -> MotionPattern {
        match self {
            GestureClass::HandClap => MotionPattern::ConvergingBlobs {
                period: 16.0,
                blob_radius: 3,
            },
            GestureClass::RightHandWave => MotionPattern::TranslatingBar {
                speed: 1.5,
                width: 3,
            },
            GestureClass::LeftHandWave => MotionPattern::TranslatingBar {
                speed: -1.5,
                width: 3,
            },
            GestureClass::RightArmRollCw => MotionPattern::OrbitingBlob {
                angular_speed: 0.35,
                radius_fraction: 0.65,
                blob_radius: 3,
            },
            GestureClass::RightArmRollCcw => MotionPattern::OrbitingBlob {
                angular_speed: -0.35,
                radius_fraction: 0.65,
                blob_radius: 3,
            },
            GestureClass::LeftArmRollCw => MotionPattern::OrbitingBlob {
                angular_speed: 0.2,
                radius_fraction: 0.4,
                blob_radius: 4,
            },
            GestureClass::LeftArmRollCcw => MotionPattern::OrbitingBlob {
                angular_speed: -0.2,
                radius_fraction: 0.4,
                blob_radius: 4,
            },
            GestureClass::AirDrums => MotionPattern::OscillatingBlob {
                period: 8.0,
                amplitude_fraction: 0.8,
                blob_radius: 3,
            },
            GestureClass::AirGuitar => MotionPattern::OscillatingBlob {
                period: 24.0,
                amplitude_fraction: 0.5,
                blob_radius: 4,
            },
            GestureClass::ArmCircle => MotionPattern::PulsingRing {
                period: 20.0,
                max_radius_fraction: 0.85,
            },
            GestureClass::Other => MotionPattern::RandomFlicker { rate: 0.012 },
        }
    }
}

/// The DVS-Gesture-like synthetic dataset (11 classes, 2 polarities).
///
/// # Example
///
/// ```
/// use sne_event::datasets::{EventDataset, GestureDataset};
///
/// let dataset = GestureDataset::new(32, 64, 42);
/// let sample = dataset.sample(3);
/// assert_eq!(dataset.num_classes(), 11);
/// assert!(sample.stream.spike_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GestureDataset {
    geometry: Geometry,
    noise: NoiseConfig,
    seed: u64,
}

impl GestureDataset {
    /// Creates the dataset at the given square spatial resolution and number
    /// of timesteps, with default sensor noise.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` or `timesteps` is zero.
    #[must_use]
    pub fn new(resolution: u16, timesteps: u32, seed: u64) -> Self {
        Self::with_noise(resolution, timesteps, NoiseConfig::default(), seed)
    }

    /// Creates the dataset with an explicit noise configuration.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` or `timesteps` is zero.
    #[must_use]
    pub fn with_noise(resolution: u16, timesteps: u32, noise: NoiseConfig, seed: u64) -> Self {
        let geometry = Geometry::new(resolution, resolution, 2, timesteps)
            .expect("gesture dataset geometry must be non-zero");
        Self {
            geometry,
            noise,
            seed,
        }
    }

    /// Generates one sample of a specific gesture class.
    #[must_use]
    pub fn sample_class(&self, class: GestureClass, index: u64) -> EventStream {
        let mut rng = sample_rng(self.seed ^ (class.label() as u64) << 32, index);
        let phase: f64 = rand::Rng::gen(&mut rng);
        let clean = class.pattern().render(self.geometry, phase, &mut rng);
        apply_noise(&clean, &self.noise, &mut rng)
    }
}

impl EventDataset for GestureDataset {
    fn num_classes(&self) -> usize {
        GestureClass::ALL.len()
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn sample(&self, index: u64) -> LabeledStream {
        let label = (index % GestureClass::ALL.len() as u64) as usize;
        let class = GestureClass::from_label(label).expect("label in range");
        LabeledStream {
            stream: self.sample_class(class, index),
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_round_trip() {
        for class in GestureClass::ALL {
            assert_eq!(GestureClass::from_label(class.label()), Some(class));
        }
        assert_eq!(GestureClass::from_label(11), None);
    }

    #[test]
    fn dataset_has_eleven_classes_and_two_polarities() {
        let d = GestureDataset::new(32, 64, 1);
        assert_eq!(d.num_classes(), 11);
        assert_eq!(d.geometry().channels, 2);
        assert_eq!(d.geometry().width, 32);
    }

    #[test]
    fn every_class_produces_events_in_range() {
        let d = GestureDataset::new(32, 64, 1);
        for class in GestureClass::ALL {
            let stream = d.sample_class(class, 0);
            assert!(stream.spike_count() > 0, "{class:?} produced no events");
            assert!(
                stream.validate_all().is_ok(),
                "{class:?} produced invalid events"
            );
        }
    }

    #[test]
    fn samples_are_deterministic() {
        let d = GestureDataset::new(32, 64, 7);
        assert_eq!(d.sample(13), d.sample(13));
    }

    #[test]
    fn activity_is_in_a_plausible_dvs_range() {
        // The paper reports 1.2 %–4.9 % average activity on DVS-Gesture. Allow
        // a generous envelope (0.1 %–10 %) — the point is order of magnitude.
        let d = GestureDataset::new(32, 64, 3);
        for i in 0..11 {
            let s = d.sample(i);
            let activity = s.stream.activity();
            assert!(
                (0.001..0.10).contains(&activity),
                "sample {i} activity {activity} outside plausible DVS range"
            );
        }
    }

    #[test]
    fn opposite_arm_rolls_differ() {
        let d = GestureDataset::new(32, 64, 3);
        let cw = d.sample_class(GestureClass::RightArmRollCw, 0);
        let ccw = d.sample_class(GestureClass::RightArmRollCcw, 0);
        assert_ne!(cw, ccw);
    }
}

//! Event representation, streams, tensors and synthetic event-based datasets
//! for the SNE reproduction.
//!
//! The SNE accelerator (Di Mauro et al., DATE 2022) consumes *explicitly
//! encoded* events: each event is a 32-bit word carrying an operation code,
//! a timestamp and a spatial address `(ch, x, y)`. This crate provides:
//!
//! * [`Event`], [`EventOp`] — the logical event quadruple of the paper
//!   (§III-C, Fig. 1), plus [`format::EventFormat`] for packing events into
//!   the 32-bit memory word used by the streamer DMAs.
//! * [`stream::EventStream`] — a time-ordered collection of events with the
//!   geometry of the feature map that produced them, plus activity statistics
//!   ([`stats::ActivityStats`]) that drive the energy-proportionality
//!   experiments.
//! * [`tensor::EventTensor`] — the dense binary `[T, C, H, W]` view used by
//!   the functional reference model.
//! * [`datasets`] — synthetic surrogates of the IBM DVS-Gesture and NMNIST
//!   datasets used by the paper's accuracy benchmark (§IV-B). The real
//!   datasets are not redistributable here, so parametric generators with the
//!   same geometry and activity statistics are provided instead (see
//!   `DESIGN.md` §4).
//!
//! # Example
//!
//! ```
//! use sne_event::{Event, EventOp, stream::EventStream};
//!
//! let mut stream = EventStream::new(32, 32, 2, 10);
//! stream.push(Event::update(3, 0, 12, 17))?;
//! stream.push(Event::fire(3))?;
//! assert_eq!(stream.len(), 2);
//! assert!(stream.is_time_ordered());
//! # Ok::<(), sne_event::EventError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aer;
pub mod datasets;
pub mod event;
pub mod format;
pub mod noise;
pub mod op;
pub mod sort;
pub mod stats;
pub mod stream;
pub mod tensor;

mod error;

pub use error::EventError;
pub use event::Event;
pub use format::{EventFormat, PackedEvent};
pub use op::EventOp;
pub use stream::EventStream;
pub use tensor::EventTensor;

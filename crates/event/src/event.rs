//! The logical event quadruple `(OP, t, ch, x, y)`.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EventOp;

/// A single event as defined by the SNE data format (paper Fig. 1).
///
/// An event is the quadruple `E := (OP, t, x, y)` extended with the input
/// channel `ch` that selects the weight set inside the filter buffer. The
/// fields are kept at their logical width here; [`EventFormat`] packs them
/// into the 32-bit memory word consumed by the streamer DMAs.
///
/// [`EventFormat`]: crate::format::EventFormat
///
/// # Example
///
/// ```
/// use sne_event::{Event, EventOp};
///
/// let spike = Event::update(4, 1, 10, 20);
/// assert_eq!(spike.op, EventOp::Update);
/// assert_eq!((spike.t, spike.ch, spike.x, spike.y), (4, 1, 10, 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp (timestep index within the inference window).
    pub t: u32,
    /// Operation code.
    pub op: EventOp,
    /// Input channel (selects a weight set in the filter buffer).
    pub ch: u16,
    /// Horizontal address within the feature map.
    pub x: u16,
    /// Vertical address within the feature map.
    pub y: u16,
}

impl Event {
    /// Creates an event with an explicit operation code.
    #[must_use]
    pub fn new(op: EventOp, t: u32, ch: u16, x: u16, y: u16) -> Self {
        Self { op, t, ch, x, y }
    }

    /// Creates an `UPDATE_OP` event (an input spike at `(ch, x, y)` at time `t`).
    #[must_use]
    pub fn update(t: u32, ch: u16, x: u16, y: u16) -> Self {
        Self::new(EventOp::Update, t, ch, x, y)
    }

    /// Creates a `RST_OP` event at time `t`; the address fields are zero.
    #[must_use]
    pub fn reset(t: u32) -> Self {
        Self::new(EventOp::Reset, t, 0, 0, 0)
    }

    /// Creates a `FIRE_OP` event at time `t`; the address fields are zero.
    #[must_use]
    pub fn fire(t: u32) -> Self {
        Self::new(EventOp::Fire, t, 0, 0, 0)
    }

    /// Returns the spatial address `(x, y)` of the event.
    #[must_use]
    pub fn address(&self) -> (u16, u16) {
        (self.x, self.y)
    }

    /// Returns `true` if this is an input spike (`UPDATE_OP`).
    #[must_use]
    pub fn is_spike(&self) -> bool {
        self.op == EventOp::Update
    }

    /// Returns a copy of the event shifted in time by `delta` timesteps.
    #[must_use]
    pub fn delayed(&self, delta: u32) -> Self {
        Self {
            t: self.t + delta,
            ..*self
        }
    }

    /// Returns a copy of the event translated by `(dx, dy)` with saturating
    /// arithmetic (coordinates never wrap).
    #[must_use]
    pub fn translated(&self, dx: i32, dy: i32) -> Self {
        let x = (i64::from(self.x) + i64::from(dx)).clamp(0, i64::from(u16::MAX)) as u16;
        let y = (i64::from(self.y) + i64::from(dy)).clamp(0, i64::from(u16::MAX)) as u16;
        Self { x, y, ..*self }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@t={} ch={} ({}, {})",
            self.op, self.t, self.ch, self.x, self.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_expected_op() {
        assert_eq!(Event::update(1, 2, 3, 4).op, EventOp::Update);
        assert_eq!(Event::reset(1).op, EventOp::Reset);
        assert_eq!(Event::fire(1).op, EventOp::Fire);
    }

    #[test]
    fn reset_and_fire_have_zero_address() {
        assert_eq!(Event::reset(7).address(), (0, 0));
        assert_eq!(Event::fire(7).address(), (0, 0));
    }

    #[test]
    fn delayed_shifts_time_only() {
        let e = Event::update(5, 1, 2, 3);
        let d = e.delayed(10);
        assert_eq!(d.t, 15);
        assert_eq!((d.ch, d.x, d.y), (1, 2, 3));
    }

    #[test]
    fn translated_saturates_at_zero() {
        let e = Event::update(0, 0, 2, 3);
        let t = e.translated(-10, -10);
        assert_eq!(t.address(), (0, 0));
    }

    #[test]
    fn translated_saturates_at_u16_max() {
        let e = Event::update(0, 0, u16::MAX - 1, 0);
        let t = e.translated(10, 0);
        assert_eq!(t.x, u16::MAX);
    }

    #[test]
    fn ordering_is_time_major() {
        let a = Event::update(1, 5, 5, 5);
        let b = Event::update(2, 0, 0, 0);
        assert!(a < b);
    }

    #[test]
    fn display_mentions_op_and_coordinates() {
        let e = Event::update(3, 1, 10, 20);
        let s = e.to_string();
        assert!(s.contains("UPDATE_OP"));
        assert!(s.contains("10"));
        assert!(s.contains("20"));
    }
}

//! Sensor noise models for synthetic event streams.
//!
//! Real event-based vision sensors produce background-activity noise (random
//! isolated events), hot pixels (pixels firing far above the mean rate) and
//! timestamp jitter. The synthetic datasets add configurable amounts of each
//! so that the activity statistics driving the energy experiments resemble
//! real DVS recordings rather than perfectly clean trajectories.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::stream::EventStream;
use crate::Event;

/// Configuration of the sensor noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Probability per position per timestep of a spurious background event.
    pub background_rate: f64,
    /// Number of hot pixels (each fires every timestep on a random channel).
    pub hot_pixels: usize,
    /// Maximum absolute timestamp jitter applied to signal events, in timesteps.
    pub jitter: u32,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            background_rate: 1e-4,
            hot_pixels: 0,
            jitter: 0,
        }
    }
}

impl NoiseConfig {
    /// A completely clean sensor (no noise at all).
    #[must_use]
    pub fn clean() -> Self {
        Self {
            background_rate: 0.0,
            hot_pixels: 0,
            jitter: 0,
        }
    }

    /// A noisy sensor: strong background activity, a few hot pixels and ±1
    /// timestep of jitter.
    #[must_use]
    pub fn noisy() -> Self {
        Self {
            background_rate: 1e-3,
            hot_pixels: 3,
            jitter: 1,
        }
    }
}

/// Applies the noise model to a stream, returning a new stream with the same
/// geometry. Signal events are jittered; background and hot-pixel events are
/// added on top. The result is time-sorted.
#[must_use]
pub fn apply_noise<R: Rng>(stream: &EventStream, config: &NoiseConfig, rng: &mut R) -> EventStream {
    let g = stream.geometry();
    let mut out = EventStream::with_geometry(g);

    // Jittered copies of the signal events.
    for e in stream.iter() {
        if !e.is_spike() || config.jitter == 0 {
            out.push_unchecked(*e);
            continue;
        }
        let jitter = rng.gen_range(-(config.jitter as i64)..=config.jitter as i64);
        let t = (i64::from(e.t) + jitter).clamp(0, i64::from(g.timesteps) - 1) as u32;
        out.push_unchecked(Event { t, ..*e });
    }

    // Background activity: Bernoulli per (t, ch, y, x). For efficiency sample
    // the number of noise events from the expected count instead of iterating
    // the full volume when the rate is small.
    if config.background_rate > 0.0 {
        let expected = config.background_rate * g.volume() as f64;
        let count = sample_poisson_like(expected, rng);
        for _ in 0..count {
            let t = rng.gen_range(0..g.timesteps);
            let ch = rng.gen_range(0..g.channels);
            let x = rng.gen_range(0..g.width);
            let y = rng.gen_range(0..g.height);
            out.push_unchecked(Event::update(t, ch, x, y));
        }
    }

    // Hot pixels: fire every timestep at a fixed random location/channel.
    for _ in 0..config.hot_pixels {
        let ch = rng.gen_range(0..g.channels);
        let x = rng.gen_range(0..g.width);
        let y = rng.gen_range(0..g.height);
        for t in 0..g.timesteps {
            out.push_unchecked(Event::update(t, ch, x, y));
        }
    }

    out.sort_by_time();
    out
}

/// Cheap Poisson-like sampler (normal approximation clamped at zero) — good
/// enough for generating noise event counts.
fn sample_poisson_like<R: Rng>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 16.0 {
        // Direct simulation for small means.
        let mut count = 0usize;
        let l = (-mean).exp();
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                break;
            }
            count += 1;
            if count > 10_000 {
                break;
            }
        }
        count
    } else {
        let std = mean.sqrt();
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std * z).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_stream() -> EventStream {
        let mut s = EventStream::new(32, 32, 2, 100);
        for t in 0..50 {
            s.push(Event::update(t, 0, 10, 10)).unwrap();
        }
        s
    }

    #[test]
    fn clean_noise_preserves_events_exactly() {
        let s = base_stream();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = apply_noise(&s, &NoiseConfig::clean(), &mut rng);
        assert_eq!(noisy.spike_count(), s.spike_count());
    }

    #[test]
    fn background_noise_adds_events() {
        let s = base_stream();
        let mut rng = StdRng::seed_from_u64(2);
        let config = NoiseConfig {
            background_rate: 1e-3,
            hot_pixels: 0,
            jitter: 0,
        };
        let noisy = apply_noise(&s, &config, &mut rng);
        assert!(noisy.spike_count() > s.spike_count());
        assert!(noisy.validate_all().is_ok());
    }

    #[test]
    fn hot_pixels_fire_every_timestep() {
        let s = EventStream::new(16, 16, 2, 30);
        let mut rng = StdRng::seed_from_u64(3);
        let config = NoiseConfig {
            background_rate: 0.0,
            hot_pixels: 2,
            jitter: 0,
        };
        let noisy = apply_noise(&s, &config, &mut rng);
        assert_eq!(noisy.spike_count(), 2 * 30);
        assert!(noisy.validate_all().is_ok());
    }

    #[test]
    fn jitter_keeps_timestamps_in_range() {
        let s = base_stream();
        let mut rng = StdRng::seed_from_u64(4);
        let config = NoiseConfig {
            background_rate: 0.0,
            hot_pixels: 0,
            jitter: 3,
        };
        let noisy = apply_noise(&s, &config, &mut rng);
        assert_eq!(noisy.spike_count(), s.spike_count());
        assert!(noisy.validate_all().is_ok());
        assert!(noisy.is_time_ordered());
    }

    #[test]
    fn poisson_sampler_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 2000;
        let mean = 40.0;
        let total: usize = (0..n).map(|_| sample_poisson_like(mean, &mut rng)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 2.0, "empirical mean {empirical}");
    }

    #[test]
    fn zero_mean_poisson_is_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(sample_poisson_like(0.0, &mut rng), 0);
        assert_eq!(sample_poisson_like(-1.0, &mut rng), 0);
    }
}

//! Event operation codes understood by the SNE engine.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EventError;

/// Operation carried by an event word (paper §III-C).
///
/// The SNE execution model distinguishes three event operations:
///
/// * [`EventOp::Reset`] (`RST_OP`) resets the membrane potential of every
///   neuron in the addressed slice to zero; it marks the start of a new
///   inference.
/// * [`EventOp::Update`] (`UPDATE_OP`) accumulates the synaptic contribution
///   of an input spike into the membrane potential of every output neuron
///   whose receptive field contains the event address.
/// * [`EventOp::Fire`] (`FIRE_OP`) closes a timestep: every neuron whose
///   membrane potential exceeds the firing threshold emits an output event
///   and its potential is reset.
///
/// # Example
///
/// ```
/// use sne_event::EventOp;
///
/// let op = EventOp::from_code(1)?;
/// assert_eq!(op, EventOp::Update);
/// assert_eq!(op.code(), 1);
/// # Ok::<(), sne_event::EventError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventOp {
    /// `RST_OP`: reset all neuron state variables to zero.
    Reset,
    /// `UPDATE_OP`: accumulate the event into the receptive-field neurons.
    Update,
    /// `FIRE_OP`: emit output events for neurons above threshold.
    Fire,
}

impl EventOp {
    /// All operation codes, in encoding order.
    pub const ALL: [EventOp; 3] = [EventOp::Reset, EventOp::Update, EventOp::Fire];

    /// Numeric code used in the packed 32-bit event word.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            EventOp::Reset => 0,
            EventOp::Update => 1,
            EventOp::Fire => 2,
        }
    }

    /// Decodes a numeric operation code.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownOpCode`] if `code` is not 0, 1 or 2.
    pub fn from_code(code: u8) -> Result<Self, EventError> {
        match code {
            0 => Ok(EventOp::Reset),
            1 => Ok(EventOp::Update),
            2 => Ok(EventOp::Fire),
            other => Err(EventError::UnknownOpCode(other)),
        }
    }

    /// Returns `true` for operations that carry a spatial address
    /// (only [`EventOp::Update`] does).
    #[must_use]
    pub fn carries_address(self) -> bool {
        matches!(self, EventOp::Update)
    }

    /// Returns `true` if the operation triggers neuron state writes on every
    /// cluster of a slice (reset and fire do, update only touches the
    /// receptive field).
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        matches!(self, EventOp::Reset | EventOp::Fire)
    }
}

impl fmt::Display for EventOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EventOp::Reset => "RST_OP",
            EventOp::Update => "UPDATE_OP",
            EventOp::Fire => "FIRE_OP",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trips() {
        for op in EventOp::ALL {
            assert_eq!(EventOp::from_code(op.code()).unwrap(), op);
        }
    }

    #[test]
    fn unknown_code_is_rejected() {
        assert_eq!(EventOp::from_code(3), Err(EventError::UnknownOpCode(3)));
        assert_eq!(EventOp::from_code(255), Err(EventError::UnknownOpCode(255)));
    }

    #[test]
    fn only_update_carries_address() {
        assert!(EventOp::Update.carries_address());
        assert!(!EventOp::Reset.carries_address());
        assert!(!EventOp::Fire.carries_address());
    }

    #[test]
    fn reset_and_fire_are_broadcast() {
        assert!(EventOp::Reset.is_broadcast());
        assert!(EventOp::Fire.is_broadcast());
        assert!(!EventOp::Update.is_broadcast());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(EventOp::Reset.to_string(), "RST_OP");
        assert_eq!(EventOp::Update.to_string(), "UPDATE_OP");
        assert_eq!(EventOp::Fire.to_string(), "FIRE_OP");
    }
}

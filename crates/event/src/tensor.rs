//! Dense binary spike tensors (`[T, C, H, W]`).
//!
//! The functional reference model (crate `sne-model`) operates on dense
//! binary tensors, while the accelerator consumes sparse event streams.
//! [`EventTensor`] converts between the two views; the conversion is lossless
//! for `UPDATE_OP` events (duplicate events at the same position collapse to
//! a single binary spike, matching the binary input/output feature maps of
//! SNNs described in paper §III-A).

use serde::{Deserialize, Serialize};

use crate::stream::{EventStream, Geometry};
use crate::{Event, EventError};

/// A dense binary spike tensor with shape `[timesteps, channels, height, width]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTensor {
    geometry: Geometry,
    /// Row-major bitmap: index = ((t * C + c) * H + y) * W + x.
    data: Vec<bool>,
}

impl EventTensor {
    /// Creates an all-zero tensor with the given geometry.
    #[must_use]
    pub fn zeros(geometry: Geometry) -> Self {
        Self {
            data: vec![false; geometry.volume()],
            geometry,
        }
    }

    /// Geometry (shape) of the tensor.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn index(&self, t: u32, ch: u16, x: u16, y: u16) -> usize {
        let g = self.geometry;
        (((t as usize * usize::from(g.channels) + usize::from(ch)) * usize::from(g.height)
            + usize::from(y))
            * usize::from(g.width))
            + usize::from(x)
    }

    /// Returns the spike bit at `(t, ch, x, y)`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, t: u32, ch: u16, x: u16, y: u16) -> Option<bool> {
        let g = self.geometry;
        if t >= g.timesteps || ch >= g.channels || x >= g.width || y >= g.height {
            return None;
        }
        Some(self.data[self.index(t, ch, x, y)])
    }

    /// Sets the spike bit at `(t, ch, x, y)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the position is outside the tensor geometry.
    pub fn set(&mut self, t: u32, ch: u16, x: u16, y: u16, value: bool) -> Result<(), EventError> {
        let g = self.geometry;
        if t >= g.timesteps {
            return Err(EventError::TimestampOutOfRange {
                t,
                timesteps: g.timesteps,
            });
        }
        if ch >= g.channels {
            return Err(EventError::ChannelOutOfRange {
                ch,
                channels: g.channels,
            });
        }
        if x >= g.width || y >= g.height {
            return Err(EventError::CoordinateOutOfRange {
                x,
                y,
                width: g.width,
                height: g.height,
            });
        }
        let idx = self.index(t, ch, x, y);
        self.data[idx] = value;
        Ok(())
    }

    /// Number of set spike bits.
    #[must_use]
    pub fn spike_count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Fraction of set bits (activity of the dense view).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.spike_count() as f64 / self.data.len() as f64
    }

    /// Builds a dense tensor from an event stream (duplicate events collapse).
    #[must_use]
    pub fn from_stream(stream: &EventStream) -> Self {
        let mut tensor = Self::zeros(stream.geometry());
        for e in stream.iter().filter(|e| e.is_spike()) {
            let idx = tensor.index(e.t, e.ch, e.x, e.y);
            tensor.data[idx] = true;
        }
        tensor
    }

    /// Converts the tensor to a time-ordered event stream of `UPDATE_OP`
    /// events (one per set bit).
    #[must_use]
    pub fn to_stream(&self) -> EventStream {
        let g = self.geometry;
        let mut stream = EventStream::with_geometry(g);
        for t in 0..g.timesteps {
            for ch in 0..g.channels {
                for y in 0..g.height {
                    for x in 0..g.width {
                        if self.data[self.index(t, ch, x, y)] {
                            stream.push_unchecked(Event::update(t, ch, x, y));
                        }
                    }
                }
            }
        }
        stream
    }

    /// Returns the binary frame at timestep `t` and channel `ch` as a
    /// row-major `height x width` vector, or `None` if out of range.
    #[must_use]
    pub fn frame(&self, t: u32, ch: u16) -> Option<Vec<bool>> {
        let g = self.geometry;
        if t >= g.timesteps || ch >= g.channels {
            return None;
        }
        let mut out = Vec::with_capacity(g.spatial_size());
        for y in 0..g.height {
            for x in 0..g.width {
                out.push(self.data[self.index(t, ch, x, y)]);
            }
        }
        Some(out)
    }

    /// Sums spikes over time per `(ch, y, x)` position, producing a spike-count
    /// map that is used as the rate-coded output of the reference model.
    #[must_use]
    pub fn spike_counts_per_position(&self) -> Vec<u32> {
        let g = self.geometry;
        let mut counts = vec![0u32; g.frame_size()];
        for t in 0..g.timesteps {
            for ch in 0..g.channels {
                for y in 0..g.height {
                    for x in 0..g.width {
                        if self.data[self.index(t, ch, x, y)] {
                            let pos = (usize::from(ch) * usize::from(g.height) + usize::from(y))
                                * usize::from(g.width)
                                + usize::from(x);
                            counts[pos] += 1;
                        }
                    }
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> Geometry {
        Geometry::new(4, 3, 2, 5).unwrap()
    }

    #[test]
    fn zeros_has_no_spikes() {
        let t = EventTensor::zeros(geometry());
        assert_eq!(t.spike_count(), 0);
        assert_eq!(t.activity(), 0.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = EventTensor::zeros(geometry());
        t.set(2, 1, 3, 2, true).unwrap();
        assert_eq!(t.get(2, 1, 3, 2), Some(true));
        assert_eq!(t.get(2, 1, 3, 1), Some(false));
        assert_eq!(t.get(5, 0, 0, 0), None);
    }

    #[test]
    fn set_out_of_range_is_rejected() {
        let mut t = EventTensor::zeros(geometry());
        assert!(t.set(0, 0, 4, 0, true).is_err());
        assert!(t.set(0, 2, 0, 0, true).is_err());
        assert!(t.set(5, 0, 0, 0, true).is_err());
    }

    #[test]
    fn stream_round_trip_collapses_duplicates() {
        let mut s = EventStream::with_geometry(geometry());
        s.push(Event::update(0, 0, 1, 1)).unwrap();
        s.push(Event::update(0, 0, 1, 1)).unwrap();
        s.push(Event::update(3, 1, 2, 0)).unwrap();
        let tensor = EventTensor::from_stream(&s);
        assert_eq!(tensor.spike_count(), 2);
        let back = tensor.to_stream();
        assert_eq!(back.spike_count(), 2);
        assert!(back.is_time_ordered());
        assert_eq!(EventTensor::from_stream(&back), tensor);
    }

    #[test]
    fn frame_extracts_one_timestep_channel() {
        let mut t = EventTensor::zeros(geometry());
        t.set(1, 0, 0, 0, true).unwrap();
        t.set(1, 0, 3, 2, true).unwrap();
        let frame = t.frame(1, 0).unwrap();
        assert_eq!(frame.len(), 12);
        assert!(frame[0]);
        assert!(frame[11]);
        assert_eq!(frame.iter().filter(|&&b| b).count(), 2);
        assert!(t.frame(5, 0).is_none());
    }

    #[test]
    fn spike_counts_accumulate_over_time() {
        let mut t = EventTensor::zeros(geometry());
        for time in 0..5 {
            t.set(time, 0, 2, 1, true).unwrap();
        }
        let counts = t.spike_counts_per_position();
        let (ch, y, x) = (0usize, 1usize, 2usize);
        let pos = (ch * 3 + y) * 4 + x;
        assert_eq!(counts[pos], 5);
        assert_eq!(counts.iter().sum::<u32>(), 5);
    }
}

//! Time-ordered event streams with feature-map geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::stats::ActivityStats;
use crate::{Event, EventError};

/// Geometry of the feature map an event stream refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Feature-map width in pixels/neurons.
    pub width: u16,
    /// Feature-map height in pixels/neurons.
    pub height: u16,
    /// Number of channels (e.g. 2 polarities for a DVS sensor).
    pub channels: u16,
    /// Number of timesteps of the inference window.
    pub timesteps: u32,
}

impl Geometry {
    /// Creates a geometry, validating that no dimension is zero.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::EmptyGeometry`] if any dimension is zero.
    pub fn new(width: u16, height: u16, channels: u16, timesteps: u32) -> Result<Self, EventError> {
        if width == 0 || height == 0 || channels == 0 || timesteps == 0 {
            return Err(EventError::EmptyGeometry);
        }
        Ok(Self {
            width,
            height,
            channels,
            timesteps,
        })
    }

    /// Number of spatial positions (`width * height`).
    #[must_use]
    pub fn spatial_size(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Number of neurons/pixels per timestep (`width * height * channels`).
    #[must_use]
    pub fn frame_size(&self) -> usize {
        self.spatial_size() * usize::from(self.channels)
    }

    /// Total number of spatio-temporal positions.
    #[must_use]
    pub fn volume(&self) -> usize {
        self.frame_size() * self.timesteps as usize
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{} over {} timesteps",
            self.channels, self.height, self.width, self.timesteps
        )
    }
}

/// A time-ordered sequence of events produced by (or destined to) one
/// feature map.
///
/// Events are stored in insertion order; helpers are provided to check and
/// restore time ordering (the SNE consumes its input stream strictly in time
/// order, see Listing 1 of the paper).
///
/// # Example
///
/// ```
/// use sne_event::{Event, EventStream};
///
/// let mut stream = EventStream::new(16, 16, 2, 50);
/// for t in 0..5 {
///     stream.push(Event::update(t, 0, 3, 4))?;
/// }
/// assert_eq!(stream.len(), 5);
/// assert!((stream.activity() - 5.0 / (16.0 * 16.0 * 2.0 * 50.0)).abs() < 1e-9);
/// # Ok::<(), sne_event::EventError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStream {
    geometry: Geometry,
    events: Vec<Event>,
}

impl EventStream {
    /// Creates an empty stream for a `width x height x channels` feature map
    /// observed over `timesteps` timesteps.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`EventStream::with_geometry`]
    /// with a validated [`Geometry`] to avoid the panic.
    #[must_use]
    pub fn new(width: u16, height: u16, channels: u16, timesteps: u32) -> Self {
        let geometry = Geometry::new(width, height, channels, timesteps)
            .expect("stream geometry must be non-zero");
        Self::with_geometry(geometry)
    }

    /// Creates an empty stream from a validated geometry.
    #[must_use]
    pub fn with_geometry(geometry: Geometry) -> Self {
        Self {
            geometry,
            events: Vec::new(),
        }
    }

    /// Geometry of the feature map this stream refers to.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Number of events in the stream (all operations included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the stream contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event, validating it against the stream geometry.
    ///
    /// Only `UPDATE_OP` events are checked spatially; `RST_OP` and `FIRE_OP`
    /// carry no meaningful address.
    ///
    /// # Errors
    ///
    /// Returns an error if the event's coordinates, channel or timestamp fall
    /// outside the stream geometry.
    pub fn push(&mut self, event: Event) -> Result<(), EventError> {
        self.validate(&event)?;
        self.events.push(event);
        Ok(())
    }

    /// Appends an event without validation.
    ///
    /// Intended for generators that construct events known to be in range;
    /// invalid events will surface later as validation or simulation errors.
    pub fn push_unchecked(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Validates a single event against the stream geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if the event's coordinates, channel or timestamp fall
    /// outside the stream geometry.
    pub fn validate(&self, event: &Event) -> Result<(), EventError> {
        let g = self.geometry;
        if event.t >= g.timesteps {
            return Err(EventError::TimestampOutOfRange {
                t: event.t,
                timesteps: g.timesteps,
            });
        }
        if event.op.carries_address() {
            if event.ch >= g.channels {
                return Err(EventError::ChannelOutOfRange {
                    ch: event.ch,
                    channels: g.channels,
                });
            }
            if event.x >= g.width || event.y >= g.height {
                return Err(EventError::CoordinateOutOfRange {
                    x: event.x,
                    y: event.y,
                    width: g.width,
                    height: g.height,
                });
            }
        }
        Ok(())
    }

    /// Validates every event in the stream.
    ///
    /// # Errors
    ///
    /// Returns the first validation error encountered.
    pub fn validate_all(&self) -> Result<(), EventError> {
        self.events.iter().try_for_each(|e| self.validate(e))
    }

    /// Iterates over the events in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Events as a slice, in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the stream and returns the underlying event vector.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Returns `true` if event timestamps are non-decreasing.
    #[must_use]
    pub fn is_time_ordered(&self) -> bool {
        self.events.windows(2).all(|w| w[0].t <= w[1].t)
    }

    /// Stably sorts the events by timestamp (preserving intra-timestep order).
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|e| e.t);
    }

    /// Number of input spikes (`UPDATE_OP` events only).
    #[must_use]
    pub fn spike_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_spike()).count()
    }

    /// Fraction of active spatio-temporal positions: spikes divided by the
    /// stream volume (`width*height*channels*timesteps`).
    ///
    /// This is the quantity the paper calls *input activity* (1.2 %–4.9 % for
    /// IBM DVS-Gesture).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.spike_count() as f64 / self.geometry.volume() as f64
    }

    /// Computes per-timestep activity statistics.
    #[must_use]
    pub fn stats(&self) -> ActivityStats {
        ActivityStats::from_stream(self)
    }

    /// Spikes occurring at timestep `t`, in insertion order.
    #[must_use]
    pub fn spikes_at(&self, t: u32) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.is_spike() && e.t == t)
            .copied()
            .collect()
    }

    /// Groups spikes by timestep: element `t` of the returned vector holds the
    /// spikes of timestep `t`.
    #[must_use]
    pub fn spikes_by_timestep(&self) -> Vec<Vec<Event>> {
        let mut buckets = vec![Vec::new(); self.geometry.timesteps as usize];
        for e in self.events.iter().filter(|e| e.is_spike()) {
            buckets[e.t as usize].push(*e);
        }
        buckets
    }

    /// Builds the full operation sequence the SNE consumes for this stream:
    /// one `RST_OP`, then for each timestep its spikes followed by one
    /// `FIRE_OP` (paper §III-C / Fig. 3).
    #[must_use]
    pub fn to_op_sequence(&self) -> Vec<Event> {
        self.op_sequence(true)
    }

    /// Builds the operation sequence of a *continuation* chunk: the same as
    /// [`EventStream::to_op_sequence`] but without the leading `RST_OP`, so
    /// neuron state carried over from the previous chunk of a continuous
    /// feed survives (the streaming mode of the `sne` crate's
    /// `InferenceSession`).
    #[must_use]
    pub fn to_op_sequence_continuing(&self) -> Vec<Event> {
        self.op_sequence(false)
    }

    /// [`EventStream::to_op_sequence`] into a caller-provided buffer
    /// (cleared first, capacity kept): the allocation-free form for hot
    /// paths that build an op sequence per chunk.
    pub fn to_op_sequence_into(&self, out: &mut Vec<Event>) {
        self.op_sequence_into(true, out);
    }

    /// [`EventStream::to_op_sequence_continuing`] into a caller-provided
    /// buffer (cleared first, capacity kept).
    pub fn to_op_sequence_continuing_into(&self, out: &mut Vec<Event>) {
        self.op_sequence_into(false, out);
    }

    fn op_sequence(&self, reset: bool) -> Vec<Event> {
        let mut ops = Vec::new();
        self.op_sequence_into(reset, &mut ops);
        ops
    }

    /// One counting-sort pass instead of per-timestep bucket vectors: count
    /// the spikes of each timestep, lay out `[spikes of t..., FIRE_OP(t)]`
    /// runs, then place each spike at its cursor. Stable (insertion order
    /// within a timestep), identical output to the bucketed formulation.
    fn op_sequence_into(&self, reset: bool, out: &mut Vec<Event>) {
        let timesteps = self.geometry.timesteps as usize;
        let mut cursors = vec![0usize; timesteps];
        let mut spikes = 0usize;
        for e in self.events.iter().filter(|e| e.is_spike()) {
            cursors[e.t as usize] += 1;
            spikes += 1;
        }
        let lead = usize::from(reset);
        out.clear();
        out.resize(lead + spikes + timesteps, Event::fire(0));
        if reset {
            out[0] = Event::reset(0);
        }
        let mut at = lead;
        for (t, cursor) in cursors.iter_mut().enumerate() {
            let here = *cursor;
            *cursor = at;
            at += here + 1;
            out[at - 1] = Event::fire(t as u32);
        }
        for e in self.events.iter().filter(|e| e.is_spike()) {
            out[cursors[e.t as usize]] = *e;
            cursors[e.t as usize] += 1;
        }
    }

    /// Merges another stream into this one (the other stream must share the
    /// same geometry); the result is re-sorted by time.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::EmptyGeometry`] if the geometries differ, since a
    /// merged stream with mismatched geometry would be meaningless.
    pub fn merge(&mut self, other: &EventStream) -> Result<(), EventError> {
        if self.geometry != other.geometry {
            return Err(EventError::EmptyGeometry);
        }
        self.events.extend_from_slice(&other.events);
        self.sort_by_time();
        Ok(())
    }

    /// Restricts the stream to the half-open timestep window `[start, end)`,
    /// rebasing timestamps so the window starts at 0.
    #[must_use]
    pub fn window(&self, start: u32, end: u32) -> EventStream {
        let end = end.min(self.geometry.timesteps);
        let timesteps = end.saturating_sub(start).max(1);
        let geometry = Geometry {
            timesteps,
            ..self.geometry
        };
        let mut out = EventStream::with_geometry(geometry);
        for e in &self.events {
            if e.t >= start && e.t < end {
                out.events.push(Event {
                    t: e.t - start,
                    ..*e
                });
            }
        }
        out
    }

    /// Splits the stream into consecutive time windows of `chunk_timesteps`
    /// timesteps each (the last chunk may be shorter), with timestamps
    /// rebased so every chunk starts at 0 — the shape a chunked DVS feed
    /// arrives in when it is `push`ed through a persistent inference session.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_timesteps` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use sne_event::{Event, EventStream};
    ///
    /// let mut stream = EventStream::new(8, 8, 2, 10);
    /// stream.push(Event::update(7, 0, 1, 1))?;
    /// let chunks: Vec<_> = stream.chunks(4).collect();
    /// assert_eq!(chunks.len(), 3); // 4 + 4 + 2 timesteps
    /// assert_eq!(chunks[2].geometry().timesteps, 2);
    /// assert_eq!(chunks[1].as_slice()[0].t, 3); // rebased from t=7
    /// # Ok::<(), sne_event::EventError>(())
    /// ```
    #[must_use]
    pub fn chunks(&self, chunk_timesteps: u32) -> Chunks<'_> {
        assert!(chunk_timesteps > 0, "chunk length must be non-zero");
        Chunks {
            stream: self,
            chunk_timesteps,
            next_start: 0,
        }
    }

    /// Downscales the spatial resolution by an integer factor, merging events
    /// that land on the same coarse pixel within the same timestep.
    #[must_use]
    pub fn downscale(&self, factor: u16) -> EventStream {
        let factor = factor.max(1);
        let geometry = Geometry {
            width: (self.geometry.width / factor).max(1),
            height: (self.geometry.height / factor).max(1),
            ..self.geometry
        };
        let mut out = EventStream::with_geometry(geometry);
        let mut seen = std::collections::HashSet::new();
        for e in &self.events {
            if !e.is_spike() {
                out.events.push(*e);
                continue;
            }
            let x = (e.x / factor).min(geometry.width - 1);
            let y = (e.y / factor).min(geometry.height - 1);
            if seen.insert((e.t, e.ch, x, y)) {
                out.events.push(Event { x, y, ..*e });
            }
        }
        out
    }
}

/// Iterator over consecutive time windows of a stream, created by
/// [`EventStream::chunks`].
#[derive(Debug, Clone)]
pub struct Chunks<'a> {
    stream: &'a EventStream,
    chunk_timesteps: u32,
    next_start: u32,
}

impl Iterator for Chunks<'_> {
    type Item = EventStream;

    fn next(&mut self) -> Option<EventStream> {
        let total = self.stream.geometry.timesteps;
        if self.next_start >= total {
            return None;
        }
        let start = self.next_start;
        let end = total.min(start.saturating_add(self.chunk_timesteps));
        self.next_start = end;
        Some(self.stream.window(start, end))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .stream
            .geometry
            .timesteps
            .saturating_sub(self.next_start)
            .div_ceil(self.chunk_timesteps) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Chunks<'_> {}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for EventStream {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl Extend<Event> for EventStream {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventOp;

    fn stream() -> EventStream {
        EventStream::new(8, 8, 2, 10)
    }

    #[test]
    fn geometry_rejects_zero_dimensions() {
        assert!(Geometry::new(0, 8, 2, 10).is_err());
        assert!(Geometry::new(8, 0, 2, 10).is_err());
        assert!(Geometry::new(8, 8, 0, 10).is_err());
        assert!(Geometry::new(8, 8, 2, 0).is_err());
    }

    #[test]
    fn geometry_volume_is_product_of_dimensions() {
        let g = Geometry::new(8, 4, 2, 10).unwrap();
        assert_eq!(g.spatial_size(), 32);
        assert_eq!(g.frame_size(), 64);
        assert_eq!(g.volume(), 640);
    }

    #[test]
    fn push_validates_coordinates() {
        let mut s = stream();
        assert!(s.push(Event::update(0, 0, 7, 7)).is_ok());
        assert!(s.push(Event::update(0, 0, 8, 0)).is_err());
        assert!(s.push(Event::update(0, 2, 0, 0)).is_err());
        assert!(s.push(Event::update(10, 0, 0, 0)).is_err());
    }

    #[test]
    fn reset_and_fire_skip_spatial_validation() {
        let mut s = stream();
        assert!(s.push(Event::reset(0)).is_ok());
        assert!(s.push(Event::fire(9)).is_ok());
        assert!(s.push(Event::fire(10)).is_err());
    }

    #[test]
    fn activity_counts_only_spikes() {
        let mut s = stream();
        s.push(Event::reset(0)).unwrap();
        s.push(Event::update(0, 0, 1, 1)).unwrap();
        s.push(Event::update(1, 1, 2, 2)).unwrap();
        s.push(Event::fire(1)).unwrap();
        assert_eq!(s.spike_count(), 2);
        let expected = 2.0 / (8.0 * 8.0 * 2.0 * 10.0);
        assert!((s.activity() - expected).abs() < 1e-12);
    }

    #[test]
    fn time_ordering_detection_and_sort() {
        let mut s = stream();
        s.push(Event::update(5, 0, 0, 0)).unwrap();
        s.push(Event::update(2, 0, 0, 0)).unwrap();
        assert!(!s.is_time_ordered());
        s.sort_by_time();
        assert!(s.is_time_ordered());
    }

    #[test]
    fn op_sequence_starts_with_reset_and_has_fire_per_timestep() {
        let mut s = stream();
        s.push(Event::update(0, 0, 1, 1)).unwrap();
        s.push(Event::update(3, 0, 2, 2)).unwrap();
        let ops = s.to_op_sequence();
        assert_eq!(ops[0].op, EventOp::Reset);
        let fires = ops.iter().filter(|e| e.op == EventOp::Fire).count();
        assert_eq!(fires, 10);
        let spikes = ops.iter().filter(|e| e.is_spike()).count();
        assert_eq!(spikes, 2);
        // Spikes must precede the FIRE_OP of their own timestep.
        let fire_t0 = ops
            .iter()
            .position(|e| e.op == EventOp::Fire && e.t == 0)
            .unwrap();
        let spike_t0 = ops.iter().position(|e| e.is_spike() && e.t == 0).unwrap();
        assert!(spike_t0 < fire_t0);
    }

    #[test]
    fn continuing_op_sequence_has_no_reset() {
        let mut s = stream();
        s.push(Event::update(2, 0, 1, 1)).unwrap();
        let ops = s.to_op_sequence_continuing();
        assert!(ops.iter().all(|e| e.op != EventOp::Reset));
        assert_eq!(ops.len(), s.to_op_sequence().len() - 1);
        assert_eq!(
            ops.iter().filter(|e| e.op == EventOp::Fire).count(),
            s.geometry().timesteps as usize
        );
    }

    #[test]
    fn chunks_cover_the_stream_exactly() {
        let mut s = stream();
        for t in 0..10 {
            s.push(Event::update(t, 0, 1, 1)).unwrap();
        }
        let chunks: Vec<_> = s.chunks(3).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(
            chunks.iter().map(|c| c.geometry().timesteps).sum::<u32>(),
            10
        );
        assert_eq!(chunks[3].geometry().timesteps, 1);
        assert_eq!(chunks.iter().map(EventStream::len).sum::<usize>(), 10);
        // Every chunk is rebased to start at t=0.
        assert!(chunks.iter().all(|c| c.as_slice()[0].t == 0));
        // A chunk longer than the stream yields the stream itself.
        let whole: Vec<_> = s.chunks(64).collect();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0], s);
        assert_eq!(s.chunks(3).len(), 4);
    }

    #[test]
    #[should_panic(expected = "chunk length must be non-zero")]
    fn zero_chunk_length_panics() {
        let _ = stream().chunks(0);
    }

    #[test]
    fn window_rebases_time() {
        let mut s = stream();
        s.push(Event::update(4, 0, 1, 1)).unwrap();
        s.push(Event::update(7, 0, 1, 1)).unwrap();
        let w = s.window(4, 8);
        assert_eq!(w.geometry().timesteps, 4);
        assert_eq!(w.len(), 2);
        assert_eq!(w.as_slice()[0].t, 0);
        assert_eq!(w.as_slice()[1].t, 3);
    }

    #[test]
    fn merge_requires_identical_geometry() {
        let mut a = stream();
        let b = EventStream::new(16, 16, 2, 10);
        assert!(a.merge(&b).is_err());
        let mut c = stream();
        c.push(Event::update(1, 0, 0, 0)).unwrap();
        a.push(Event::update(3, 0, 0, 0)).unwrap();
        a.merge(&c).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.is_time_ordered());
    }

    #[test]
    fn downscale_merges_coincident_events() {
        let mut s = EventStream::new(8, 8, 1, 4);
        s.push(Event::update(0, 0, 0, 0)).unwrap();
        s.push(Event::update(0, 0, 1, 1)).unwrap(); // same coarse pixel as (0,0) at factor 2
        s.push(Event::update(0, 0, 4, 4)).unwrap();
        let d = s.downscale(2);
        assert_eq!(d.geometry().width, 4);
        assert_eq!(d.spike_count(), 2);
    }

    #[test]
    fn spikes_by_timestep_buckets_all_spikes() {
        let mut s = stream();
        s.push(Event::update(0, 0, 1, 1)).unwrap();
        s.push(Event::update(0, 1, 2, 2)).unwrap();
        s.push(Event::update(9, 0, 3, 3)).unwrap();
        let buckets = s.spikes_by_timestep();
        assert_eq!(buckets.len(), 10);
        assert_eq!(buckets[0].len(), 2);
        assert_eq!(buckets[9].len(), 1);
        assert!(buckets[5].is_empty());
    }

    #[test]
    fn extend_and_iterators_work() {
        let mut s = stream();
        s.extend([Event::update(0, 0, 1, 1), Event::update(1, 0, 2, 2)]);
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        assert_eq!(s.clone().into_iter().count(), 2);
        assert_eq!(s.into_events().len(), 2);
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating events and streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventError {
    /// The event's spatial coordinates fall outside the stream geometry.
    CoordinateOutOfRange {
        /// Horizontal coordinate of the offending event.
        x: u16,
        /// Vertical coordinate of the offending event.
        y: u16,
        /// Width of the feature map the event was pushed into.
        width: u16,
        /// Height of the feature map the event was pushed into.
        height: u16,
    },
    /// The event's channel index falls outside the stream geometry.
    ChannelOutOfRange {
        /// Channel index of the offending event.
        ch: u16,
        /// Number of channels of the feature map.
        channels: u16,
    },
    /// The event's timestamp falls outside the stream's time window.
    TimestampOutOfRange {
        /// Timestamp of the offending event.
        t: u32,
        /// Number of timesteps of the stream.
        timesteps: u32,
    },
    /// A field does not fit into the bit width allotted by an [`EventFormat`].
    ///
    /// [`EventFormat`]: crate::format::EventFormat
    FieldOverflow {
        /// Name of the overflowing field (`"op"`, `"t"`, `"ch"`, `"x"` or `"y"`).
        field: &'static str,
        /// Value that did not fit.
        value: u32,
        /// Number of bits available for the field.
        bits: u8,
    },
    /// The bit widths of an [`EventFormat`] do not sum to 32.
    ///
    /// [`EventFormat`]: crate::format::EventFormat
    InvalidFormat {
        /// Total number of bits requested by the format.
        total_bits: u8,
    },
    /// A packed word carries an operation code that is not defined.
    UnknownOpCode(u8),
    /// A stream geometry parameter is zero.
    EmptyGeometry,
    /// An underlying I/O operation failed while reading or writing AER data.
    ///
    /// Carries the source error's message (the enum is `Clone + Eq`, so the
    /// non-cloneable [`std::io::Error`] itself cannot be stored).
    Io(String),
    /// Serialized AER data (binary container or CSV) is malformed.
    Malformed(String),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CoordinateOutOfRange {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "event coordinate ({x}, {y}) outside feature map {width}x{height}"
            ),
            Self::ChannelOutOfRange { ch, channels } => {
                write!(f, "event channel {ch} outside {channels} channels")
            }
            Self::TimestampOutOfRange { t, timesteps } => {
                write!(f, "event timestamp {t} outside {timesteps} timesteps")
            }
            Self::FieldOverflow { field, value, bits } => {
                write!(
                    f,
                    "value {value} of field `{field}` does not fit in {bits} bits"
                )
            }
            Self::InvalidFormat { total_bits } => {
                write!(
                    f,
                    "event format bit widths sum to {total_bits}, expected 32"
                )
            }
            Self::UnknownOpCode(code) => write!(f, "unknown event operation code {code}"),
            Self::EmptyGeometry => write!(f, "stream geometry must be non-zero"),
            Self::Io(message) => write!(f, "aer i/o failed: {message}"),
            Self::Malformed(message) => write!(f, "malformed aer data: {message}"),
        }
    }
}

impl Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            EventError::CoordinateOutOfRange {
                x: 40,
                y: 2,
                width: 32,
                height: 32,
            },
            EventError::ChannelOutOfRange { ch: 3, channels: 2 },
            EventError::TimestampOutOfRange {
                t: 200,
                timesteps: 100,
            },
            EventError::FieldOverflow {
                field: "x",
                value: 300,
                bits: 8,
            },
            EventError::InvalidFormat { total_bits: 30 },
            EventError::UnknownOpCode(7),
            EventError::EmptyGeometry,
            EventError::Io("disk full".into()),
            EventError::Malformed("line 3: expected 5 fields".into()),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EventError>();
    }
}

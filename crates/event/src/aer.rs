//! Address-event-representation (AER) serialization.
//!
//! Event cameras and neuromorphic tool chains exchange recordings as AER
//! files: a flat sequence of fixed-size binary words, one per event. The SNE
//! stores events in memory in exactly this style (Fig. 1), so this module
//! provides a small codec between [`EventStream`]s and byte buffers /
//! `std::io` readers and writers, plus a human-readable CSV form used by the
//! examples. The binary layout is little-endian: a 16-byte header
//! (`magic, width, height, channels, timesteps, count`) followed by one
//! packed 32-bit word per event.

use std::io::{Read, Write};

use crate::format::EventFormat;
use crate::stream::{EventStream, Geometry};
use crate::{Event, EventError};

/// Magic number identifying the binary AER container (`"SNEA"`).
pub const AER_MAGIC: u32 = 0x534E_4541;

/// Serializes a stream into the binary AER container.
///
/// # Errors
///
/// Returns an [`EventError`] if an event does not fit the 32-bit format;
/// I/O failures are propagated as [`EventError::Io`] carrying the source
/// error's message.
pub fn write_aer<W: Write>(
    stream: &EventStream,
    format: &EventFormat,
    writer: &mut W,
) -> Result<(), EventError> {
    let bytes = to_aer_bytes(stream, format)?;
    writer
        .write_all(&bytes)
        .map_err(|e| EventError::Io(e.to_string()))?;
    Ok(())
}

/// Serializes a stream into an in-memory AER byte buffer.
///
/// # Errors
///
/// Returns an [`EventError`] if an event does not fit the 32-bit format.
pub fn to_aer_bytes(stream: &EventStream, format: &EventFormat) -> Result<Vec<u8>, EventError> {
    let g = stream.geometry();
    let mut bytes = Vec::with_capacity(16 + stream.len() * 4);
    bytes.extend_from_slice(&AER_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&g.width.to_le_bytes());
    bytes.extend_from_slice(&g.height.to_le_bytes());
    bytes.extend_from_slice(&g.channels.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 2]); // padding
    bytes.extend_from_slice(&g.timesteps.to_le_bytes());
    bytes.extend_from_slice(&(stream.len() as u32).to_le_bytes());
    for event in stream.iter() {
        bytes.extend_from_slice(&format.pack(event)?.raw().to_le_bytes());
    }
    Ok(bytes)
}

/// Deserializes a stream from an AER byte buffer.
///
/// # Errors
///
/// Returns an [`EventError`] if the header is malformed, the magic number is
/// wrong, or a word cannot be decoded.
pub fn from_aer_bytes(bytes: &[u8], format: &EventFormat) -> Result<EventStream, EventError> {
    if bytes.len() < 20 {
        return Err(EventError::Malformed(format!(
            "buffer of {} bytes is shorter than the 20-byte header",
            bytes.len()
        )));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != AER_MAGIC {
        return Err(EventError::Malformed(format!(
            "bad magic 0x{magic:08x}, expected 0x{AER_MAGIC:08x}"
        )));
    }
    let width = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    let height = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    let channels = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
    let timesteps = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let geometry = Geometry::new(width, height, channels, timesteps)?;
    let mut stream = EventStream::with_geometry(geometry);
    let payload = &bytes[20..];
    if payload.len() < count * 4 {
        return Err(EventError::Malformed(format!(
            "payload truncated: header promises {count} events but only {} bytes follow",
            payload.len()
        )));
    }
    for i in 0..count {
        let word = u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        let event = format.unpack(crate::PackedEvent(word))?;
        stream.push(event)?;
    }
    Ok(stream)
}

/// Deserializes a stream from an AER reader.
///
/// # Errors
///
/// Same conditions as [`from_aer_bytes`]; I/O failures are propagated as
/// [`EventError::Io`].
pub fn read_aer<R: Read>(reader: &mut R, format: &EventFormat) -> Result<EventStream, EventError> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| EventError::Io(e.to_string()))?;
    from_aer_bytes(&bytes, format)
}

/// Renders a stream as CSV (`op,t,ch,x,y` per line) for quick inspection.
#[must_use]
pub fn to_csv(stream: &EventStream) -> String {
    let mut out = String::from("op,t,ch,x,y\n");
    for e in stream.iter() {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            e.op.code(),
            e.t,
            e.ch,
            e.x,
            e.y
        ));
    }
    out
}

/// Parses the CSV form produced by [`to_csv`].
///
/// # Errors
///
/// Returns an [`EventError`] if a line is malformed or an event falls outside
/// the given geometry.
pub fn from_csv(csv: &str, geometry: Geometry) -> Result<EventStream, EventError> {
    let mut stream = EventStream::with_geometry(geometry);
    for (i, line) in csv.lines().enumerate() {
        if i == 0 && line.starts_with("op,") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(EventError::Malformed(format!(
                "line {}: expected 5 fields, got {}",
                i + 1,
                fields.len()
            )));
        }
        let parse = |s: &str| {
            s.trim().parse::<u32>().map_err(|_| {
                EventError::Malformed(format!("line {}: {:?} is not a number", i + 1, s.trim()))
            })
        };
        let op = crate::EventOp::from_code(parse(fields[0])? as u8)?;
        let event = Event::new(
            op,
            parse(fields[1])?,
            parse(fields[2])? as u16,
            parse(fields[3])? as u16,
            parse(fields[4])? as u16,
        );
        stream.push(event)?;
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> EventStream {
        let mut s = EventStream::new(16, 16, 2, 32);
        s.push(Event::reset(0)).unwrap();
        for t in 0..10 {
            s.push(Event::update(
                t,
                (t % 2) as u16,
                (t % 16) as u16,
                ((t * 3) % 16) as u16,
            ))
            .unwrap();
            s.push(Event::fire(t)).unwrap();
        }
        s
    }

    #[test]
    fn binary_round_trip_preserves_the_stream() {
        let stream = sample_stream();
        let format = EventFormat::default();
        let bytes = to_aer_bytes(&stream, &format).unwrap();
        let back = from_aer_bytes(&bytes, &format).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn reader_writer_round_trip() {
        let stream = sample_stream();
        let format = EventFormat::default();
        let mut buffer = Vec::new();
        write_aer(&stream, &format, &mut buffer).unwrap();
        let back = read_aer(&mut buffer.as_slice(), &format).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let stream = sample_stream();
        let format = EventFormat::default();
        let mut bytes = to_aer_bytes(&stream, &format).unwrap();
        bytes[0] = 0;
        assert!(from_aer_bytes(&bytes, &format).is_err());
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let stream = sample_stream();
        let format = EventFormat::default();
        let bytes = to_aer_bytes(&stream, &format).unwrap();
        assert!(from_aer_bytes(&bytes[..10], &format).is_err());
        assert!(from_aer_bytes(&bytes[..bytes.len() - 4], &format).is_err());
    }

    #[test]
    fn csv_round_trip_preserves_the_stream() {
        let stream = sample_stream();
        let csv = to_csv(&stream);
        assert!(csv.starts_with("op,t,ch,x,y"));
        let back = from_csv(&csv, stream.geometry()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        let geometry = Geometry::new(8, 8, 1, 4).unwrap();
        assert!(from_csv("1,2,3\n", geometry).is_err());
        assert!(from_csv("op,t,ch,x,y\n1,notanumber,0,0,0\n", geometry).is_err());
        // Out-of-range coordinates are also rejected.
        assert!(from_csv("1,0,0,20,0\n", geometry).is_err());
    }

    #[test]
    fn parse_and_io_failures_name_the_cause() {
        let geometry = Geometry::new(8, 8, 1, 4).unwrap();
        match from_csv("1,notanumber,0,0,0\n", geometry) {
            Err(EventError::Malformed(msg)) => assert!(msg.contains("notanumber"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        match from_aer_bytes(&[0u8; 4], &EventFormat::default()) {
            Err(EventError::Malformed(msg)) => assert!(msg.contains("header"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }

        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        match write_aer(
            &sample_stream(),
            &EventFormat::default(),
            &mut FailingWriter,
        ) {
            Err(EventError::Io(msg)) => assert!(msg.contains("disk full"), "{msg}"),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn header_preserves_geometry() {
        let stream = EventStream::new(34, 34, 2, 300);
        let format = EventFormat::default();
        let bytes = to_aer_bytes(&stream, &format).unwrap();
        let back = from_aer_bytes(&bytes, &format).unwrap();
        assert_eq!(back.geometry(), stream.geometry());
        assert!(back.is_empty());
    }
}

//! Packing of events into the 32-bit memory word of Fig. 1.
//!
//! The paper stores events linearly in memory as 32-bit words partitioned
//! into a control field (the operation) and address/time fields. The exact
//! bit allocation is configurable in the RTL; the default chosen here
//! (`2 + 8 + 6 + 8 + 8 = 32` bits) covers the feature-map geometries used in
//! the evaluation (128×128 DVS-Gesture frames downscaled to 32×32, 34×34
//! NMNIST frames, up to 64 input channels, 256 timesteps).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Event, EventError, EventOp};

/// A 32-bit packed event word as stored in memory and moved by the streamers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedEvent(pub u32);

impl PackedEvent {
    /// Raw 32-bit word.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::LowerHex for PackedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PackedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for PackedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<PackedEvent> for u32 {
    fn from(value: PackedEvent) -> Self {
        value.0
    }
}

impl From<u32> for PackedEvent {
    fn from(value: u32) -> Self {
        PackedEvent(value)
    }
}

/// Bit allocation of the 32-bit event word (Fig. 1).
///
/// Fields are packed MSB-first in the order `op`, `t`, `ch`, `x`, `y`.
/// The widths must sum to exactly 32 bits.
///
/// # Example
///
/// ```
/// use sne_event::{Event, EventFormat};
///
/// let format = EventFormat::default();
/// let event = Event::update(12, 1, 30, 31);
/// let word = format.pack(&event)?;
/// assert_eq!(format.unpack(word)?, event);
/// # Ok::<(), sne_event::EventError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventFormat {
    op_bits: u8,
    t_bits: u8,
    ch_bits: u8,
    x_bits: u8,
    y_bits: u8,
}

impl Default for EventFormat {
    fn default() -> Self {
        // 2 op + 8 time + 6 channel + 8 x + 8 y = 32 bits.
        Self {
            op_bits: 2,
            t_bits: 8,
            ch_bits: 6,
            x_bits: 8,
            y_bits: 8,
        }
    }
}

impl EventFormat {
    /// Creates a format with explicit field widths.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidFormat`] if the widths do not sum to 32
    /// bits or any width is zero.
    pub fn new(
        op_bits: u8,
        t_bits: u8,
        ch_bits: u8,
        x_bits: u8,
        y_bits: u8,
    ) -> Result<Self, EventError> {
        let total = op_bits + t_bits + ch_bits + x_bits + y_bits;
        if total != 32 || [op_bits, t_bits, ch_bits, x_bits, y_bits].contains(&0) {
            return Err(EventError::InvalidFormat { total_bits: total });
        }
        Ok(Self {
            op_bits,
            t_bits,
            ch_bits,
            x_bits,
            y_bits,
        })
    }

    /// Format sized for large feature maps (fewer timestamp bits, wider
    /// addresses): `2 + 6 + 6 + 9 + 9`.
    ///
    /// # Errors
    ///
    /// Never fails; the widths are statically valid.
    pub fn wide_address() -> Result<Self, EventError> {
        Self::new(2, 6, 6, 9, 9)
    }

    /// Number of bits of the operation field.
    #[must_use]
    pub fn op_bits(&self) -> u8 {
        self.op_bits
    }

    /// Number of bits of the timestamp field.
    #[must_use]
    pub fn t_bits(&self) -> u8 {
        self.t_bits
    }

    /// Number of bits of the channel field.
    #[must_use]
    pub fn ch_bits(&self) -> u8 {
        self.ch_bits
    }

    /// Number of bits of the horizontal address field.
    #[must_use]
    pub fn x_bits(&self) -> u8 {
        self.x_bits
    }

    /// Number of bits of the vertical address field.
    #[must_use]
    pub fn y_bits(&self) -> u8 {
        self.y_bits
    }

    /// Largest timestamp representable by this format.
    #[must_use]
    pub fn max_timestamp(&self) -> u32 {
        mask(self.t_bits)
    }

    /// Largest channel index representable by this format.
    #[must_use]
    pub fn max_channel(&self) -> u16 {
        mask(self.ch_bits) as u16
    }

    /// Largest spatial coordinate representable by this format, as `(x, y)`.
    #[must_use]
    pub fn max_address(&self) -> (u16, u16) {
        (mask(self.x_bits) as u16, mask(self.y_bits) as u16)
    }

    /// Packs a logical event into a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::FieldOverflow`] if any field does not fit into
    /// its allotted width.
    pub fn pack(&self, event: &Event) -> Result<PackedEvent, EventError> {
        let op = u32::from(event.op.code());
        check_fit("op", op, self.op_bits)?;
        check_fit("t", event.t, self.t_bits)?;
        check_fit("ch", u32::from(event.ch), self.ch_bits)?;
        check_fit("x", u32::from(event.x), self.x_bits)?;
        check_fit("y", u32::from(event.y), self.y_bits)?;

        let mut word = 0u32;
        word = (word << self.op_bits) | op;
        word = (word << self.t_bits) | event.t;
        word = (word << self.ch_bits) | u32::from(event.ch);
        word = (word << self.x_bits) | u32::from(event.x);
        word = (word << self.y_bits) | u32::from(event.y);
        Ok(PackedEvent(word))
    }

    /// Unpacks a 32-bit word into a logical event.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownOpCode`] if the operation field carries a
    /// code that is not defined.
    pub fn unpack(&self, word: PackedEvent) -> Result<Event, EventError> {
        let mut raw = word.0;
        let y = (raw & mask(self.y_bits)) as u16;
        raw >>= self.y_bits;
        let x = (raw & mask(self.x_bits)) as u16;
        raw >>= self.x_bits;
        let ch = (raw & mask(self.ch_bits)) as u16;
        raw >>= self.ch_bits;
        let t = raw & mask(self.t_bits);
        raw >>= self.t_bits;
        let op = EventOp::from_code((raw & mask(self.op_bits)) as u8)?;
        Ok(Event { op, t, ch, x, y })
    }

    /// Packs a slice of events, stopping at the first failure.
    ///
    /// # Errors
    ///
    /// Propagates the first packing error encountered.
    pub fn pack_all(&self, events: &[Event]) -> Result<Vec<PackedEvent>, EventError> {
        events.iter().map(|e| self.pack(e)).collect()
    }

    /// Unpacks a slice of words, stopping at the first failure.
    ///
    /// # Errors
    ///
    /// Propagates the first unpacking error encountered.
    pub fn unpack_all(&self, words: &[PackedEvent]) -> Result<Vec<Event>, EventError> {
        words.iter().map(|w| self.unpack(*w)).collect()
    }
}

fn mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

fn check_fit(field: &'static str, value: u32, bits: u8) -> Result<(), EventError> {
    if value > mask(bits) {
        Err(EventError::FieldOverflow { field, value, bits })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_format_uses_all_32_bits() {
        let f = EventFormat::default();
        assert_eq!(
            f.op_bits() + f.t_bits() + f.ch_bits() + f.x_bits() + f.y_bits(),
            32
        );
    }

    #[test]
    fn invalid_width_sum_is_rejected() {
        assert!(matches!(
            EventFormat::new(2, 8, 6, 8, 4),
            Err(EventError::InvalidFormat { total_bits: 28 })
        ));
    }

    #[test]
    fn zero_width_field_is_rejected() {
        assert!(EventFormat::new(0, 10, 6, 8, 8).is_err());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let f = EventFormat::default();
        let events = [
            Event::update(0, 0, 0, 0),
            Event::update(255, 63, 255, 255),
            Event::reset(17),
            Event::fire(100),
        ];
        for e in events {
            assert_eq!(f.unpack(f.pack(&e).unwrap()).unwrap(), e);
        }
    }

    #[test]
    fn overflow_is_reported_with_field_name() {
        let f = EventFormat::default();
        let e = Event::update(300, 0, 0, 0);
        match f.pack(&e) {
            Err(EventError::FieldOverflow { field, value, bits }) => {
                assert_eq!(field, "t");
                assert_eq!(value, 300);
                assert_eq!(bits, 8);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn wide_address_format_accepts_512_wide_maps() {
        let f = EventFormat::wide_address().unwrap();
        let e = Event::update(63, 10, 511, 300);
        assert_eq!(f.unpack(f.pack(&e).unwrap()).unwrap(), e);
    }

    #[test]
    fn max_fields_match_bit_widths() {
        let f = EventFormat::default();
        assert_eq!(f.max_timestamp(), 255);
        assert_eq!(f.max_channel(), 63);
        assert_eq!(f.max_address(), (255, 255));
    }

    #[test]
    fn pack_all_propagates_errors() {
        let f = EventFormat::default();
        let events = [Event::update(0, 0, 0, 0), Event::update(0, 100, 0, 0)];
        assert!(f.pack_all(&events).is_err());
    }

    #[test]
    fn unknown_op_code_in_word_is_rejected() {
        let f = EventFormat::default();
        // Craft a word whose op field is 3 (undefined).
        let word = PackedEvent(0b11 << 30);
        assert_eq!(f.unpack(word), Err(EventError::UnknownOpCode(3)));
    }

    #[test]
    fn packed_event_converts_to_u32() {
        let w: u32 = PackedEvent(0xdead_beef).into();
        assert_eq!(w, 0xdead_beef);
        assert_eq!(PackedEvent::from(5u32).raw(), 5);
    }
}

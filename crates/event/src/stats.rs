//! Activity statistics of event streams.
//!
//! The paper's energy-proportionality claim is driven by the *input
//! activity*: the fraction of spatio-temporal positions that carry a spike.
//! The IBM DVS-Gesture samples exhibit 1.2 %–4.9 % activity (paper §IV-B),
//! which bounds the best-/worst-case inference time and energy.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::stream::EventStream;

/// Per-timestep and aggregate activity statistics of an [`EventStream`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStats {
    /// Number of spikes per timestep.
    pub spikes_per_timestep: Vec<usize>,
    /// Total number of spikes.
    pub total_spikes: usize,
    /// Mean activity (spikes / volume), in `[0, 1]`.
    pub mean_activity: f64,
    /// Maximum single-timestep activity (spikes in the timestep / frame size).
    pub peak_activity: f64,
    /// Number of timesteps without any spike.
    pub idle_timesteps: usize,
    /// Number of positions per timestep (`width * height * channels`).
    pub frame_size: usize,
}

impl ActivityStats {
    /// Computes statistics for a stream.
    #[must_use]
    pub fn from_stream(stream: &EventStream) -> Self {
        let geometry = stream.geometry();
        let frame_size = geometry.frame_size();
        let mut spikes_per_timestep = vec![0usize; geometry.timesteps as usize];
        for event in stream.iter().filter(|e| e.is_spike()) {
            spikes_per_timestep[event.t as usize] += 1;
        }
        let total_spikes: usize = spikes_per_timestep.iter().sum();
        let peak = spikes_per_timestep.iter().copied().max().unwrap_or(0);
        let idle_timesteps = spikes_per_timestep.iter().filter(|&&n| n == 0).count();
        Self {
            total_spikes,
            mean_activity: total_spikes as f64 / geometry.volume() as f64,
            peak_activity: peak as f64 / frame_size as f64,
            idle_timesteps,
            frame_size,
            spikes_per_timestep,
        }
    }

    /// Number of timesteps covered by the statistics.
    #[must_use]
    pub fn timesteps(&self) -> usize {
        self.spikes_per_timestep.len()
    }

    /// Fraction of timesteps that carry no spike at all. The SNE's
    /// time-of-last-update (TLU) mechanism skips membrane updates across such
    /// gaps (paper §III-D.4), so this fraction drives the TLU ablation.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        if self.spikes_per_timestep.is_empty() {
            0.0
        } else {
            self.idle_timesteps as f64 / self.spikes_per_timestep.len() as f64
        }
    }

    /// Mean number of spikes per timestep.
    #[must_use]
    pub fn mean_spikes_per_timestep(&self) -> f64 {
        if self.spikes_per_timestep.is_empty() {
            0.0
        } else {
            self.total_spikes as f64 / self.spikes_per_timestep.len() as f64
        }
    }
}

impl fmt::Display for ActivityStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spikes over {} timesteps (mean activity {:.2} %, peak {:.2} %, {:.0} % idle timesteps)",
            self.total_spikes,
            self.timesteps(),
            self.mean_activity * 100.0,
            self.peak_activity * 100.0,
            self.idle_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn stream_with_spikes(spikes: &[(u32, u16, u16, u16)]) -> EventStream {
        let mut s = EventStream::new(10, 10, 2, 20);
        for &(t, ch, x, y) in spikes {
            s.push(Event::update(t, ch, x, y)).unwrap();
        }
        s
    }

    #[test]
    fn empty_stream_has_zero_activity() {
        let s = EventStream::new(10, 10, 2, 20);
        let stats = s.stats();
        assert_eq!(stats.total_spikes, 0);
        assert_eq!(stats.mean_activity, 0.0);
        assert_eq!(stats.peak_activity, 0.0);
        assert_eq!(stats.idle_timesteps, 20);
        assert_eq!(stats.idle_fraction(), 1.0);
    }

    #[test]
    fn spikes_are_bucketed_per_timestep() {
        let s = stream_with_spikes(&[(0, 0, 1, 1), (0, 1, 2, 2), (5, 0, 3, 3)]);
        let stats = s.stats();
        assert_eq!(stats.spikes_per_timestep[0], 2);
        assert_eq!(stats.spikes_per_timestep[5], 1);
        assert_eq!(stats.total_spikes, 3);
        assert_eq!(stats.idle_timesteps, 18);
    }

    #[test]
    fn mean_activity_matches_stream_activity() {
        let s = stream_with_spikes(&[(0, 0, 1, 1), (3, 1, 2, 2)]);
        let stats = s.stats();
        assert!((stats.mean_activity - s.activity()).abs() < 1e-12);
    }

    #[test]
    fn peak_activity_uses_frame_size() {
        let s = stream_with_spikes(&[(0, 0, 1, 1), (0, 1, 2, 2)]);
        let stats = s.stats();
        // frame size = 10*10*2 = 200, two spikes at t=0.
        assert!((stats.peak_activity - 2.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn fire_and_reset_ops_do_not_count_as_spikes() {
        let mut s = EventStream::new(10, 10, 2, 20);
        s.push(Event::reset(0)).unwrap();
        s.push(Event::fire(5)).unwrap();
        assert_eq!(s.stats().total_spikes, 0);
    }

    #[test]
    fn display_is_human_readable() {
        let s = stream_with_spikes(&[(0, 0, 1, 1)]);
        let text = s.stats().to_string();
        assert!(text.contains("1 spikes"));
        assert!(text.contains("20 timesteps"));
    }

    #[test]
    fn mean_spikes_per_timestep() {
        let s = stream_with_spikes(&[(0, 0, 1, 1), (1, 0, 1, 1), (2, 0, 1, 1), (3, 0, 1, 1)]);
        assert!((s.stats().mean_spikes_per_timestep() - 0.2).abs() < 1e-12);
    }
}

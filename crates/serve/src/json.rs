//! A small hand-rolled JSON codec.
//!
//! The offline build policy (DESIGN.md §6) rules out pulling a JSON crate,
//! and the bench reports already hand-format their JSON output; this module
//! is the matching *parser* plus a value type, sized for the server's wire
//! format: objects, arrays, IEEE-754 numbers, strings with the standard
//! escapes, booleans and null.
//!
//! Numbers round-trip bit-exactly: serialization uses Rust's shortest-
//! roundtrip `f64` formatting and parsing goes through [`str::parse`], so
//! `Json::Num(x).to_string()` always parses back to exactly `x` for finite
//! `x`. That property is what lets the end-to-end tests compare served
//! energy/latency values *bit-identically* against direct session calls.

use std::fmt;

/// A parsed JSON value.
///
/// Object members keep their source order (lookup is linear — the server's
/// payloads have a handful of keys).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (IEEE-754 double).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source / insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`], with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Member of an object by key (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is a number with no
    /// fractional part representable in a `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(v) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip formatting: parses back bit-exactly.
                    write!(f, "{v}")
                } else {
                    // JSON has no Infinity/NaN literal.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (valid UTF-8 by construction —
            // the input is a `&str`).
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input was a valid &str"),
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-3.5", Json::Num(-3.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".to_owned())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            6.201211553756692,
            f64::MAX,
            f64::MIN_POSITIVE,
            -0.013251989090378051,
        ] {
            let text = Json::Num(v).to_string();
            assert_eq!(
                Json::parse(&text).unwrap().as_f64().unwrap().to_bits(),
                v.to_bits()
            );
        }
        // Non-finite values serialize as null (JSON has no literal for them).
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn objects_preserve_order_and_support_lookup() {
        let doc = Json::parse(r#"{"b": 1, "a": [2, {"c": null}], "s": "x"}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_u64), Some(1));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(2));
        assert_eq!(arr[1].get("c"), Some(&Json::Null));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        // Order preserved through a round trip.
        assert_eq!(doc.to_string(), r#"{"b":1,"a":[2,{"c":null}],"s":"x"}"#);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nquote\"slash\\tab\tunicode\u{263A}\u{8}";
        let encoded = Json::Str(original.to_owned()).to_string();
        assert_eq!(Json::parse(&encoded).unwrap().as_str().unwrap(), original);
        assert_eq!(
            Json::parse(r#""\u0041\u263A\uD83D\uDE00\/""#).unwrap(),
            Json::Str("A\u{263A}\u{1F600}/".to_owned())
        );
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\uD800\"",
            "\"\\q\"",
            "nan",
            "1e999",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
        assert_eq!(Json::from(7usize).as_u64(), Some(7));
        assert_eq!(Json::from(true).as_bool(), Some(true));
        assert_eq!(Json::from("s").as_str(), Some("s"));
    }
}

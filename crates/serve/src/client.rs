//! A tiny blocking HTTP client for the loopback tests, the `serve_report`
//! benchmark and the `serve_demo` example.
//!
//! Two flavors:
//!
//! - [`request`]/[`post`]/[`get`] — one request per connection
//!   (`Connection: close`, read to EOF). Simple, and still the right tool
//!   for one-shot probes.
//! - [`Connection`] — a persistent HTTP/1.1 keep-alive connection: many
//!   requests over one socket, responses framed by `Content-Length`, the
//!   last response's headers retained for inspection (`X-Request-Id`,
//!   `Retry-After`, ...). This is how a streaming client is meant to talk
//!   to the reactor: one connection for the whole chunk sequence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sne_event::EventStream;

/// Formats an event stream as the server's inference/push request body:
/// `{"model": ..., "timesteps": ..., "events": [[t, ch, x, y], ...]}`
/// (spike events only — exactly what the server decodes).
#[must_use]
pub fn infer_body(model: &str, stream: &EventStream) -> String {
    let events: Vec<String> = stream
        .iter()
        .filter(|e| e.is_spike())
        .map(|e| format!("[{},{},{},{}]", e.t, e.ch, e.x, e.y))
        .collect();
    format!(
        "{{\"model\":\"{model}\",\"timesteps\":{},\"events\":[{}]}}",
        stream.geometry().timesteps,
        events.join(",")
    )
}

fn invalid() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
}

/// Issues one request on a fresh connection and returns `(status, body)`.
///
/// # Errors
///
/// Propagates socket errors; a response without a valid status line or
/// header/body separator is reported as [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(invalid)?;
    let body = response.split_once("\r\n\r\n").ok_or_else(invalid)?.1;
    Ok((status, body.to_owned()))
}

/// `POST` with a JSON body on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// Bodyless `GET` on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

/// A persistent HTTP/1.1 keep-alive connection. Responses are framed by
/// `Content-Length`, so the socket stays open between requests; the
/// server parks it for the next one.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read past the previous response's end.
    buf: Vec<u8>,
    /// Headers of the most recent response, lower-cased names.
    last_headers: Vec<(String, String)>,
}

impl Connection {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            addr,
            buf: Vec::new(),
            last_headers: Vec::new(),
        })
    }

    /// Bounds how long [`Connection::request`] blocks on a read.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// A header from the most recent response (name matched
    /// case-insensitively), e.g. `X-Request-Id` or `Retry-After`.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.last_headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Issues one request on the persistent connection and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response is
    /// [`std::io::ErrorKind::InvalidData`]; a connection the server closed
    /// before the full response is [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        self.request_with_headers(method, path, body, &[])
    }

    /// Like [`Connection::request`] with extra request headers (e.g.
    /// `("X-Request-Id", "trace-42")`).
    ///
    /// # Errors
    ///
    /// Same as [`Connection::request`].
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<(u16, String)> {
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            self.addr,
            body.len(),
        );
        for (name, value) in headers {
            raw.push_str(name);
            raw.push_str(": ");
            raw.push_str(value);
            raw.push_str("\r\n");
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        self.stream.write_all(raw.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `POST` with a JSON body on the persistent connection.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::request`].
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Bodyless `GET` on the persistent connection.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut scratch = [0u8; 8192];
        let n = self.stream.read(&mut scratch)?;
        self.buf.extend_from_slice(&scratch[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        // Accumulate until the blank line terminating the header section.
        let head_end = loop {
            if let Some(pos) = find_blank_line(&self.buf) {
                break pos;
            }
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response headers",
                ));
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).map_err(|_| invalid())?;
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(invalid)?;
        self.last_headers = lines
            .filter_map(|line| {
                let (name, value) = line.split_once(':')?;
                Some((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
            })
            .collect();
        let content_length: usize = self
            .header("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(invalid)?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response body",
                ));
            }
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| invalid())?;
        self.buf.drain(..body_start + content_length);
        Ok((status, body))
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

//! A tiny blocking HTTP client for the loopback tests, the `serve_report`
//! benchmark and the `serve_demo` example.
//!
//! One request per connection, matching the server's `Connection: close`
//! policy: connect, send, read to EOF, split status from body.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sne_event::EventStream;

/// Formats an event stream as the server's inference/push request body:
/// `{"model": ..., "timesteps": ..., "events": [[t, ch, x, y], ...]}`
/// (spike events only — exactly what the server decodes).
#[must_use]
pub fn infer_body(model: &str, stream: &EventStream) -> String {
    let events: Vec<String> = stream
        .iter()
        .filter(|e| e.is_spike())
        .map(|e| format!("[{},{},{},{}]", e.t, e.ch, e.x, e.y))
        .collect();
    format!(
        "{{\"model\":\"{model}\",\"timesteps\":{},\"events\":[{}]}}",
        stream.geometry().timesteps,
        events.join(",")
    )
}

/// Issues one request and returns `(status, body)`.
///
/// # Errors
///
/// Propagates socket errors; a response without a valid status line or
/// header/body separator is reported as [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let invalid = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(invalid)?;
    let body = response.split_once("\r\n\r\n").ok_or_else(invalid)?.1;
    Ok((status, body.to_owned()))
}

/// `POST` with a JSON body.
///
/// # Errors
///
/// Same as [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// Bodyless `GET`.
///
/// # Errors
///
/// Same as [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

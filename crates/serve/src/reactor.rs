//! The event core of the serving front-end: a thin, std-only readiness
//! poller over the platform's `epoll(7)` (Linux) or `poll(2)` (other Unix),
//! a coarse timer wheel for per-connection deadlines, and a cross-thread
//! wake pipe.
//!
//! Each of the server's reactor shards multiplexes its connections through
//! its own [`Poller`] (one shard per core by default — DESIGN.md §15): tens
//! of thousands of parked keep-alive sessions cost nothing while idle
//! because the kernel only reports *ready* descriptors (epoll is O(ready),
//! not O(registered)). No `libc` crate is used — the shim declares
//! the handful of symbols it needs via `extern "C"`; std already links the
//! platform C library, so the declarations resolve against it. Raw-syscall
//! plumbing is deliberately out of scope.
//!
//! Deadlines (slow-loris eviction, keep-alive idle timeouts) live in a
//! [`TimerWheel`]: scheduling and expiry are O(1) per timer at a fixed tick
//! granularity, and stale entries are invalidated by generation counters
//! instead of being searched for and removed — re-arming a connection's
//! deadline is just "bump the generation, push a new entry".

use std::ffi::c_int;
use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// Readiness interest: which direction(s) of a descriptor the reactor wants
/// to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// Bytes (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
    /// Error/hang-up condition — the connection should be torn down after a
    /// final read drains whatever the peer left behind.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// Linux backend: epoll, O(ready) readiness.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{c_int, io, Interest, PollEvent, RawFd};

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` — the kernel packs it on x86-64 only (the
    /// `EPOLL_PACKED` attribute in the UAPI headers); every other Linux
    /// architecture uses the naturally aligned/padded C layout. The
    /// conditional mirrors the libc crate: packing unconditionally would
    /// shift the `data` offset and shrink the array stride on e.g. aarch64,
    /// corrupting tokens and overrunning the `epoll_wait` buffer.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // Layout guard: the kernel reads/writes exactly these sizes.
    #[cfg(target_arch = "x86_64")]
    const _: () = assert!(std::mem::size_of::<EpollEvent>() == 12);
    #[cfg(not(target_arch = "x86_64"))]
    const _: () = assert!(
        // events (4 bytes) + padding up to u64's alignment (>= 4 on every
        // Linux target) + data (8 bytes): 16 where u64 is 8-aligned, 12
        // where it is 4-aligned — exactly the kernel's unpacked layout.
        std::mem::size_of::<EpollEvent>()
            == std::mem::align_of::<u64>() + std::mem::size_of::<u64>()
    );

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Level-triggered epoll instance. Level-triggering keeps the contract
    /// simple for the connection state machines: interest is explicit, and a
    /// handler that could not finish draining a buffer is re-notified on the
    /// next wait instead of having to guarantee exhaustive reads.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 has no memory-safety preconditions.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent.
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<()> {
            events.clear();
            const MAX_EVENTS: usize = 256;
            let mut raw: [EpollEvent; MAX_EVENTS] =
                std::array::from_fn(|_| EpollEvent { events: 0, data: 0 });
            // Round a fractional-millisecond timeout up so a pending timer
            // cannot turn the wait into a sub-ms spin loop.
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) if t.is_zero() => 0,
                Some(t) => {
                    let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
                    c_int::try_from(ms).unwrap_or(c_int::MAX)
                }
            };
            // SAFETY: `raw` is a live buffer of MAX_EVENTS epoll_event slots.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for slot in raw.iter().take(n as usize) {
                let bits = slot.events;
                events.push(PollEvent {
                    token: slot.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix fallback: poll(2), O(registered) per wait.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{c_int, io, Interest, PollEvent, RawFd};
    use std::collections::HashMap;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// `poll(2)`-backed poller: a registry of descriptors rebuilt into a
    /// pollfd array per wait. O(n) per call, but portable — the Linux epoll
    /// backend is the production path.
    #[derive(Debug)]
    pub struct Poller {
        registry: HashMap<RawFd, (usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registry: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registry.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registry.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registry.remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .registry
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // Mirrors the epoll backend: zero means "return immediately"
            // (a timer tick is already due), and fractional milliseconds
            // round up so a pending timer cannot become a sub-ms spin loop.
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) if t.is_zero() => 0,
                Some(t) => {
                    let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
                    c_int::try_from(ms).unwrap_or(c_int::MAX)
                }
            };
            // SAFETY: `fds` is a live array of initialized pollfd entries.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for slot in &fds {
                if slot.revents == 0 {
                    continue;
                }
                let (token, _) = self.registry[&slot.fd];
                events.push(PollEvent {
                    token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The platform readiness poller (epoll on Linux, `poll(2)` elsewhere on
/// Unix). One instance per reactor thread; descriptors are identified by the
/// caller-chosen `token` echoed back in [`PollEvent`].
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A fresh poller instance.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's instance-creation failure.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::Poller::new()?,
        })
    }

    /// Starts watching `fd` for `interest`, tagging reports with `token`.
    ///
    /// # Errors
    ///
    /// Propagates the registration failure (e.g. fd limit).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes the interest (and token) of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the modification failure.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stops watching `fd`. Must be called before the descriptor is closed.
    ///
    /// # Errors
    ///
    /// Propagates the deregistration failure.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one descriptor is ready or `timeout` elapses
    /// (`None` = wait forever), filling `events` with the ready set.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures; `EINTR` is swallowed (empty event set).
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        self.inner.wait(events, timeout)
    }
}

// ---------------------------------------------------------------------------
// Wake pipe
// ---------------------------------------------------------------------------

/// A cross-thread wakeup for the reactor: scheduler worker threads finish a
/// job, enqueue the response bytes, and [`Waker::wake`] the reactor out of
/// its poll. Built on a nonblocking `UnixStream` pair — the read half is
/// registered with the [`Poller`] like any connection.
#[derive(Debug)]
pub struct WakePipe {
    read: std::os::unix::net::UnixStream,
    write: std::sync::Arc<std::os::unix::net::UnixStream>,
}

/// The sending half of a [`WakePipe`]; clonable and shareable across
/// threads.
#[derive(Debug, Clone)]
pub struct Waker {
    write: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    /// Wakes the reactor. A full pipe already guarantees a pending wakeup,
    /// so `WouldBlock` (and any other failure) is ignored.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.write).write(&[1]);
    }
}

impl WakePipe {
    /// A fresh pipe, both halves nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates socket-pair creation failures.
    pub fn new() -> io::Result<Self> {
        let (read, write) = std::os::unix::net::UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Self {
            read,
            write: std::sync::Arc::new(write),
        })
    }

    /// The raw fd to register with the poller (read interest).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        std::os::fd::AsRawFd::as_raw_fd(&self.read)
    }

    /// A sending handle for other threads.
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker {
            write: std::sync::Arc::clone(&self.write),
        }
    }

    /// Consumes every pending wake byte (level-triggered registration would
    /// otherwise re-report it forever).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// One armed deadline. `gen` is the owning connection's generation at arm
/// time: when the wheel reports the entry expired, the owner compares
/// generations and ignores stale entries — deadlines are never searched for
/// and removed, they just rot in place until their slot comes round.
#[derive(Debug, Clone, Copy)]
pub struct TimerEntry {
    /// Connection token the deadline belongs to.
    pub token: usize,
    /// The connection's deadline generation at scheduling time.
    pub gen: u64,
    /// The actual deadline (slot placement is coarse; expiry is exact).
    pub deadline: Instant,
}

/// A single-level coarse-grained timer wheel: `slots` buckets of
/// `granularity` each, a cursor sweeping them as time advances. Scheduling
/// is O(1); each tick drains one bucket. Deadlines beyond the horizon are
/// parked in the furthest bucket and re-scheduled when the cursor reaches
/// them, so any deadline is representable.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    granularity: Duration,
    /// Left edge of `slots[cursor]`'s time window.
    cursor_time: Instant,
    cursor: usize,
    armed: usize,
}

impl TimerWheel {
    /// A wheel covering `horizon` at `granularity` per slot (both floored to
    /// sane minimums).
    #[must_use]
    pub fn new(granularity: Duration, horizon: Duration) -> Self {
        let granularity = granularity.max(Duration::from_millis(1));
        let slots = (horizon.as_nanos() / granularity.as_nanos()).clamp(4, 1 << 16) as usize + 1;
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            cursor_time: Instant::now(),
            cursor: 0,
            armed: 0,
        }
    }

    /// Number of armed (possibly stale) entries.
    #[must_use]
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Arms a deadline for `token` at generation `gen`.
    pub fn schedule(&mut self, token: usize, gen: u64, deadline: Instant) {
        let entry = TimerEntry {
            token,
            gen,
            deadline,
        };
        let offset = deadline.saturating_duration_since(self.cursor_time);
        let ticks =
            (offset.as_nanos() / self.granularity.as_nanos()).min(self.slots.len() as u128 - 1);
        let index = (self.cursor + ticks as usize) % self.slots.len();
        self.slots[index].push(entry);
        self.armed += 1;
    }

    /// How long the reactor may sleep before the next armed deadline could
    /// fire (`None` when nothing is armed). Coarse: at most one granularity
    /// early, never late by more than one tick.
    #[must_use]
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let edge = self.cursor_time + self.granularity;
        Some(edge.saturating_duration_since(now))
    }

    /// Advances the cursor to `now`, appending every expired entry to
    /// `expired` (stale-generation filtering is the caller's job). Entries
    /// whose true deadline lies beyond the drained bucket (horizon overflow)
    /// are re-scheduled, not expired.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<TimerEntry>) {
        while self.cursor_time + self.granularity <= now {
            if self.armed == 0 {
                // Nothing armed anywhere: fast-forward instead of sweeping
                // empty buckets one tick at a time after a long quiet sleep.
                let behind = now.saturating_duration_since(self.cursor_time);
                let ticks = (behind.as_nanos() / self.granularity.as_nanos()) as usize;
                self.cursor = (self.cursor + ticks % self.slots.len()) % self.slots.len();
                self.cursor_time += self.granularity * ticks as u32;
                return;
            }
            let bucket = std::mem::take(&mut self.slots[self.cursor]);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time += self.granularity;
            for entry in bucket {
                self.armed -= 1;
                if entry.deadline <= now {
                    expired.push(entry);
                } else {
                    self.schedule(entry.token, entry.gen, entry.deadline);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_readable_after_write() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "nothing written yet");
        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut sink = [0u8; 4];
        let mut b_read = &b;
        assert_eq!(b_read.read(&mut sink).unwrap(), 1);
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_write_interest_and_modify() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(a.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        // Drop write interest: no more reports.
        poller.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn wake_pipe_round_trip() {
        let pipe = WakePipe::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(pipe.fd(), 0, Interest::READ).unwrap();
        let waker = pipe.waker();
        let handle = std::thread::spawn(move || waker.wake());
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        pipe.drain();
        handle.join().unwrap();
        // Drained: the level-triggered read interest goes quiet again.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timer_wheel_expires_in_order_and_respects_generations() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), Duration::from_secs(1));
        wheel.schedule(1, 0, start + Duration::from_millis(25));
        wheel.schedule(2, 3, start + Duration::from_millis(5));
        assert_eq!(wheel.armed(), 2);
        let mut expired = Vec::new();
        wheel.advance(start + Duration::from_millis(12), &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!((expired[0].token, expired[0].gen), (2, 3));
        expired.clear();
        wheel.advance(start + Duration::from_millis(40), &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].token, 1);
        assert_eq!(wheel.armed(), 0);
        assert!(wheel.next_timeout(start).is_none());
    }

    #[test]
    fn timer_wheel_reschedules_beyond_horizon() {
        let start = Instant::now();
        // 4-ish slots of 10 ms: a 200 ms deadline overflows the horizon.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), Duration::from_millis(40));
        wheel.schedule(9, 1, start + Duration::from_millis(200));
        let mut expired = Vec::new();
        wheel.advance(start + Duration::from_millis(100), &mut expired);
        assert!(expired.is_empty(), "deadline not reached yet");
        assert_eq!(wheel.armed(), 1, "overflowed entry re-parked");
        wheel.advance(start + Duration::from_millis(230), &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].token, 9);
    }

    #[test]
    fn timer_wheel_fast_forwards_when_empty() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(5), Duration::from_millis(100));
        let mut expired = Vec::new();
        // A long quiet gap with nothing armed must not sweep per-tick.
        wheel.advance(start + Duration::from_secs(30), &mut expired);
        assert!(expired.is_empty());
        wheel.schedule(
            3,
            0,
            start + Duration::from_secs(30) + Duration::from_millis(7),
        );
        wheel.advance(start + Duration::from_secs(31), &mut expired);
        assert_eq!(expired.len(), 1);
    }
}

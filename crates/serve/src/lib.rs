//! `sne_serve` — the HTTP serving front-end of the SNE reproduction.
//!
//! The paper's deployment story (§III-D.5: configure once, then stream
//! events continuously) is a long-lived service. This crate is that service,
//! built from the serving runtime's three tiers (DESIGN.md §10):
//!
//! 1. [`sne::artifact::RuntimeArtifact`] — one immutable compiled artifact
//!    per model, shared by every engine and client;
//! 2. [`sne::batch::EnginePool`] — a fleet of warm engines per model,
//!    checked out per request;
//! 3. this crate — a std-only HTTP/1.1 server (nonblocking sockets driven
//!    by a hand-rolled [`reactor`] — epoll on Linux, `poll(2)` elsewhere — a
//!    hand-rolled [`json`] codec, no new dependencies) exposing one-shot
//!    inference, session-keyed streaming whose neuron state survives between
//!    requests, HTTP/1.1 keep-alive with slow-loris read deadlines,
//!    per-model admission control with 429 load-shedding, request-id
//!    propagation, live latency/throughput/per-route stats, `GET /healthz`,
//!    and graceful shutdown that drains in-flight requests.
//!
//! With [`ServerBuilder::durable_store`] the session table grows a disk
//! tier (DESIGN.md §14): every push parks a versioned, digest-checked
//! snapshot in an `sne_store::SessionStore`, idle sessions are demoted to
//! disk instead of refused at capacity, and a restart — including after
//! `kill -9` — recovers every parked session bit-identically.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sne::compile::CompiledNetwork;
//! use sne_model::topology::Topology;
//! use sne_model::Shape;
//! use sne_serve::{client, ServerBuilder};
//! use sne_sim::{ExecStrategy, SneConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let network =
//!     CompiledNetwork::random(&Topology::tiny(Shape::new(2, 8, 8), 4, 3), &mut rng)?;
//! let server = ServerBuilder::new()
//!     .register("tiny", network, SneConfig::with_slices(2), 2, ExecStrategy::Sequential)?
//!     .start("127.0.0.1:0")?;
//!
//! let (status, body) = client::post(
//!     server.addr(),
//!     "/v1/infer",
//!     r#"{"model": "tiny", "timesteps": 4, "events": [[0, 0, 3, 4], [2, 1, 5, 1]]}"#,
//! )?;
//! assert_eq!(status, 200);
//! assert!(body.contains("predicted_class"));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod json;
pub mod reactor;
pub mod server;

pub use json::{Json, JsonError};
pub use server::{DurabilityStats, Server, ServerBuilder};
// The store's fsync policy is part of the builder surface
// ([`ServerBuilder::fsync_policy`]).
pub use sne_store::FsyncPolicy;

//! The serving front-end: sharded nonblocking reactors multiplexing every
//! connection, model registry, session table, admission control, stats,
//! graceful shutdown.
//!
//! ## Architecture (DESIGN.md §13, §15)
//!
//! N independent reactor shards (default one per core, see
//! [`ServerBuilder::reactor_shards`]) each own a [`Poller`] (epoll on
//! Linux), a token slab, and a timer wheel; inference never runs on them.
//! Shard 0 additionally owns the listener: it accepts and hands each fresh
//! socket to the least-loaded shard through that shard's handoff inbox +
//! waker (or adopts it itself). A connection lives its whole life on one
//! shard — keep-alive parking, streaming pushes, and deadlines never cross
//! reactors — while the session table stays global, so a session is still
//! reachable from any connection.
//!
//! A complete request is either answered inline (stats, health, session
//! close) or **dispatched**: admission-checked against a bounded in-flight
//! budget per model, then handed to the model's work-stealing [`Scheduler`]
//! via its nonblocking `call_async`/`call_push_async` entry points. The
//! serving worker thread finishes the inference and ships the **raw
//! result** onto its shard's completion queue (off-worker serialization:
//! JSON/HTTP rendering happens on the reactor at delivery time, so the
//! engine-holding thread returns to compute immediately), then wakes that
//! shard, which writes the response out with backpressure (partial writes
//! park the connection on write interest). Connections are HTTP/1.1
//! **keep-alive** by default, so a streaming client's chunk sequence reuses
//! one connection instead of paying connect + teardown per push; parked
//! idle connections cost nothing but their descriptor — the kernel only
//! reports ready ones.
//!
//! Deadlines live on each shard's timer wheel: a connection mid-request
//! must deliver the complete request within the read deadline (slow-loris
//! eviction with a best-effort 408), a parked keep-alive connection is
//! closed after the keep-alive timeout, and a partially flushed response
//! must make write progress within the read deadline (write-stall guard —
//! a peer that stops reading is reaped, not waited on). While a request is
//! dispatched no deadline runs — service time is the engine's business.
//!
//! Load shedding: once a model's in-flight budget is exhausted, new work is
//! answered `429 Too Many Requests` with a `Retry-After` header instead of
//! queueing without bound — the accept loop never stalls behind inference.
//!
//! ## Durability (DESIGN.md §14)
//!
//! With [`ServerBuilder::durable_store`] the session table becomes
//! two-tiered: **warm** sessions hold their neuron state in memory, and
//! every successful push also parks a versioned, digest-checked snapshot
//! of the advanced state in the store (write-ahead: journal append, tmp
//! write, rename). When the warm tier hits the configured capacity, the
//! least-recently-used parked session is demoted to the **cold** tier — a
//! map move, since its snapshot is already current on disk — instead of
//! refusing new sessions with 503. A push to a cold session faults it
//! back in (load, verify digests, restore, promote), bit-identically to a
//! session that never left memory. On start the store is scanned: torn or
//! corrupt snapshots and snapshots bound to an unregistered artifact are
//! discarded (counted, never resurrected), survivors are adopted into the
//! cold tier — a `kill -9` loses at most the push that was in flight.
//! Closing a session reclaims its disk snapshot in every tier, so a
//! closed id can never resurrect after a restart.
//!
//! Every response carries an `X-Request-Id` (echoed from the request when
//! the client sent one, generated otherwise); per-route counters and a ring
//! of recent request records are served from `GET /v1/stats`, and
//! `GET /healthz` answers from the reactor alone.
//!
//! ## Endpoints
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `POST /v1/infer` | `{"model","timesteps","events":[[t,ch,x,y],..]}` | one whole-sample inference |
//! | `POST /v1/stream/{id}/push` | same (`model` required on first push) | stream one chunk; neuron state survives between requests |
//! | `POST /v1/stream/{id}/close` | — | remove the session, return its accumulated summary |
//! | `GET /v1/stats` | — | throughput, latency percentiles, per-model and per-route counters |
//! | `GET /healthz` | — | liveness: `{"status":"ok",...}` |
//!
//! Errors are `{"error": "..."}` with 400 (bad request), 404 (unknown
//! model/session/route), 405 (wrong method), 408 (read deadline), 409
//! (session busy), 429 (shed) or 503 (capacity).
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] stops accepting, closes parked idle connections,
//! and drains every in-flight request — dispatched work completes and its
//! response is flushed before the reactor exits.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sne::artifact::{ClientState, RuntimeArtifact};
use sne::batch::{EnginePool, LatencyRecorder, LatencySummary, Scheduler};
use sne::compile::CompiledNetwork;
use sne::run::InferenceResult;
use sne::session::ChunkOutput;
use sne::SneError;
use sne_event::{Event, EventStream};
use sne_sim::{ExecStrategy, SneConfig};
use sne_store::{FsyncPolicy, Header, SessionStore};

use crate::http::{append_response, format_response, Request, RequestParser};
use crate::json::Json;
use crate::reactor::{Interest, PollEvent, Poller, TimerEntry, TimerWheel, WakePipe, Waker};

/// Upper bound on one request's timestep window. It bounds the per-timestep
/// bookkeeping (and engine loop) a single request can trigger — the
/// body-size cap alone would not, since `{"timesteps": 4294967295,
/// "events": []}` is a tiny body.
pub const MAX_REQUEST_TIMESTEPS: u64 = 1 << 16;

/// Default bound on concurrently warm (in-memory) streaming sessions
/// (override with [`ServerBuilder::session_capacity`]). Beyond it a new
/// session is refused with 503 — or, with a durable store configured, the
/// least-recently-used parked session is demoted to the disk tier instead.
pub const MAX_STREAM_SESSIONS: usize = 1024;

/// Default bound on concurrently open connections (override with
/// [`ServerBuilder::max_connections`]). A connection is one slab slot and
/// one descriptor — not a thread — so the reactor holds thousands of
/// parked keep-alive sessions comfortably; beyond the cap a fresh
/// connection is answered 503 and closed.
pub const MAX_CONNECTIONS: usize = 8192;

/// Default per-model admission budget: dispatched requests in flight
/// (queued + executing) before new ones are shed with 429 (override with
/// [`ServerBuilder::admission_limit`]).
pub const ADMISSION_LIMIT: usize = 256;

/// Cap on the automatic reactor-shard count ([`ServerBuilder::reactor_shards`]
/// left at the default, or set to 0): one event loop per core up to this
/// many — beyond ~8 shards the bound is engine lanes, not socket
/// multiplexing. An explicit count is honored up to [`MAX_REACTOR_SHARDS`].
pub const AUTO_REACTOR_SHARDS_CAP: usize = 8;

/// Hard bound on explicitly requested reactor shards (each shard is one
/// thread).
pub const MAX_REACTOR_SHARDS: usize = 64;

/// Entries kept in the recent-request ring served by `/v1/stats`.
const REQUEST_LOG_CAPACITY: usize = 64;

/// Extra time given to not-yet-parked connections at shutdown to deliver
/// their in-flight request before the reactor closes them.
const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Reactor read scratch size.
const SCRATCH_BYTES: usize = 16 * 1024;

/// Locks `m`, recovering the data if a previous holder panicked. Every
/// structure behind the server's mutexes is kept coherent across each
/// individual mutation (map insert/remove, queue push, ring rotation), so
/// a poisoned guard's contents are still usable — and a serving front-end
/// must keep answering after one panicked request rather than convert
/// every subsequent request into a cascading panic.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One registered model: its engine pool, the work-stealing scheduler
/// whose workers own the pool's engines, admission bookkeeping and request
/// counters.
#[derive(Debug)]
struct ModelEntry {
    pool: Arc<EnginePool>,
    scheduler: Scheduler,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Dispatched requests in flight (admission-queue occupancy).
    inflight: AtomicU64,
    /// Requests shed with 429 because the admission budget was exhausted.
    shed: AtomicU64,
}

/// One warm streaming session. `client` is `None` while a request is
/// in flight for it (concurrent pushes to the same session conflict).
/// `preferred_lane` remembers the engine that served the last chunk — the
/// affinity hint for the next one. `last_used` is the session table's
/// logical clock at the last touch, the LRU key for park-to-disk
/// demotion.
#[derive(Debug)]
struct StreamEntry {
    model: String,
    client: Option<ClientState>,
    preferred_lane: Option<usize>,
    last_used: u64,
}

/// The two-tier session table. `warm` sessions hold neuron state in
/// memory; `cold` sessions live only as store snapshots and keep just
/// their model's registry index here (populated by LRU demotion and boot
/// recovery — both require a durable store). `clock` is the logical LRU
/// counter bumped on every session touch.
#[derive(Debug, Default)]
struct SessionTable {
    warm: HashMap<String, StreamEntry>,
    cold: HashMap<String, usize>,
    clock: u64,
}

impl SessionTable {
    /// The least-recently-used warm session that is parked (no push in
    /// flight) — the only kind that can be demoted, since a parked
    /// session's snapshot is already current on disk.
    fn lru_parked(&self) -> Option<String> {
        self.warm
            .iter()
            .filter(|(_, e)| e.client.is_some())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(id, _)| id.clone())
    }
}

/// The disk tier behind the session table: the snapshot store plus the
/// durability counters surfaced by `/v1/stats`. Lock order: the session
/// table lock and the store lock are never held together except during
/// cold-session fault-in and demotion, where the table lock is taken
/// first.
#[derive(Debug)]
struct DurableTier {
    store: Mutex<SessionStore>,
    /// Warm sessions demoted to the disk tier by LRU eviction.
    parked_to_disk: AtomicU64,
    /// Cold sessions promoted back to memory by a push.
    faulted_in: AtomicU64,
    /// Snapshots adopted into the cold tier by the boot recovery scan.
    recovered_on_boot: AtomicU64,
    /// Snapshots discarded as torn, corrupt, or bound to an unregistered
    /// artifact (boot scan and runtime fault-in combined).
    corrupt_discarded: AtomicU64,
}

/// A point-in-time copy of the durability counters
/// ([`Server::durability`]; also under `"durability"` in `/v1/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Warm sessions demoted to the disk tier by LRU eviction.
    pub parked_to_disk: u64,
    /// Cold sessions promoted back to memory by a push.
    pub faulted_in: u64,
    /// Snapshots adopted into the cold tier by the boot recovery scan.
    pub recovered_on_boot: u64,
    /// Snapshots discarded as torn, corrupt, or bound to an unregistered
    /// artifact — sessions reported lost rather than resurrected wrong.
    pub corrupt_discarded: u64,
    /// Sessions currently parked on disk.
    pub cold_sessions: u64,
}

/// Per-route request/error counters (an error is any response ≥ 400).
#[derive(Debug, Default)]
struct RouteCounter {
    requests: AtomicU64,
    errors: AtomicU64,
}

impl RouteCounter {
    fn hit(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            (
                "requests",
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
        ])
    }
}

#[derive(Debug, Default)]
struct RouteCounters {
    infer: RouteCounter,
    stream_push: RouteCounter,
    stream_close: RouteCounter,
    stats: RouteCounter,
    healthz: RouteCounter,
    other: RouteCounter,
}

impl RouteCounters {
    fn counter(&self, route: &'static str) -> &RouteCounter {
        match route {
            "infer" => &self.infer,
            "stream_push" => &self.stream_push,
            "stream_close" => &self.stream_close,
            "stats" => &self.stats,
            "healthz" => &self.healthz,
            _ => &self.other,
        }
    }
}

/// One recent request, kept in a bounded ring for `/v1/stats` — the
/// request-id is how a latency record is tied back to a specific request.
#[derive(Debug, Clone)]
struct RequestLog {
    id: String,
    route: &'static str,
    status: u16,
    queue_us: f64,
    service_us: f64,
}

/// A finished request traveling from a scheduler worker thread back to its
/// connection's reactor shard: the **raw** inference output plus the
/// connection's identity (shard + token + generation — a recycled slot
/// fails the generation check and the response is dropped, never delivered
/// to a stranger). The worker ships data, not bytes: JSON/HTTP rendering
/// happens on the reactor at delivery time (off-worker serialization), so
/// the engine-holding thread takes its next job immediately.
#[derive(Debug)]
struct Completion {
    shard: usize,
    token: usize,
    gen: u64,
    route: &'static str,
    status: u16,
    request_id: String,
    keep_alive: bool,
    queue_us: f64,
    service_us: f64,
    body: ResponseBody,
}

/// What the reactor renders into the response body when it delivers a
/// [`Completion`].
#[derive(Debug)]
enum ResponseBody {
    /// Already-final JSON (error bodies — cheap to format anywhere).
    Ready(String),
    /// A one-shot inference result, rendered via [`result_members`].
    Infer {
        model: String,
        result: InferenceResult,
        lane: usize,
    },
    /// A streaming push's chunk output.
    Push {
        session: String,
        model: String,
        output: ChunkOutput,
        chunks_pushed: u64,
        lane: usize,
    },
}

impl ResponseBody {
    /// Renders the body JSON — on the reactor thread, never on an
    /// engine-holding worker.
    fn render(self, queue_us: f64, service_us: f64, request_id: &str) -> String {
        match self {
            Self::Ready(body) => body,
            Self::Infer {
                model,
                result,
                lane,
            } => {
                let mut members = result_members(&model, &result);
                members.push(("lane", Json::from(lane)));
                members.push(("queue_us", Json::from(queue_us)));
                members.push(("service_us", Json::from(service_us)));
                members.push(("request_id", Json::from(request_id)));
                Json::obj(members).to_string()
            }
            Self::Push {
                session,
                model,
                output,
                chunks_pushed,
                lane,
            } => {
                let ChunkOutput {
                    output,
                    stats,
                    start_timestep,
                    timesteps,
                } = output;
                Json::obj(vec![
                    ("session", Json::from(session.as_str())),
                    ("model", Json::from(model.as_str())),
                    ("start_timestep", Json::from(u64::from(start_timestep))),
                    ("timesteps", Json::from(u64::from(timesteps))),
                    ("chunks_pushed", Json::from(chunks_pushed)),
                    ("total_cycles", Json::from(stats.total_cycles)),
                    ("events", events_json(&output)),
                    ("lane", Json::from(lane)),
                    ("queue_us", Json::from(queue_us)),
                    ("service_us", Json::from(service_us)),
                    ("request_id", Json::from(request_id)),
                ])
                .to_string()
            }
        }
    }
}

/// One reactor shard's cross-thread surface: the completion queue its
/// workers' callbacks fill, the handoff inbox the acceptor shard feeds,
/// the waker that interrupts its poll, and the per-shard counters served
/// under `"shards"` in `/v1/stats`.
#[derive(Debug)]
struct ShardHandle {
    completions: Mutex<Vec<Completion>>,
    handoff: Mutex<Vec<TcpStream>>,
    waker: Waker,
    /// Connections ever placed on this shard.
    accepted: AtomicU64,
    /// Connections currently open on this shard. Counted from the moment
    /// the acceptor assigns the socket — before adoption — so a burst of
    /// accepts spreads by real load instead of piling onto a shard whose
    /// handoff wakeup has not run yet.
    open: AtomicUsize,
    /// Connections evicted by this shard's read-deadline timer.
    evictions: AtomicU64,
}

/// Tunables fixed at server start.
#[derive(Debug, Clone, Copy)]
struct ServerConfig {
    read_deadline: Duration,
    keepalive_timeout: Duration,
    max_connections: usize,
    admission_limit: usize,
    retry_after_s: u64,
    session_capacity: usize,
}

#[derive(Debug)]
struct ServerShared {
    /// Registration order preserved for `/v1/stats`.
    models: Vec<(String, ModelEntry)>,
    sessions: Mutex<SessionTable>,
    /// The park-to-disk tier; `None` runs the classic memory-only table.
    durable: Option<DurableTier>,
    recorder: LatencyRecorder,
    routes: RouteCounters,
    request_log: Mutex<std::collections::VecDeque<RequestLog>>,
    next_request_id: AtomicU64,
    started: Instant,
    shutting_down: AtomicBool,
    /// One handle per reactor shard; `Completion::shard` indexes here.
    shards: Vec<ShardHandle>,
    config: ServerConfig,
}

impl ServerShared {
    fn model_index(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|(n, _)| n == name)
    }

    fn log_request(
        &self,
        id: &str,
        route: &'static str,
        status: u16,
        queue_us: f64,
        service_us: f64,
    ) {
        self.routes.counter(route).hit(status);
        let mut log = lock_clean(&self.request_log);
        if log.len() == REQUEST_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(RequestLog {
            id: id.to_owned(),
            route,
            status,
            queue_us,
            service_us,
        });
    }

    /// Queues a finished response for its connection's shard and wakes that
    /// shard's reactor.
    fn complete(&self, completion: Completion) {
        let shard = &self.shards[completion.shard];
        lock_clean(&shard.completions).push(completion);
        shard.waker.wake();
    }

    /// Wakes every shard (the shutdown broadcast).
    fn wake_all(&self) {
        for shard in &self.shards {
            shard.waker.wake();
        }
    }

    /// Open connections over every shard (including parked keep-alive ones
    /// and handed-off sockets awaiting adoption).
    fn open_connections(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.open.load(Ordering::Relaxed))
            .sum()
    }

    /// Slow-loris evictions over every shard.
    fn evictions_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// A point-in-time copy of the durability counters, when a durable
    /// store is configured.
    fn durability_stats(&self) -> Option<DurabilityStats> {
        let tier = self.durable.as_ref()?;
        Some(DurabilityStats {
            parked_to_disk: tier.parked_to_disk.load(Ordering::Relaxed),
            faulted_in: tier.faulted_in.load(Ordering::Relaxed),
            recovered_on_boot: tier.recovered_on_boot.load(Ordering::Relaxed),
            corrupt_discarded: tier.corrupt_discarded.load(Ordering::Relaxed),
            cold_sessions: lock_clean(&self.sessions).cold.len() as u64,
        })
    }
}

/// Configures the models and limits a [`Server`] exposes, then starts it.
#[derive(Debug)]
pub struct ServerBuilder {
    models: Vec<(String, Arc<EnginePool>)>,
    config: ServerConfig,
    store_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
    /// Requested reactor shard count; 0 = automatic (one per core, capped
    /// at [`AUTO_REACTOR_SHARDS_CAP`]).
    shards: usize,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self {
            models: Vec::new(),
            config: ServerConfig {
                read_deadline: crate::http::READ_TIMEOUT,
                keepalive_timeout: crate::http::KEEPALIVE_TIMEOUT,
                max_connections: MAX_CONNECTIONS,
                admission_limit: ADMISSION_LIMIT,
                retry_after_s: 1,
                session_capacity: MAX_STREAM_SESSIONS,
            },
            store_dir: None,
            fsync: FsyncPolicy::default(),
            shards: 0,
        }
    }
}

impl ServerBuilder {
    /// An empty registry with default limits.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `network` under `config` and registers it as `name`, backed
    /// by a pool of `lanes` engines (`engine_exec` is each engine's
    /// per-slice fan-out). Registering the same name twice replaces the
    /// earlier pool.
    ///
    /// # Errors
    ///
    /// Propagates artifact/pool construction errors.
    pub fn register(
        self,
        name: &str,
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let pool = Arc::new(EnginePool::for_network(
            network,
            config,
            lanes,
            engine_exec,
        )?);
        Ok(self.register_pool(name, pool))
    }

    /// Registers an already-built engine pool as `name`. The pool's
    /// engines must not be checked out elsewhere when
    /// [`ServerBuilder::start`] runs: the model's scheduler workers check
    /// every engine out for the server's lifetime.
    #[must_use]
    pub fn register_pool(mut self, name: &str, pool: Arc<EnginePool>) -> Self {
        self.models.retain(|(n, _)| n != name);
        self.models.push((name.to_owned(), pool));
        self
    }

    /// Bound on how long a connection may take to deliver one complete
    /// request once its first byte arrived (the slow-loris guard; default
    /// [`crate::http::READ_TIMEOUT`]).
    #[must_use]
    pub fn read_deadline(mut self, deadline: Duration) -> Self {
        self.config.read_deadline = deadline;
        self
    }

    /// Bound on how long a parked keep-alive connection may idle between
    /// requests (default [`crate::http::KEEPALIVE_TIMEOUT`]).
    #[must_use]
    pub fn keepalive_timeout(mut self, timeout: Duration) -> Self {
        self.config.keepalive_timeout = timeout;
        self
    }

    /// Bound on concurrently open connections (default
    /// [`MAX_CONNECTIONS`]); beyond it fresh connections get 503.
    #[must_use]
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.config.max_connections = cap.max(1);
        self
    }

    /// Per-model admission budget: dispatched requests in flight before new
    /// ones are shed with 429 (default [`ADMISSION_LIMIT`]).
    #[must_use]
    pub fn admission_limit(mut self, limit: usize) -> Self {
        self.config.admission_limit = limit.max(1);
        self
    }

    /// `Retry-After` seconds advertised on shed (429) responses (default 1).
    #[must_use]
    pub fn retry_after_secs(mut self, seconds: u64) -> Self {
        self.config.retry_after_s = seconds;
        self
    }

    /// Bound on concurrently warm (in-memory) streaming sessions (default
    /// [`MAX_STREAM_SESSIONS`]). Beyond it a new session is refused with
    /// 503 — or, with [`ServerBuilder::durable_store`], the
    /// least-recently-used parked session is demoted to disk instead.
    #[must_use]
    pub fn session_capacity(mut self, cap: usize) -> Self {
        self.config.session_capacity = cap.max(1);
        self
    }

    /// Backs the session table with a durable snapshot store in `dir`
    /// (created if absent). Every successful push parks a digest-checked
    /// snapshot of the session there; [`ServerBuilder::start`] scans the
    /// directory and adopts surviving sessions into the cold tier, so
    /// parked sessions outlive a crash.
    #[must_use]
    pub fn durable_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Number of independent reactor shards (event-loop threads) the server
    /// runs. `0` — the default — selects one per available core, capped at
    /// [`AUTO_REACTOR_SHARDS_CAP`]; an explicit count is clamped to
    /// `1..=`[`MAX_REACTOR_SHARDS`]. Shard 0 owns the listener and hands
    /// each accepted socket to the least-loaded shard; a connection then
    /// lives its whole life on that shard (shard-sticky), so keep-alive and
    /// streaming state never migrate between reactors.
    #[must_use]
    pub fn reactor_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// How eagerly the store flushes snapshot and journal writes (default
    /// [`FsyncPolicy::Always`]). [`FsyncPolicy::Never`] trades the
    /// power-loss guarantee for write latency — crash-consistency against
    /// process death (`kill -9`) is retained either way, since the rename
    /// commit point is atomic regardless.
    #[must_use]
    pub fn fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts the reactor shards.
    ///
    /// # Errors
    ///
    /// Propagates bind/poller-creation/thread-spawn failures.
    pub fn start(self, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shard_count = match self.shards {
            0 => std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(AUTO_REACTOR_SHARDS_CAP),
            n => n.min(MAX_REACTOR_SHARDS),
        };
        let mut pipes = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            pipes.push((WakePipe::new()?, Poller::new()?));
        }
        let shards: Vec<ShardHandle> = pipes
            .iter()
            .map(|(pipe, _)| ShardHandle {
                completions: Mutex::new(Vec::new()),
                handoff: Mutex::new(Vec::new()),
                waker: pipe.waker(),
                accepted: AtomicU64::new(0),
                open: AtomicUsize::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        let config = self.config;
        let models: Vec<(String, ModelEntry)> = self
            .models
            .into_iter()
            .map(|(name, pool)| {
                // One worker per engine: the whole fleet serves. The
                // pool's engines must be free here (the scheduler's
                // workers check them out for the server's lifetime).
                let scheduler = Scheduler::new(Arc::clone(&pool), pool.lanes());
                (
                    name,
                    ModelEntry {
                        pool,
                        scheduler,
                        requests: AtomicU64::new(0),
                        errors: AtomicU64::new(0),
                        inflight: AtomicU64::new(0),
                        shed: AtomicU64::new(0),
                    },
                )
            })
            .collect();
        let mut table = SessionTable::default();
        let durable = match self.store_dir {
            None => None,
            Some(dir) => Some(recover_store(dir, self.fsync, &models, &mut table)?),
        };
        let shared = Arc::new(ServerShared {
            models,
            sessions: Mutex::new(table),
            durable,
            recorder: LatencyRecorder::new(),
            routes: RouteCounters::default(),
            request_log: Mutex::new(std::collections::VecDeque::new()),
            next_request_id: AtomicU64::new(1),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            shards,
            config,
        });
        let mut listener = Some(listener);
        let mut handles = Vec::with_capacity(shard_count);
        for (index, (pipe, poller)) in pipes.into_iter().enumerate() {
            // Shard 0 is the acceptor: it owns the listener and distributes
            // accepted sockets to the least-loaded shard.
            let shard_listener = if index == 0 { listener.take() } else { None };
            let reactor_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("sne-reactor-{index}"))
                .spawn(move || {
                    Reactor::new(index, shard_listener, pipe, poller, reactor_shared).run();
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the shards already running before reporting.
                    shared.shutting_down.store(true, Ordering::SeqCst);
                    shared.wake_all();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Server {
            addr,
            shared,
            reactor_handles: handles,
        })
    }
}

/// Opens the snapshot store and runs the boot-time crash-recovery scan:
/// torn `.tmp` orphans and snapshots that fail header, payload, or
/// artifact-digest verification are deleted and counted; survivors are
/// adopted into the cold tier bound to the registered model whose
/// [`RuntimeArtifact::state_digest`] matches the snapshot header. A
/// snapshot for a model that is no longer registered is a discard, not an
/// error — recovery must always get the server up.
fn recover_store(
    dir: PathBuf,
    fsync: FsyncPolicy,
    models: &[(String, ModelEntry)],
    table: &mut SessionTable,
) -> std::io::Result<DurableTier> {
    let mut store = SessionStore::open(dir, fsync)?;
    let digests: Vec<u64> = models
        .iter()
        .map(|(_, entry)| entry.pool.artifact().state_digest())
        .collect();
    let mut adopted: Vec<(String, usize)> = Vec::new();
    let report = store.recover(|id, bytes| {
        // O(1) header probe picks the candidate model; a full restore
        // then proves the payload decodes before the session is adopted.
        let Ok(header) = Header::parse(bytes) else {
            return false;
        };
        let Some(index) = digests.iter().position(|&d| d == header.artifact_digest) else {
            return false;
        };
        if models[index]
            .1
            .pool
            .artifact()
            .restore_client(bytes)
            .is_err()
        {
            return false;
        }
        adopted.push((id.to_owned(), index));
        true
    })?;
    for (id, index) in adopted {
        table.cold.insert(id, index);
    }
    Ok(DurableTier {
        store: Mutex::new(store),
        parked_to_disk: AtomicU64::new(0),
        faulted_in: AtomicU64::new(0),
        recovered_on_boot: AtomicU64::new(report.recovered.len() as u64),
        corrupt_discarded: AtomicU64::new(report.discarded),
    })
}

/// A running serving front-end. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting and drains in-flight requests.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    reactor_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// The bound address (with the resolved port when started on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of warm (in-memory) streaming sessions.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        lock_clean(&self.shared.sessions).warm.len()
    }

    /// Number of cold (parked-to-disk) streaming sessions.
    #[must_use]
    pub fn cold_sessions(&self) -> usize {
        lock_clean(&self.shared.sessions).cold.len()
    }

    /// Durability counters, when the server was started with
    /// [`ServerBuilder::durable_store`].
    #[must_use]
    pub fn durability(&self) -> Option<DurabilityStats> {
        self.shared.durability_stats()
    }

    /// Currently open connections (including parked keep-alive ones),
    /// summed over every reactor shard.
    #[must_use]
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections()
    }

    /// Number of reactor shards serving this server.
    #[must_use]
    pub fn reactor_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Graceful shutdown: stop accepting, close parked idle connections,
    /// then wait for every in-flight request to complete and flush its
    /// response. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.close_and_drain();
    }

    fn close_and_drain(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        for handle in self.reactor_handles.drain(..) {
            handle.join().expect("reactor thread panicked");
        }
        // Dropping `shared`'s last strong references later drains the
        // per-model schedulers (graceful drain-first worker shutdown).
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

const LISTENER_TOKEN: usize = usize::MAX;
const WAKE_TOKEN: usize = usize::MAX - 1;

/// One connection's state. The state machine is: read bytes → parser →
/// complete request → inline answer or dispatch → response bytes in `out` →
/// flushed → parked (keep-alive) or closed.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Slot generation at insert; completions and timers carrying an older
    /// generation are stale.
    gen: u64,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    /// Disposition once `out` is flushed.
    keep_alive_after: bool,
    /// A scheduler job is in flight for this connection.
    dispatched: bool,
    /// Peer half-closed its sending side (EOF seen).
    read_closed: bool,
    /// The read deadline armed when the current request's first byte
    /// arrived (false while parked between requests).
    request_started: bool,
    /// Requests completed on this connection.
    served: u64,
    /// Identity of the currently armed timer (0 = none); stale wheel
    /// entries fail this comparison and are ignored.
    arm_id: u64,
    /// Interest currently registered with the poller (None = deregistered).
    registered: Option<Interest>,
}

#[derive(Debug)]
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct Reactor {
    /// This reactor's index into [`ServerShared::shards`].
    shard: usize,
    /// `Some` only on the acceptor shard (shard 0).
    listener: Option<TcpListener>,
    wake: WakePipe,
    poller: Poller,
    shared: Arc<ServerShared>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    open: usize,
    wheel: TimerWheel,
    next_arm: u64,
    scratch: Vec<u8>,
    /// Rotating tiebreak for least-loaded accept placement: among equally
    /// loaded shards, placement cycles instead of piling onto the lowest
    /// index.
    accept_rr: usize,
}

impl Reactor {
    fn new(
        shard: usize,
        listener: Option<TcpListener>,
        wake: WakePipe,
        poller: Poller,
        shared: Arc<ServerShared>,
    ) -> Self {
        let config = shared.config;
        // Tick ≈ deadline/8 keeps eviction latency within ~12% of the
        // configured deadline while bounding wheel sweeps.
        let granularity =
            (config.read_deadline / 8).clamp(Duration::from_millis(5), Duration::from_millis(100));
        let horizon = config.read_deadline.max(config.keepalive_timeout);
        Self {
            shard,
            listener,
            wake,
            poller,
            shared,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            wheel: TimerWheel::new(granularity, horizon),
            next_arm: 0,
            scratch: vec![0u8; SCRATCH_BYTES],
            accept_rr: 0,
        }
    }

    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if self
                .poller
                .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .is_err()
            {
                return;
            }
        }
        if self
            .poller
            .register(self.wake.fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        let mut expired: Vec<TimerEntry> = Vec::new();
        let mut shutdown_seen = false;
        loop {
            let now = Instant::now();
            let timeout = self.wheel.next_timeout(now);
            if self.poller.wait(&mut events, timeout).is_err() {
                // Unrecoverable poller failure: tear everything down.
                break;
            }
            let drained_events = std::mem::take(&mut events);
            for event in &drained_events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.wake.drain(),
                    token => self.conn_ready(token, event),
                }
            }
            events = drained_events;
            self.adopt_handoffs();
            self.deliver_completions();
            let now = Instant::now();
            expired.clear();
            self.wheel.advance(now, &mut expired);
            for entry in &expired {
                self.timer_fired(entry);
            }
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                if !shutdown_seen {
                    shutdown_seen = true;
                    self.begin_shutdown();
                }
                if self.open == 0 {
                    break;
                }
            }
        }
        // A handed-off socket this shard never adopted still holds a slot
        // on the gauge; release it as the stream drops.
        let mut inbox = lock_clean(&self.shared.shards[self.shard].handoff);
        for stream in inbox.drain(..) {
            drop(stream);
            self.shared.shards[self.shard]
                .open
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Shutdown phase 1: stop accepting, close parked idle connections, and
    /// give not-yet-complete requests — and not-yet-drained responses — a
    /// short drain grace.
    fn begin_shutdown(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        let now = Instant::now();
        for token in 0..self.slots.len() {
            let Some(conn) = &self.slots[token].conn else {
                continue;
            };
            let mid_request = conn.parser.mid_request();
            let pending_out = conn.out_pos < conn.out.len();
            let parked_idle = !conn.dispatched && !mid_request && !pending_out && conn.served > 0;
            let silent_fresh = !conn.dispatched && !mid_request && conn.served == 0;
            if parked_idle {
                self.close_conn(token);
            } else if pending_out || silent_fresh || mid_request {
                // Connections still owed a request — or still owed response
                // bytes the peer has not drained — get a bounded grace; a
                // silent sender or stalled reader cannot stall shutdown
                // forever. (The write-stall guard armed when the flush
                // parked may be far out; this shortens it.) Dispatched
                // requests keep no deadline: their inference completes, and
                // the completion flush arms the drain-bounded guard above.
                let deadline = now + self.shared.config.read_deadline.min(SHUTDOWN_DRAIN_GRACE);
                self.arm_deadline(token, deadline);
            }
        }
    }

    // -- connection lifecycle ------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.place_connection(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failure (e.g. aborted handshake): keep
                // accepting.
                Err(_) => {}
            }
        }
    }

    /// Places a freshly accepted socket (acceptor shard only): global
    /// capacity check, then the least-loaded shard with a rotating
    /// tiebreak. The acceptor bumps the target's gauges *at placement* —
    /// not at adoption — so one accept burst spreads by real load instead
    /// of piling onto a shard whose handoff wakeup has not run yet.
    fn place_connection(&mut self, stream: TcpStream) {
        if self.shared.open_connections() >= self.shared.config.max_connections {
            // Best effort: tell the client why before dropping it. The
            // socket is fresh, so a single nonblocking write of ~150 bytes
            // either lands in the empty send buffer or is dropped.
            let _ = stream.set_nonblocking(true);
            let body = error_body("server at connection capacity");
            let response = format_response(503, &body, false, None, &[]);
            let mut stream = stream;
            let _ = stream.write(response.as_bytes());
            return;
        }
        let shards = &self.shared.shards;
        let n = shards.len();
        let start = self.accept_rr % n;
        let target = (0..n)
            .map(|offset| (start + offset) % n)
            .min_by_key(|&i| shards[i].open.load(Ordering::Relaxed))
            .unwrap_or(self.shard);
        self.accept_rr = (target + 1) % n;
        shards[target].open.fetch_add(1, Ordering::Relaxed);
        shards[target].accepted.fetch_add(1, Ordering::Relaxed);
        if target == self.shard {
            self.adopt_connection(stream);
        } else {
            lock_clean(&shards[target].handoff).push(stream);
            shards[target].waker.wake();
        }
    }

    /// Drains this shard's handoff inbox: sockets the acceptor assigned
    /// here. Their slot on the shard gauge is already counted.
    fn adopt_handoffs(&mut self) {
        let pending: Vec<TcpStream> =
            std::mem::take(&mut *lock_clean(&self.shared.shards[self.shard].handoff));
        for stream in pending {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                // Never served: release the assigned slot as the stream
                // drops.
                self.shared.shards[self.shard]
                    .open
                    .fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            self.adopt_connection(stream);
        }
    }

    /// Adopts a socket onto this shard: slab slot, poller registration, and
    /// the pre-first-byte keep-alive deadline. The shard gauge was bumped
    /// at placement; a socket that fails setup releases it.
    fn adopt_connection(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.shared.shards[self.shard]
                .open
                .fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot { gen: 0, conn: None });
            self.slots.len() - 1
        });
        let slot = &mut self.slots[token];
        slot.gen += 1;
        let conn = Conn {
            stream,
            gen: slot.gen,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            keep_alive_after: false,
            dispatched: false,
            read_closed: false,
            request_started: false,
            served: 0,
            arm_id: 0,
            registered: None,
        };
        slot.conn = Some(conn);
        self.open += 1;
        self.update_registration(token);
        // Pre-first-byte deadline: a connection that never sends a request
        // is reaped like an idle keep-alive one.
        let deadline = Instant::now() + self.shared.config.keepalive_timeout;
        self.arm_deadline(token, deadline);
    }

    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.slots[token].conn.take() else {
            return;
        };
        if conn.registered.is_some() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        drop(conn);
        self.free.push(token);
        self.open -= 1;
        self.shared.shards[self.shard]
            .open
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Syncs the poller registration with the connection's desired
    /// interest: read while the peer can still send, write while response
    /// bytes are pending, deregistered entirely when neither applies (e.g.
    /// half-closed and waiting on a dispatched completion).
    fn update_registration(&mut self, token: usize) {
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        let desired = Interest {
            readable: !conn.read_closed,
            writable: conn.out_pos < conn.out.len(),
        };
        let fd = conn.stream.as_raw_fd();
        match (conn.registered, desired.readable || desired.writable) {
            (None, true) if self.poller.register(fd, token, desired).is_ok() => {
                conn.registered = Some(desired);
            }
            (Some(current), true)
                if current != desired && self.poller.modify(fd, token, desired).is_ok() =>
            {
                conn.registered = Some(desired);
            }
            (Some(_), false) => {
                let _ = self.poller.deregister(fd);
                conn.registered = None;
            }
            _ => {}
        }
    }

    fn arm_deadline(&mut self, token: usize, deadline: Instant) {
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        self.next_arm += 1;
        conn.arm_id = self.next_arm;
        self.wheel.schedule(token, self.next_arm, deadline);
    }

    fn disarm_deadline(&mut self, token: usize) {
        if let Some(conn) = self.slots[token].conn.as_mut() {
            conn.arm_id = 0;
        }
    }

    fn timer_fired(&mut self, entry: &TimerEntry) {
        let Some(conn) = self
            .slots
            .get_mut(entry.token)
            .and_then(|s| s.conn.as_mut())
        else {
            return;
        };
        if conn.arm_id != entry.gen {
            return; // stale: the deadline was re-armed or the slot recycled
        }
        conn.arm_id = 0;
        if conn.dispatched {
            return; // no deadline governs a dispatched request
        }
        if conn.parser.mid_request() {
            // Slow-loris eviction: the request failed to arrive within the
            // read deadline. Best-effort 408, then close.
            self.shared.shards[self.shard]
                .evictions
                .fetch_add(1, Ordering::Relaxed);
            let body = error_body("request read deadline exceeded");
            let response = format_response(408, &body, false, None, &[]);
            let _ = conn.stream.write(response.as_bytes());
        }
        // Idle keep-alive expiry (or fresh-and-silent): close quietly.
        self.close_conn(entry.token);
    }

    // -- readiness handlers --------------------------------------------------

    fn conn_ready(&mut self, token: usize, event: &PollEvent) {
        if self
            .slots
            .get(token)
            .and_then(|s| s.conn.as_ref())
            .is_none()
        {
            return; // closed earlier this iteration
        }
        if event.readable || event.hangup {
            self.conn_readable(token);
        }
        if self.slots[token].conn.is_some() && event.writable {
            self.conn_writable(token);
        }
    }

    fn conn_readable(&mut self, token: usize) {
        loop {
            let Some(conn) = self.slots[token].conn.as_mut() else {
                return;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    let busy = conn.dispatched || conn.out_pos < conn.out.len();
                    if busy {
                        // Bytes before the previous response finished:
                        // pipelining, which this server strictly rejects.
                        self.close_conn(token);
                        return;
                    }
                    conn.parser.feed(&self.scratch[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.after_read(token);
    }

    fn after_read(&mut self, token: usize) {
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        let read_closed = conn.read_closed;
        if !conn.dispatched && conn.out_pos >= conn.out.len() {
            match conn.parser.try_take() {
                Err(message) => {
                    let body = error_body(message);
                    self.respond_inline(token, 400, body, false, None, &[]);
                    return;
                }
                Ok(Some(request)) => {
                    if self.slots[token]
                        .conn
                        .as_ref()
                        .is_some_and(|c| c.parser.buffered() > 0)
                    {
                        let body =
                            error_body("pipelined requests are not supported: await the response");
                        self.respond_inline(token, 400, body, false, None, &[]);
                        return;
                    }
                    if let Some(conn) = self.slots[token].conn.as_mut() {
                        conn.request_started = false;
                    }
                    self.disarm_deadline(token);
                    self.handle_request(token, request);
                    return;
                }
                Ok(None) => {
                    if conn.parser.mid_request() && !conn.request_started {
                        // First bytes of a new request: the read deadline
                        // starts now (replacing the idle keep-alive one).
                        conn.request_started = true;
                        let deadline = Instant::now() + self.shared.config.read_deadline;
                        self.arm_deadline(token, deadline);
                    }
                }
            }
        }
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        if read_closed {
            let idle = !conn.dispatched && conn.out_pos >= conn.out.len();
            if idle {
                // EOF with nothing owed (a half-open or fully closed peer
                // with no outstanding request): tear down. A mid-request
                // EOF can never complete either.
                self.close_conn(token);
                return;
            }
        }
        self.update_registration(token);
    }

    fn conn_writable(&mut self, token: usize) {
        self.flush_conn(token);
    }

    /// Writes pending response bytes; on full flush the connection parks
    /// (keep-alive) or closes.
    fn flush_conn(&mut self, token: usize) {
        loop {
            let Some(conn) = self.slots[token].conn.as_mut() else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.update_registration(token);
                    // Write-stall guard: a peer that stops reading its
                    // response must make progress within the read deadline
                    // (each successful partial write re-parks here and
                    // re-arms), else the connection is reaped — during
                    // shutdown within the shorter drain grace, so a stalled
                    // reader cannot hang the reactor join forever.
                    let mut bound = self.shared.config.read_deadline;
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        bound = bound.min(SHUTDOWN_DRAIN_GRACE);
                    }
                    self.arm_deadline(token, Instant::now() + bound);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        // Fully flushed.
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        conn.out.clear();
        conn.out_pos = 0;
        conn.served += 1;
        let shutting_down = self.shared.shutting_down.load(Ordering::SeqCst);
        if !conn.keep_alive_after || conn.read_closed || shutting_down {
            self.close_conn(token);
            return;
        }
        // Park: wait for the next request on this connection.
        conn.request_started = false;
        self.update_registration(token);
        let deadline = Instant::now() + self.shared.config.keepalive_timeout;
        self.arm_deadline(token, deadline);
    }

    /// Queues an inline response (no scheduler round trip) and tries to
    /// flush it immediately.
    fn respond_inline(
        &mut self,
        token: usize,
        status: u16,
        body: String,
        keep_alive: bool,
        request_id: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) {
        let Some(conn) = self.slots[token].conn.as_mut() else {
            return;
        };
        append_response(
            &mut conn.out,
            status,
            &body,
            keep_alive,
            request_id,
            extra_headers,
        );
        conn.keep_alive_after = keep_alive;
        self.flush_conn(token);
    }

    /// Delivers this shard's finished dispatches: renders each raw result
    /// into the connection's output buffer (the off-worker serialization
    /// boundary) and flushes.
    fn deliver_completions(&mut self) {
        let completions: Vec<Completion> = std::mem::take(&mut *lock_clean(
            &self.shared.shards[self.shard].completions,
        ));
        for completion in completions {
            // The request finished whether or not its connection survived:
            // count and log it either way.
            self.shared.log_request(
                &completion.request_id,
                completion.route,
                completion.status,
                completion.queue_us,
                completion.service_us,
            );
            let Some(conn) = self
                .slots
                .get_mut(completion.token)
                .and_then(|s| s.conn.as_mut())
            else {
                continue; // connection died while the job ran
            };
            if conn.gen != completion.gen {
                continue; // slot recycled: response belongs to a dead conn
            }
            conn.dispatched = false;
            let Completion {
                token,
                status,
                request_id,
                keep_alive,
                queue_us,
                service_us,
                body,
                ..
            } = completion;
            let body = body.render(queue_us, service_us, &request_id);
            append_response(
                &mut conn.out,
                status,
                &body,
                keep_alive,
                Some(&request_id),
                &[],
            );
            conn.keep_alive_after = keep_alive;
            self.flush_conn(token);
        }
    }

    // -- routing -------------------------------------------------------------

    fn handle_request(&mut self, token: usize, request: Request) {
        let shared = Arc::clone(&self.shared);
        let request_id = request.request_id.clone().unwrap_or_else(|| {
            format!(
                "sne-{:08x}",
                shared.next_request_id.fetch_add(1, Ordering::Relaxed)
            )
        });
        let gen = self.slots[token]
            .conn
            .as_ref()
            .map(|c| c.gen)
            .unwrap_or_default();
        match route(&shared, self.shard, token, gen, &request, &request_id) {
            RouteOutcome::Inline {
                route: route_tag,
                status,
                body,
                extra,
            } => {
                shared.log_request(&request_id, route_tag, status, 0.0, 0.0);
                let extra_refs: Vec<(&str, &str)> =
                    extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
                self.respond_inline(
                    token,
                    status,
                    body,
                    request.keep_alive,
                    Some(&request_id),
                    &extra_refs,
                );
            }
            RouteOutcome::Dispatched => {
                if let Some(conn) = self.slots[token].conn.as_mut() {
                    conn.dispatched = true;
                }
                self.update_registration(token);
            }
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::from(message))]).to_string()
}

enum RouteOutcome {
    Inline {
        route: &'static str,
        status: u16,
        body: String,
        extra: Vec<(&'static str, String)>,
    },
    Dispatched,
}

fn inline(route: &'static str, status: u16, body: String) -> RouteOutcome {
    RouteOutcome::Inline {
        route,
        status,
        body,
        extra: Vec::new(),
    }
}

fn route(
    shared: &Arc<ServerShared>,
    shard: usize,
    token: usize,
    gen: u64,
    request: &Request,
    request_id: &str,
) -> RouteOutcome {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/infer") => handle_infer(shared, shard, token, gen, request, request_id),
        ("GET", "/v1/stats") => inline("stats", 200, stats_body(shared)),
        ("GET", "/healthz") => inline("healthz", 200, healthz_body(shared)),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/stream/") {
                if method != "POST" {
                    return inline(
                        "stream_push",
                        405,
                        error_body("streaming endpoints are POST"),
                    );
                }
                if let Some(id) = rest.strip_suffix("/push") {
                    return handle_stream_push(shared, shard, token, gen, id, request, request_id);
                }
                if let Some(id) = rest.strip_suffix("/close") {
                    let (status, body) = handle_stream_close(shared, id);
                    return inline("stream_close", status, body);
                }
            }
            inline("other", 404, error_body("unknown route"))
        }
    }
}

/// Decodes `{"timesteps": T, "events": [[t, ch, x, y], ...]}` into an
/// [`EventStream`] with the model's input geometry, validating every event
/// against it.
fn parse_event_stream(doc: &Json, artifact: &RuntimeArtifact) -> Result<EventStream, String> {
    let timesteps = doc
        .get("timesteps")
        .and_then(Json::as_u64)
        .filter(|&t| (1..=MAX_REQUEST_TIMESTEPS).contains(&t))
        .ok_or("missing or invalid 'timesteps' (must be 1..=65536)")? as u32;
    let (channels, height, width) = artifact.network().input_shape();
    let mut stream = EventStream::new(width, height, channels, timesteps);
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing 'events' array")?;
    for event in events {
        let fields = event
            .as_array()
            .filter(|f| f.len() == 4)
            .ok_or("each event must be a [t, ch, x, y] quadruple")?;
        let int = |i: usize| fields[i].as_u64().ok_or("event fields must be integers");
        let t = u32::try_from(int(0)?).map_err(|_| "event timestep out of range")?;
        let narrow = |v: u64| u16::try_from(v).map_err(|_| "event address out of range");
        let event = Event::update(t, narrow(int(1)?)?, narrow(int(2)?)?, narrow(int(3)?)?);
        stream
            .push(event)
            .map_err(|e| format!("invalid event: {e}"))?;
    }
    Ok(stream)
}

/// Serializes the spike events of a stream as `[[t, ch, x, y], ...]`.
fn events_json(stream: &EventStream) -> Json {
    Json::Arr(
        stream
            .iter()
            .filter(|e| e.is_spike())
            .map(|e| {
                Json::Arr(vec![
                    Json::from(u64::from(e.t)),
                    Json::from(u64::from(e.ch)),
                    Json::from(u64::from(e.x)),
                    Json::from(u64::from(e.y)),
                ])
            })
            .collect(),
    )
}

/// The response body shared by one-shot inference and stream close: the
/// model name plus the full [`InferenceResult`] surface the tests compare
/// bit-exactly against direct session calls.
fn result_members(model: &str, result: &InferenceResult) -> Vec<(&'static str, Json)> {
    vec![
        ("model", Json::from(model)),
        ("predicted_class", Json::from(result.predicted_class)),
        (
            "output_spike_counts",
            Json::Arr(
                result
                    .output_spike_counts
                    .iter()
                    .map(|&c| Json::from(u64::from(c)))
                    .collect(),
            ),
        ),
        ("total_cycles", Json::from(result.stats.total_cycles)),
        ("synaptic_ops", Json::from(result.stats.synaptic_ops)),
        ("energy_uj", Json::from(result.energy.energy_uj)),
        ("inference_time_ms", Json::from(result.inference_time_ms)),
        ("inference_rate", Json::from(result.inference_rate)),
        ("mean_activity", Json::from(result.mean_activity)),
    ]
}

/// The 429 produced when a model's admission budget is exhausted. A
/// dedicated type (rather than a pre-built [`RouteOutcome`]) so callers are
/// forced through [`Shed::into_outcome`] — every `Err` path visibly settles
/// its taken session state before converting to a response.
struct Shed {
    body: String,
    retry_after: String,
}

impl Shed {
    fn into_outcome(self, route: &'static str) -> RouteOutcome {
        RouteOutcome::Inline {
            route,
            status: 429,
            body: self.body,
            extra: vec![("Retry-After", self.retry_after)],
        }
    }
}

/// Admission check: claims one in-flight slot of `entry`'s budget, or
/// produces the 429 shed response.
fn admit(shared: &ServerShared, entry: &ModelEntry) -> Result<(), Shed> {
    let limit = shared.config.admission_limit as u64;
    // fetch_add then correct: contention-free fast path, and the transient
    // overshoot is invisible (the slot is released before the 429 returns).
    let occupied = entry.inflight.fetch_add(1, Ordering::AcqRel);
    if occupied >= limit {
        entry.inflight.fetch_sub(1, Ordering::AcqRel);
        entry.shed.fetch_add(1, Ordering::Relaxed);
        return Err(Shed {
            body: error_body("admission queue full: retry later"),
            retry_after: shared.config.retry_after_s.to_string(),
        });
    }
    Ok(())
}

fn handle_infer(
    shared: &Arc<ServerShared>,
    shard: usize,
    token: usize,
    gen: u64,
    request: &Request,
    request_id: &str,
) -> RouteOutcome {
    let doc = match Json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return inline("infer", 400, error_body(&e.to_string())),
    };
    let Some(model_name) = doc.get("model").and_then(Json::as_str) else {
        return inline("infer", 400, error_body("missing 'model'"));
    };
    let Some(index) = shared.model_index(model_name) else {
        return inline("infer", 404, error_body("unknown model"));
    };
    let entry = &shared.models[index].1;
    entry.requests.fetch_add(1, Ordering::Relaxed);
    let stream = match parse_event_stream(&doc, entry.pool.artifact()) {
        Ok(stream) => stream,
        Err(message) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            return inline("infer", 400, error_body(&message));
        }
    };
    if let Err(shed) = admit(shared, entry) {
        entry.errors.fetch_add(1, Ordering::Relaxed);
        return shed.into_outcome("infer");
    }
    let callback_shared = Arc::clone(shared);
    let model_name = model_name.to_owned();
    let request_id = request_id.to_owned();
    let keep_alive = request.keep_alive;
    // Interactive priority lane: one-shot inferences are latency-sensitive
    // and cut ahead of any bulk backlog on the fleet. The callback runs on
    // the serving worker and only does the accounting — the raw result is
    // shipped to the connection's reactor shard, which renders the
    // response (off-worker serialization).
    entry.scheduler.call_async(stream, None, move |record| {
        let shared = callback_shared;
        let entry = &shared.models[index].1;
        entry.inflight.fetch_sub(1, Ordering::AcqRel);
        shared
            .recorder
            .record(record.queue_us, record.service_us, record.result.is_err());
        let (status, body) = match record.result {
            Ok(result) => (
                200,
                ResponseBody::Infer {
                    model: model_name,
                    result,
                    lane: record.lane,
                },
            ),
            Err(error) => {
                entry.errors.fetch_add(1, Ordering::Relaxed);
                (400, ResponseBody::Ready(error_body(&error.to_string())))
            }
        };
        shared.complete(Completion {
            shard,
            token,
            gen,
            route: "infer",
            status,
            request_id,
            keep_alive,
            queue_us: record.queue_us,
            service_us: record.service_us,
            body,
        });
    });
    RouteOutcome::Dispatched
}

/// The 409 body for a `chunk_seq` that does not match the session's
/// cursor: the client's view of the stream diverged (duplicate, dropped,
/// or reordered push) and must resynchronize from `chunks_pushed`.
fn seq_conflict_body(expected: u64, got: u64) -> String {
    Json::obj(vec![
        (
            "error",
            Json::from("chunk_seq mismatch: duplicate or out-of-order push"),
        ),
        ("chunks_pushed", Json::from(expected)),
        ("got_chunk_seq", Json::from(got)),
    ])
    .to_string()
}

/// Makes room in the warm tier by demoting its least-recently-used parked
/// session to the cold (disk) tier. Demotion is a map move: the victim's
/// snapshot was already written when its last push parked it. Returns
/// `false` when nothing is demotable — no durable tier, every warm
/// session has a push in flight, or the victim's snapshot never reached
/// disk (a session must not be silently dropped).
fn demote_lru(sessions: &mut SessionTable, shared: &ServerShared) -> bool {
    let Some(tier) = shared.durable.as_ref() else {
        return false;
    };
    let Some(victim) = sessions.lru_parked() else {
        return false;
    };
    let Some(entry) = sessions.warm.remove(&victim) else {
        return false;
    };
    let Some(index) = shared.model_index(&entry.model) else {
        sessions.warm.insert(victim, entry);
        return false;
    };
    if !lock_clean(&tier.store).contains(&victim) {
        sessions.warm.insert(victim, entry);
        return false;
    }
    sessions.cold.insert(victim, index);
    tier.parked_to_disk.fetch_add(1, Ordering::Relaxed);
    true
}

#[allow(clippy::too_many_lines)]
fn handle_stream_push(
    shared: &Arc<ServerShared>,
    shard: usize,
    token: usize,
    gen: u64,
    id: &str,
    request: &Request,
    request_id: &str,
) -> RouteOutcome {
    let doc = match Json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return inline("stream_push", 400, error_body(&e.to_string())),
    };
    let requested_model = doc.get("model").and_then(Json::as_str);
    let chunk_seq = doc.get("chunk_seq").and_then(Json::as_u64);
    if doc.get("chunk_seq").is_some() && chunk_seq.is_none() {
        return inline(
            "stream_push",
            400,
            error_body("invalid 'chunk_seq' (must be an unsigned integer)"),
        );
    }

    // Resolve the session: take its parked client and affinity hint
    // (marking it busy), fault a cold session back in from the snapshot
    // store, or create it on first push (which requires a model name and
    // a free — or evictable — slot in the bounded warm tier).
    let (model_name, client, created, preferred_lane) = {
        let mut sessions = lock_clean(&shared.sessions);
        sessions.clock += 1;
        let stamp = sessions.clock;
        if let Some(entry) = sessions.warm.get_mut(id) {
            if requested_model.is_some_and(|m| m != entry.model) {
                return inline(
                    "stream_push",
                    400,
                    error_body("session is bound to a different model"),
                );
            }
            let Some(client) = entry.client.take() else {
                return inline(
                    "stream_push",
                    409,
                    error_body("session busy: a push is in flight"),
                );
            };
            if let Some(seq) = chunk_seq {
                if seq != client.chunks_pushed() {
                    let expected = client.chunks_pushed();
                    entry.client = Some(client);
                    return inline("stream_push", 409, seq_conflict_body(expected, seq));
                }
            }
            entry.last_used = stamp;
            (entry.model.clone(), client, false, entry.preferred_lane)
        } else if let Some(&model_index) = sessions.cold.get(id) {
            // Fault-in: the session was parked to disk. Load and verify
            // its snapshot, then promote it into the warm tier (evicting
            // another parked session if the tier is full). A snapshot
            // that fails verification loses that one session — reported,
            // counted, deleted — and nothing else.
            let model_name = shared.models[model_index].0.as_str();
            if requested_model.is_some_and(|m| m != model_name) {
                return inline(
                    "stream_push",
                    400,
                    error_body("session is bound to a different model"),
                );
            }
            let Some(tier) = shared.durable.as_ref() else {
                // Unreachable by construction (cold entries require a
                // durable tier), but degrade to "unknown" over panicking.
                sessions.cold.remove(id);
                return inline("stream_push", 404, error_body("unknown session"));
            };
            let loaded = lock_clean(&tier.store).load(id);
            let client = match loaded {
                Ok(Some(bytes)) => {
                    match shared.models[model_index]
                        .1
                        .pool
                        .artifact()
                        .restore_client(&bytes)
                    {
                        Ok(client) => client,
                        Err(_) => {
                            sessions.cold.remove(id);
                            let _ = lock_clean(&tier.store).remove(id);
                            tier.corrupt_discarded.fetch_add(1, Ordering::Relaxed);
                            shared.models[model_index]
                                .1
                                .errors
                                .fetch_add(1, Ordering::Relaxed);
                            return inline(
                                "stream_push",
                                404,
                                error_body("session snapshot corrupted: session discarded"),
                            );
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    sessions.cold.remove(id);
                    tier.corrupt_discarded.fetch_add(1, Ordering::Relaxed);
                    return inline(
                        "stream_push",
                        404,
                        error_body("session snapshot missing: session discarded"),
                    );
                }
            };
            if let Some(seq) = chunk_seq {
                if seq != client.chunks_pushed() {
                    // Not yet promoted — the cold entry and its snapshot
                    // stay untouched.
                    return inline(
                        "stream_push",
                        409,
                        seq_conflict_body(client.chunks_pushed(), seq),
                    );
                }
            }
            if sessions.warm.len() >= shared.config.session_capacity
                && !demote_lru(&mut sessions, shared)
            {
                return inline(
                    "stream_push",
                    503,
                    error_body("session table full: close idle sessions"),
                );
            }
            sessions.cold.remove(id);
            sessions.warm.insert(
                id.to_owned(),
                StreamEntry {
                    model: model_name.to_owned(),
                    client: None, // busy until this push completes
                    preferred_lane: None,
                    last_used: stamp,
                },
            );
            tier.faulted_in.fetch_add(1, Ordering::Relaxed);
            (model_name.to_owned(), client, false, None)
        } else {
            let Some(model_name) = requested_model else {
                return inline(
                    "stream_push",
                    400,
                    error_body("first push must name a 'model'"),
                );
            };
            let Some(index) = shared.model_index(model_name) else {
                return inline("stream_push", 404, error_body("unknown model"));
            };
            if let Some(seq) = chunk_seq {
                if seq != 0 {
                    return inline("stream_push", 409, seq_conflict_body(0, seq));
                }
            }
            if sessions.warm.len() >= shared.config.session_capacity
                && !demote_lru(&mut sessions, shared)
            {
                return inline(
                    "stream_push",
                    503,
                    error_body("session table full: close idle sessions"),
                );
            }
            let client = shared.models[index].1.pool.artifact().new_client();
            sessions.warm.insert(
                id.to_owned(),
                StreamEntry {
                    model: model_name.to_owned(),
                    client: None, // busy until this push completes
                    preferred_lane: None,
                    last_used: stamp,
                },
            );
            (model_name.to_owned(), client, true, None)
        }
    };

    let index = shared
        .model_index(&model_name)
        .expect("session names a model");
    let entry = &shared.models[index].1;
    entry.requests.fetch_add(1, Ordering::Relaxed);

    // Settles a failed push on the reactor thread (parse/admission errors
    // happen before dispatch): a failed FIRST push removes the freshly
    // created entry — the client was never told a session exists, so
    // keeping it would leak one table slot per bad request.
    let settle_error_inline = |client: ClientState| {
        let mut sessions = lock_clean(&shared.sessions);
        if created {
            sessions.warm.remove(id);
        } else if let Some(entry) = sessions.warm.get_mut(id) {
            entry.client = Some(client);
        }
    };

    let chunk = match parse_event_stream(&doc, entry.pool.artifact()) {
        Ok(chunk) => chunk,
        Err(message) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            settle_error_inline(client);
            return inline("stream_push", 400, error_body(&message));
        }
    };
    if let Err(shed) = admit(shared, entry) {
        entry.errors.fetch_add(1, Ordering::Relaxed);
        settle_error_inline(client);
        return shed.into_outcome("stream_push");
    }

    let callback_shared = Arc::clone(shared);
    let session_id = id.to_owned();
    let request_id = request_id.to_owned();
    let keep_alive = request.keep_alive;
    // Interactive priority lane, with the parked affinity hint: the warm
    // engine when the fleet has room, any engine (bit-identically) when
    // load says otherwise. The callback re-parks the advanced client state
    // — even when the connection has meanwhile died, so a mid-stream client
    // disconnect frees the session slot instead of wedging it busy. The
    // response itself is rendered later, on the connection's reactor shard:
    // only the durable write-ahead park stays here, because its ordering
    // guarantee (snapshot on disk before the session is unmarked busy and
    // before the client can see the ack) is what crash recovery rests on.
    entry
        .scheduler
        .call_push_async(client, chunk, preferred_lane, move |record| {
            let shared = callback_shared;
            let entry = &shared.models[index].1;
            entry.inflight.fetch_sub(1, Ordering::AcqRel);
            shared
                .recorder
                .record(record.queue_us, record.service_us, record.result.is_err());
            let client = record.client;
            let chunks_pushed = client.chunks_pushed();
            let park = |session_id: &str, client: ClientState, served_lane: Option<usize>| {
                let mut sessions = lock_clean(&shared.sessions);
                sessions.clock += 1;
                let stamp = sessions.clock;
                if let Some(entry) = sessions.warm.get_mut(session_id) {
                    entry.client = Some(client);
                    entry.last_used = stamp;
                    if served_lane.is_some() {
                        entry.preferred_lane = served_lane;
                    }
                }
            };
            let (status, body) = match record.result {
                Ok(output) => {
                    // Write-ahead park: the advanced state reaches the
                    // durable store *before* the session is unmarked busy
                    // (and before the client sees the response), so a
                    // crash after this point replays from the chunk just
                    // acknowledged, never an older one. The session is
                    // busy for the whole write — close/evict cannot race
                    // it. A failed write degrades the session to its
                    // previous snapshot (best effort), never to a torn
                    // one: the store commits via rename.
                    if let Some(tier) = shared.durable.as_ref() {
                        let bytes = entry.pool.artifact().snapshot_client(&client);
                        let _ = lock_clean(&tier.store).park(&session_id, &bytes);
                    }
                    park(&session_id, client, Some(record.lane));
                    (
                        200,
                        ResponseBody::Push {
                            session: session_id,
                            model: model_name,
                            output,
                            chunks_pushed,
                            lane: record.lane,
                        },
                    )
                }
                Err(error) => {
                    entry.errors.fetch_add(1, Ordering::Relaxed);
                    if created {
                        // The first push never parked a snapshot, so the
                        // table entry is the only state to reclaim.
                        lock_clean(&shared.sessions).warm.remove(&session_id);
                    } else {
                        park(&session_id, client, None);
                    }
                    (400, ResponseBody::Ready(error_body(&error.to_string())))
                }
            };
            shared.complete(Completion {
                shard,
                token,
                gen,
                route: "stream_push",
                status,
                request_id,
                keep_alive,
                queue_us: record.queue_us,
                service_us: record.service_us,
                body,
            });
        });
    RouteOutcome::Dispatched
}

fn handle_stream_close(shared: &ServerShared, id: &str) -> (u16, String) {
    // Transient local, moved out immediately — boxing the warm entry
    // would buy nothing but an allocation per close.
    #[allow(clippy::large_enum_variant)]
    enum Closed {
        Warm(StreamEntry),
        Cold(usize),
    }
    let closed = {
        let mut sessions = lock_clean(&shared.sessions);
        if sessions.warm.get(id).is_some_and(|e| e.client.is_none()) {
            return (409, error_body("session busy: a push is in flight"));
        }
        if let Some(entry) = sessions.warm.remove(id) {
            Closed::Warm(entry)
        } else if let Some(index) = sessions.cold.remove(id) {
            Closed::Cold(index)
        } else {
            return (404, error_body("unknown session"));
        }
    };
    // Either way the id is fully reclaimed: table entry gone above, disk
    // snapshot gone below — a closed session cannot resurrect on restart.
    let (model_name, index, client) = match closed {
        Closed::Warm(entry) => {
            if let Some(tier) = shared.durable.as_ref() {
                let _ = lock_clean(&tier.store).remove(id);
            }
            let index = shared
                .model_index(&entry.model)
                .expect("session names a model");
            let client = entry.client.expect("checked non-busy");
            (entry.model, index, client)
        }
        Closed::Cold(index) => {
            let Some(tier) = shared.durable.as_ref() else {
                return (404, error_body("unknown session"));
            };
            let bytes = lock_clean(&tier.store).load(id);
            let _ = lock_clean(&tier.store).remove(id);
            // The close summary needs the parked state; a snapshot that
            // no longer verifies still closes the session (everything is
            // reclaimed), it just cannot report a summary.
            let restored = match bytes {
                Ok(Some(bytes)) => shared.models[index]
                    .1
                    .pool
                    .artifact()
                    .restore_client(&bytes),
                Ok(None) => Err(sne::SneError::from(sne_store::StoreError::Malformed(
                    "snapshot missing",
                ))),
                Err(e) => Err(sne::SneError::from(sne_store::StoreError::from(e))),
            };
            let Ok(client) = restored else {
                tier.corrupt_discarded.fetch_add(1, Ordering::Relaxed);
                return (
                    404,
                    error_body("session snapshot corrupted: session discarded"),
                );
            };
            (shared.models[index].0.clone(), index, client)
        }
    };
    let model = &shared.models[index].1;
    let summary = model.pool.artifact().summary(&client);
    let mut members = result_members(&model_name, &summary);
    members.insert(0, ("session", Json::from(id)));
    members.push(("closed", Json::from(true)));
    members.push(("chunks_pushed", Json::from(client.chunks_pushed())));
    members.push((
        "elapsed_timesteps",
        Json::from(u64::from(client.elapsed_timesteps())),
    ));
    (200, Json::obj(members).to_string())
}

fn latency_json(summary: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", Json::from(summary.count)),
        ("mean", Json::from(summary.mean_us)),
        ("p50", Json::from(summary.p50_us)),
        ("p95", Json::from(summary.p95_us)),
        ("p99", Json::from(summary.p99_us)),
        ("max", Json::from(summary.max_us)),
    ])
}

fn healthz_body(shared: &ServerShared) -> String {
    Json::obj(vec![
        ("status", Json::from("ok")),
        (
            "uptime_s",
            Json::from(shared.started.elapsed().as_secs_f64()),
        ),
        ("connections", Json::from(shared.open_connections())),
        ("shards", Json::from(shared.shards.len())),
        ("models", Json::from(shared.models.len())),
    ])
    .to_string()
}

fn stats_body(shared: &ServerShared) -> String {
    let stats = shared.recorder.stats();
    let uptime_s = shared.started.elapsed().as_secs_f64();
    let throughput_rps = if uptime_s > 0.0 {
        stats.completed as f64 / uptime_s
    } else {
        0.0
    };
    let models = Json::Obj(
        shared
            .models
            .iter()
            .map(|(name, entry)| {
                let sched = entry.scheduler.stats();
                let plans = entry.pool.artifact().plans();
                let plan_entries: usize = plans.iter().map(|p| p.table_entries()).sum();
                let plan_bytes: usize = plans.iter().map(|p| p.table_bytes()).sum();
                (
                    name.clone(),
                    Json::obj(vec![
                        (
                            "requests",
                            Json::from(entry.requests.load(Ordering::Relaxed)),
                        ),
                        ("errors", Json::from(entry.errors.load(Ordering::Relaxed))),
                        ("lanes", Json::from(entry.pool.lanes())),
                        ("plan_table_entries", Json::from(plan_entries)),
                        ("plan_table_bytes", Json::from(plan_bytes)),
                        ("workers", Json::from(entry.scheduler.workers())),
                        ("pending", Json::from(entry.scheduler.pending())),
                        (
                            "inflight",
                            Json::from(entry.inflight.load(Ordering::Relaxed)),
                        ),
                        ("shed", Json::from(entry.shed.load(Ordering::Relaxed))),
                        ("steals", Json::from(sched.steals)),
                        ("affinity_hits", Json::from(sched.affinity_hits)),
                        ("affinity_misses", Json::from(sched.affinity_misses)),
                        ("coalesced", Json::from(sched.coalesced)),
                    ]),
                )
            })
            .collect(),
    );
    let routes = Json::obj(vec![
        ("infer", shared.routes.infer.json()),
        ("stream_push", shared.routes.stream_push.json()),
        ("stream_close", shared.routes.stream_close.json()),
        ("stats", shared.routes.stats.json()),
        ("healthz", shared.routes.healthz.json()),
        ("other", shared.routes.other.json()),
    ]);
    let recent = Json::Arr(
        lock_clean(&shared.request_log)
            .iter()
            .map(|entry| {
                Json::obj(vec![
                    ("id", Json::from(entry.id.as_str())),
                    ("route", Json::from(entry.route)),
                    ("status", Json::from(u64::from(entry.status))),
                    ("queue_us", Json::from(entry.queue_us)),
                    ("service_us", Json::from(entry.service_us)),
                ])
            })
            .collect(),
    );
    let mut members = vec![
        ("uptime_s", Json::from(uptime_s)),
        ("completed", Json::from(stats.completed)),
        ("errors", Json::from(stats.errors)),
        ("throughput_rps", Json::from(throughput_rps)),
        (
            "active_streams",
            Json::from(lock_clean(&shared.sessions).warm.len()),
        ),
        ("connections", Json::from(shared.open_connections())),
        ("evictions", Json::from(shared.evictions_total())),
        (
            "shards",
            Json::Arr(
                shared
                    .shards
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("accepted", Json::from(s.accepted.load(Ordering::Relaxed))),
                            ("open", Json::from(s.open.load(Ordering::Relaxed))),
                            ("evictions", Json::from(s.evictions.load(Ordering::Relaxed))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("queue_latency_us", latency_json(&stats.queue)),
        ("service_latency_us", latency_json(&stats.service)),
        ("routes", routes),
        ("recent_requests", recent),
        ("models", models),
    ];
    if let Some(d) = shared.durability_stats() {
        members.push((
            "durability",
            Json::obj(vec![
                ("parked_to_disk", Json::from(d.parked_to_disk)),
                ("faulted_in", Json::from(d.faulted_in)),
                ("recovered_on_boot", Json::from(d.recovered_on_boot)),
                ("corrupt_discarded", Json::from(d.corrupt_discarded)),
                ("cold_sessions", Json::from(d.cold_sessions)),
            ]),
        ));
    }
    Json::obj(members).to_string()
}

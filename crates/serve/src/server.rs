//! The serving front-end: model registry, request routing, session table,
//! stats, graceful shutdown.
//!
//! One [`Server`] owns a set of named models, each backed by its own
//! [`EnginePool`] over a shared [`RuntimeArtifact`] and fronted by a
//! work-stealing [`Scheduler`] whose workers own the pool's engines.
//! Connections are accepted on a listener thread and handled one request
//! per connection; every inference is an interactive [`Scheduler::call`]
//! (placed ahead of any bulk backlog, queue-wait measured). Streaming
//! clients park a [`ClientState`] in the session table between requests
//! together with the lane that served them last, so the next chunk carries
//! an affinity hint to the warm engine — a hint only: a steal serves it
//! bit-identically, and a session can span any number of connections.
//!
//! ## Endpoints
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `POST /v1/infer` | `{"model","timesteps","events":[[t,ch,x,y],..]}` | one whole-sample inference |
//! | `POST /v1/stream/{id}/push` | same (`model` required on first push) | stream one chunk; neuron state survives between requests |
//! | `POST /v1/stream/{id}/close` | — | remove the session, return its accumulated summary |
//! | `GET /v1/stats` | — | throughput, p50/p95/p99 latency, per-model counters |
//!
//! Errors are `{"error": "..."}` with 400 (bad request), 404 (unknown
//! model/session/route), 405 (wrong method) or 409 (session busy).
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] stops accepting, wakes the listener, then **joins
//! every in-flight connection handler** — accepted requests always complete
//! and flush their response before the server returns.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sne::artifact::{ClientState, RuntimeArtifact};
use sne::batch::{EnginePool, LatencyRecorder, LatencySummary, Scheduler};
use sne::compile::CompiledNetwork;
use sne::run::InferenceResult;
use sne::session::ChunkOutput;
use sne::SneError;
use sne_event::{Event, EventStream};
use sne_sim::{ExecStrategy, SneConfig};

use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::Json;

/// Upper bound on one request's timestep window. It bounds the per-timestep
/// bookkeeping (and engine loop) a single request can trigger — the
/// body-size cap alone would not, since `{"timesteps": 4294967295,
/// "events": []}` is a tiny body.
pub const MAX_REQUEST_TIMESTEPS: u64 = 1 << 16;

/// Upper bound on concurrently parked streaming sessions; creation beyond
/// it is refused with 503 so unclosed sessions cannot grow memory without
/// limit.
pub const MAX_STREAM_SESSIONS: usize = 1024;

/// Upper bound on concurrently served connections (one handler thread
/// each); connections beyond it are answered 503 and closed immediately, so
/// a flood cannot exhaust OS threads/memory.
pub const MAX_CONNECTIONS: usize = 256;

/// One registered model: its engine pool, the work-stealing scheduler
/// whose workers own the pool's engines, and request counters.
#[derive(Debug)]
struct ModelEntry {
    pool: Arc<EnginePool>,
    scheduler: Scheduler,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// One parked streaming session. `client` is `None` while a request is
/// in flight for it (concurrent pushes to the same session conflict).
/// `preferred_lane` remembers the engine that served the last chunk — the
/// affinity hint for the next one.
#[derive(Debug)]
struct StreamEntry {
    model: String,
    client: Option<ClientState>,
    preferred_lane: Option<usize>,
}

#[derive(Debug)]
struct ServerShared {
    /// Registration order preserved for `/v1/stats`.
    models: Vec<(String, ModelEntry)>,
    streams: Mutex<HashMap<String, StreamEntry>>,
    recorder: LatencyRecorder,
    started: Instant,
    shutting_down: AtomicBool,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn model(&self, name: &str) -> Option<&ModelEntry> {
        self.models
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, entry)| entry)
    }
}

/// Configures the models a [`Server`] exposes, then starts it.
#[derive(Debug, Default)]
pub struct ServerBuilder {
    models: Vec<(String, Arc<EnginePool>)>,
}

impl ServerBuilder {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `network` under `config` and registers it as `name`, backed
    /// by a pool of `lanes` engines (`engine_exec` is each engine's
    /// per-slice fan-out). Registering the same name twice replaces the
    /// earlier pool.
    ///
    /// # Errors
    ///
    /// Propagates artifact/pool construction errors.
    pub fn register(
        self,
        name: &str,
        network: impl Into<Arc<CompiledNetwork>>,
        config: SneConfig,
        lanes: usize,
        engine_exec: ExecStrategy,
    ) -> Result<Self, SneError> {
        let pool = Arc::new(EnginePool::for_network(
            network,
            config,
            lanes,
            engine_exec,
        )?);
        Ok(self.register_pool(name, pool))
    }

    /// Registers an already-built engine pool as `name`. The pool's
    /// engines must not be checked out elsewhere when
    /// [`ServerBuilder::start`] runs: the model's scheduler workers check
    /// every engine out for the server's lifetime.
    #[must_use]
    pub fn register_pool(mut self, name: &str, pool: Arc<EnginePool>) -> Self {
        self.models.retain(|(n, _)| n != name);
        self.models.push((name.to_owned(), pool));
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(self, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            models: self
                .models
                .into_iter()
                .map(|(name, pool)| {
                    // One worker per engine: the whole fleet serves. The
                    // pool's engines must be free here (the scheduler's
                    // workers check them out for the server's lifetime).
                    let scheduler = Scheduler::new(Arc::clone(&pool), pool.lanes());
                    (
                        name,
                        ModelEntry {
                            pool,
                            scheduler,
                            requests: AtomicU64::new(0),
                            errors: AtomicU64::new(0),
                        },
                    )
                })
                .collect(),
            streams: Mutex::new(HashMap::new()),
            recorder: LatencyRecorder::new(),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
        })
    }
}

/// A running serving front-end. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting and drains in-flight requests.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// The bound address (with the resolved port when started on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of parked streaming sessions.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        self.shared
            .streams
            .lock()
            .expect("session table poisoned")
            .len()
    }

    /// Graceful shutdown: stop accepting, then wait for every in-flight
    /// connection to complete and flush its response. Idempotent; also runs
    /// on drop.
    pub fn shutdown(mut self) {
        self.close_and_drain();
    }

    fn close_and_drain(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the listener with a throwaway connection so `accept` returns
        // and observes the flag. A wildcard bind address (0.0.0.0 / ::) is
        // not connectable on every platform — rewrite it to loopback.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        // Drain: every accepted request finishes and responds.
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .connections
                .lock()
                .expect("connection table poisoned"),
        );
        for handle in handles {
            handle.join().expect("connection handler panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for incoming in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = incoming else { continue };
        let mut connections = shared
            .connections
            .lock()
            .expect("connection table poisoned");
        // Reap finished handlers so a long-lived server does not accumulate
        // one JoinHandle per connection ever served.
        let mut i = 0;
        while i < connections.len() {
            if connections[i].is_finished() {
                let finished = connections.swap_remove(i);
                let _ = finished.join();
            } else {
                i += 1;
            }
        }
        // Bound the handler-thread fleet: beyond the cap a connection is
        // answered 503 and closed on the accept thread instead of spawning.
        if connections.len() >= MAX_CONNECTIONS {
            drop(connections);
            let _ = write_response(
                &mut stream,
                503,
                &error_body("server at connection capacity"),
            );
            continue;
        }
        let handler_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_connection(stream, &handler_shared));
        connections.push(handle);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &ServerShared) {
    let (status, body) = match read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(HttpError::Malformed(message)) => (400, error_body(message)),
        // Socket-level failure: nothing sensible to respond to.
        Err(HttpError::Io(_)) => return,
    };
    let _ = write_response(&mut stream, status, &body);
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::from(message))]).to_string()
}

fn route(shared: &ServerShared, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/infer") => handle_infer(shared, &request.body),
        ("GET", "/v1/stats") => (200, stats_body(shared)),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/stream/") {
                if method != "POST" {
                    return (405, error_body("streaming endpoints are POST"));
                }
                if let Some(id) = rest.strip_suffix("/push") {
                    return handle_stream_push(shared, id, &request.body);
                }
                if let Some(id) = rest.strip_suffix("/close") {
                    return handle_stream_close(shared, id);
                }
            }
            (404, error_body("unknown route"))
        }
    }
}

/// Decodes `{"timesteps": T, "events": [[t, ch, x, y], ...]}` into an
/// [`EventStream`] with the model's input geometry, validating every event
/// against it.
fn parse_event_stream(doc: &Json, artifact: &RuntimeArtifact) -> Result<EventStream, String> {
    let timesteps = doc
        .get("timesteps")
        .and_then(Json::as_u64)
        .filter(|&t| (1..=MAX_REQUEST_TIMESTEPS).contains(&t))
        .ok_or("missing or invalid 'timesteps' (must be 1..=65536)")? as u32;
    let (channels, height, width) = artifact.network().input_shape();
    let mut stream = EventStream::new(width, height, channels, timesteps);
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing 'events' array")?;
    for event in events {
        let fields = event
            .as_array()
            .filter(|f| f.len() == 4)
            .ok_or("each event must be a [t, ch, x, y] quadruple")?;
        let int = |i: usize| fields[i].as_u64().ok_or("event fields must be integers");
        let t = u32::try_from(int(0)?).map_err(|_| "event timestep out of range")?;
        let narrow = |v: u64| u16::try_from(v).map_err(|_| "event address out of range");
        let event = Event::update(t, narrow(int(1)?)?, narrow(int(2)?)?, narrow(int(3)?)?);
        stream
            .push(event)
            .map_err(|e| format!("invalid event: {e}"))?;
    }
    Ok(stream)
}

/// Serializes the spike events of a stream as `[[t, ch, x, y], ...]`.
fn events_json(stream: &EventStream) -> Json {
    Json::Arr(
        stream
            .iter()
            .filter(|e| e.is_spike())
            .map(|e| {
                Json::Arr(vec![
                    Json::from(u64::from(e.t)),
                    Json::from(u64::from(e.ch)),
                    Json::from(u64::from(e.x)),
                    Json::from(u64::from(e.y)),
                ])
            })
            .collect(),
    )
}

/// The response body shared by one-shot inference and stream close: the
/// model name plus the full [`InferenceResult`] surface the tests compare
/// bit-exactly against direct session calls.
fn result_members(model: &str, result: &InferenceResult) -> Vec<(&'static str, Json)> {
    vec![
        ("model", Json::from(model)),
        ("predicted_class", Json::from(result.predicted_class)),
        (
            "output_spike_counts",
            Json::Arr(
                result
                    .output_spike_counts
                    .iter()
                    .map(|&c| Json::from(u64::from(c)))
                    .collect(),
            ),
        ),
        ("total_cycles", Json::from(result.stats.total_cycles)),
        ("synaptic_ops", Json::from(result.stats.synaptic_ops)),
        ("energy_uj", Json::from(result.energy.energy_uj)),
        ("inference_time_ms", Json::from(result.inference_time_ms)),
        ("inference_rate", Json::from(result.inference_rate)),
        ("mean_activity", Json::from(result.mean_activity)),
    ]
}

fn handle_infer(shared: &ServerShared, body: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let Some(model_name) = doc.get("model").and_then(Json::as_str) else {
        return (400, error_body("missing 'model'"));
    };
    let Some(entry) = shared.model(model_name) else {
        return (404, error_body("unknown model"));
    };
    entry.requests.fetch_add(1, Ordering::Relaxed);
    let stream = match parse_event_stream(&doc, entry.pool.artifact()) {
        Ok(stream) => stream,
        Err(message) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            return (400, error_body(&message));
        }
    };
    // Interactive priority lane: one-shot inferences are latency-sensitive
    // and cut ahead of any bulk backlog on the fleet.
    let record = entry.scheduler.call(stream);
    shared
        .recorder
        .record(record.queue_us, record.service_us, record.result.is_err());
    match record.result {
        Ok(result) => {
            let mut members = result_members(model_name, &result);
            members.push(("lane", Json::from(record.lane)));
            members.push(("queue_us", Json::from(record.queue_us)));
            members.push(("service_us", Json::from(record.service_us)));
            (200, Json::obj(members).to_string())
        }
        Err(error) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            (400, error_body(&error.to_string()))
        }
    }
}

fn handle_stream_push(shared: &ServerShared, id: &str, body: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let requested_model = doc.get("model").and_then(Json::as_str);

    // Resolve the session: take its parked client and affinity hint
    // (marking it busy), or create it on first push (which requires a
    // model name and a free slot in the bounded session table).
    let (model_name, client, created, preferred_lane) = {
        let mut streams = shared.streams.lock().expect("session table poisoned");
        if let Some(entry) = streams.get_mut(id) {
            if requested_model.is_some_and(|m| m != entry.model) {
                return (400, error_body("session is bound to a different model"));
            }
            let Some(client) = entry.client.take() else {
                return (409, error_body("session busy: a push is in flight"));
            };
            (entry.model.clone(), client, false, entry.preferred_lane)
        } else {
            let Some(model_name) = requested_model else {
                return (400, error_body("first push must name a 'model'"));
            };
            let Some(entry) = shared.model(model_name) else {
                return (404, error_body("unknown model"));
            };
            if streams.len() >= MAX_STREAM_SESSIONS {
                return (503, error_body("session table full: close idle sessions"));
            }
            let client = entry.pool.artifact().new_client();
            streams.insert(
                id.to_owned(),
                StreamEntry {
                    model: model_name.to_owned(),
                    client: None, // busy until this push completes
                    preferred_lane: None,
                },
            );
            (model_name.to_owned(), client, true, None)
        }
    };

    let entry = shared.model(&model_name).expect("session names a model");
    entry.requests.fetch_add(1, Ordering::Relaxed);
    // Re-park the client after the push (remembering which lane served it,
    // the next chunk's affinity hint); on a *failed first* push the freshly
    // created entry is removed instead — the client was never told a
    // session exists, so keeping it would leak one table slot per bad
    // request.
    let park = |client: ClientState, served_lane: Option<usize>| {
        let mut streams = shared.streams.lock().expect("session table poisoned");
        if let Some(entry) = streams.get_mut(id) {
            entry.client = Some(client);
            if served_lane.is_some() {
                entry.preferred_lane = served_lane;
            }
        }
    };
    let settle_error = |client: ClientState| {
        if created {
            let mut streams = shared.streams.lock().expect("session table poisoned");
            streams.remove(id);
        } else {
            park(client, None);
        }
    };

    let chunk = match parse_event_stream(&doc, entry.pool.artifact()) {
        Ok(chunk) => chunk,
        Err(message) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            settle_error(client);
            return (400, error_body(&message));
        }
    };
    // Interactive priority lane, with the parked affinity hint: the warm
    // engine when the fleet has room, any engine (bit-identically) when
    // load says otherwise.
    let record = entry.scheduler.call_push(client, chunk, preferred_lane);
    shared
        .recorder
        .record(record.queue_us, record.service_us, record.result.is_err());
    let client = record.client;
    let chunks_pushed = client.chunks_pushed();
    match record.result {
        Ok(ChunkOutput {
            output,
            stats,
            start_timestep,
            timesteps,
        }) => {
            park(client, Some(record.lane));
            (
                200,
                Json::obj(vec![
                    ("session", Json::from(id)),
                    ("model", Json::from(model_name.as_str())),
                    ("start_timestep", Json::from(u64::from(start_timestep))),
                    ("timesteps", Json::from(u64::from(timesteps))),
                    ("chunks_pushed", Json::from(chunks_pushed)),
                    ("total_cycles", Json::from(stats.total_cycles)),
                    ("events", events_json(&output)),
                    ("lane", Json::from(record.lane)),
                    ("queue_us", Json::from(record.queue_us)),
                    ("service_us", Json::from(record.service_us)),
                ])
                .to_string(),
            )
        }
        Err(error) => {
            entry.errors.fetch_add(1, Ordering::Relaxed);
            settle_error(client);
            (400, error_body(&error.to_string()))
        }
    }
}

fn handle_stream_close(shared: &ServerShared, id: &str) -> (u16, String) {
    let entry = {
        let mut streams = shared.streams.lock().expect("session table poisoned");
        let busy = match streams.get(id) {
            None => return (404, error_body("unknown session")),
            Some(entry) => entry.client.is_none(),
        };
        if busy {
            return (409, error_body("session busy: a push is in flight"));
        }
        streams.remove(id).expect("session present")
    };
    let model = shared.model(&entry.model).expect("session names a model");
    let client = entry.client.expect("checked non-busy");
    let summary = model.pool.artifact().summary(&client);
    let mut members = result_members(&entry.model, &summary);
    members.insert(0, ("session", Json::from(id)));
    members.push(("closed", Json::from(true)));
    members.push(("chunks_pushed", Json::from(client.chunks_pushed())));
    members.push((
        "elapsed_timesteps",
        Json::from(u64::from(client.elapsed_timesteps())),
    ));
    (200, Json::obj(members).to_string())
}

fn latency_json(summary: &LatencySummary) -> Json {
    Json::obj(vec![
        ("count", Json::from(summary.count)),
        ("mean", Json::from(summary.mean_us)),
        ("p50", Json::from(summary.p50_us)),
        ("p95", Json::from(summary.p95_us)),
        ("p99", Json::from(summary.p99_us)),
        ("max", Json::from(summary.max_us)),
    ])
}

fn stats_body(shared: &ServerShared) -> String {
    let stats = shared.recorder.stats();
    let uptime_s = shared.started.elapsed().as_secs_f64();
    let throughput_rps = if uptime_s > 0.0 {
        stats.completed as f64 / uptime_s
    } else {
        0.0
    };
    let models = Json::Obj(
        shared
            .models
            .iter()
            .map(|(name, entry)| {
                let sched = entry.scheduler.stats();
                let plans = entry.pool.artifact().plans();
                let plan_entries: usize = plans.iter().map(|p| p.table_entries()).sum();
                let plan_bytes: usize = plans.iter().map(|p| p.table_bytes()).sum();
                (
                    name.clone(),
                    Json::obj(vec![
                        (
                            "requests",
                            Json::from(entry.requests.load(Ordering::Relaxed)),
                        ),
                        ("errors", Json::from(entry.errors.load(Ordering::Relaxed))),
                        ("lanes", Json::from(entry.pool.lanes())),
                        ("plan_table_entries", Json::from(plan_entries)),
                        ("plan_table_bytes", Json::from(plan_bytes)),
                        ("workers", Json::from(entry.scheduler.workers())),
                        ("pending", Json::from(entry.scheduler.pending())),
                        ("steals", Json::from(sched.steals)),
                        ("affinity_hits", Json::from(sched.affinity_hits)),
                        ("affinity_misses", Json::from(sched.affinity_misses)),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("uptime_s", Json::from(uptime_s)),
        ("completed", Json::from(stats.completed)),
        ("errors", Json::from(stats.errors)),
        ("throughput_rps", Json::from(throughput_rps)),
        (
            "active_streams",
            Json::from(shared.streams.lock().expect("session table poisoned").len()),
        ),
        ("queue_latency_us", latency_json(&stats.queue)),
        ("service_latency_us", latency_json(&stats.service)),
        ("models", models),
    ])
    .to_string()
}

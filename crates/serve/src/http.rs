//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! Sized for the serving front-end's needs: one request per connection
//! (`Connection: close` on every response), request bodies bounded by
//! `Content-Length`, chunked transfer encoding not supported. The point is a
//! dependency-free loopback-testable wire, not a general web server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on an accepted request body (16 MiB — far above any event
/// chunk the benches produce, low enough to bound a hostile request).
pub const MAX_BODY_BYTES: u64 = 16 * 1024 * 1024;

/// Upper bound on the request line + headers (before the body).
pub const MAX_HEADER_BYTES: u64 = 64 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 100;

/// How long a connection may idle mid-request before the read fails.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a blocked response write may stall before it fails — without it
/// a client that never reads would park its handler thread forever (and
/// with it, graceful shutdown).
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request target path (query strings are not split off; the API has
    /// none).
    pub path: String,
    /// Raw body bytes decoded to UTF-8.
    pub body: String,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeout).
    Io(std::io::Error),
    /// The bytes did not form a valid request.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads one HTTP/1.1 request (request line, headers, `Content-Length`-bound
/// body) from `stream`.
///
/// # Errors
///
/// Returns [`HttpError::Io`] on socket failures or timeout and
/// [`HttpError::Malformed`] when the bytes are not a valid request (e.g. a
/// body larger than [`MAX_BODY_BYTES`]).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    // Everything the parser will ever read is bounded up front, so a client
    // streaming garbage (e.g. an endless header with no newline) hits EOF at
    // the cap instead of growing buffers without limit.
    let mut reader = BufReader::new((&*stream).take(MAX_HEADER_BYTES + MAX_BODY_BYTES));
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Err(HttpError::Malformed("empty request"));
    }
    if request_line.len() as u64 > MAX_HEADER_BYTES {
        return Err(HttpError::Malformed("request line too long"));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing path"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length: u64 = 0;
    for header_count in 0.. {
        if header_count >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(HttpError::Malformed("truncated headers"));
        }
        if line.len() as u64 > MAX_HEADER_BYTES {
            return Err(HttpError::Malformed("header line too long"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Malformed("body too large"));
    }
    let mut body_bytes = vec![0u8; content_length as usize];
    reader.read_exact(&mut body_bytes)?;
    let body =
        String::from_utf8(body_bytes).map_err(|_| HttpError::Malformed("body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// Writes one `application/json` response with `Connection: close` and
/// flushes it.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let writer = std::thread::spawn(move || {
            let client = TcpStream::connect(addr).unwrap();
            let mut client = client;
            client.write_all(raw.as_bytes()).unwrap();
            client.flush().unwrap();
            // Signal EOF so a parser waiting for more bytes returns instead
            // of riding out the read timeout; keep the socket itself open
            // until the parser is done with it.
            client.shutdown(std::net::Shutdown::Write).unwrap();
            client
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let request = read_request(&mut server_side);
        let _ = writer.join().unwrap();
        request
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = round_trip(
            "POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/infer");
        assert_eq!(request.body, "{\"a\": 1}\n");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = round_trip("GET /v1/stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/stats");
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            round_trip("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip("POST / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::Malformed(_))
        ));
        let err = round_trip("").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            let mut raw = String::new();
            client.read_to_string(&mut raw).unwrap();
            raw
        });
        let (mut server_side, _) = listener.accept().unwrap();
        write_response(&mut server_side, 404, "{\"error\":\"nope\"}").unwrap();
        drop(server_side);
        let raw = reader.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(raw.contains("Content-Length: 16\r\n"));
        assert!(raw.ends_with("{\"error\":\"nope\"}"));
    }
}

//! A minimal HTTP/1.1 layer built around an **incremental** request parser.
//!
//! The serving front-end's reactor reads whatever bytes the socket has and
//! feeds them to a [`RequestParser`]; the parser accumulates across partial
//! reads (request line, headers, `Content-Length`-bound body can each arrive
//! split at any byte boundary) and yields a [`Request`] only once it is
//! complete. Keep-alive is the default for HTTP/1.1 (`Connection: close`
//! honored, HTTP/1.0 defaults to close); chunked transfer encoding is not
//! supported. Every bound ([`MAX_BODY_BYTES`], [`MAX_HEADER_BYTES`],
//! [`MAX_HEADERS`]) is enforced *during* accumulation, so a hostile client
//! cannot grow buffers past them no matter how it fragments its bytes.
//!
//! [`read_request`]/[`write_response`] remain as blocking conveniences for
//! tests and simple clients; the server itself never blocks on a socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on an accepted request body (16 MiB — far above any event
/// chunk the benches produce, low enough to bound a hostile request).
pub const MAX_BODY_BYTES: u64 = 16 * 1024 * 1024;

/// Upper bound on the request line + headers (before the body).
pub const MAX_HEADER_BYTES: u64 = 64 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 100;

/// Default bound on how long a connection may idle mid-request before the
/// reactor's timer wheel evicts it (the slow-loris guard; configurable per
/// server).
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on how long a parked keep-alive connection may sit between
/// requests before it is closed (configurable per server).
pub const KEEPALIVE_TIMEOUT: Duration = Duration::from_secs(60);

/// How long a blocked response write may stall in the blocking helpers.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request target path (query strings are not split off; the API has
    /// none).
    pub path: String,
    /// Raw body bytes decoded to UTF-8.
    pub body: String,
    /// Whether the connection should be kept open after the response
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 default close
    /// unless `Connection: keep-alive`).
    pub keep_alive: bool,
    /// The client's `X-Request-Id` header, if it sent one (echoed on the
    /// response; the server generates one otherwise).
    pub request_id: Option<String>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeout).
    Io(std::io::Error),
    /// The bytes did not form a valid request.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The parsed request line + headers, held while the body accumulates.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
    request_id: Option<String>,
    /// Byte offset of the body's first byte in the parser buffer.
    body_start: usize,
}

/// Incremental HTTP/1.1 request parser: feed it bytes as they arrive, take
/// a [`Request`] once one is complete. Bytes beyond the completed request
/// stay buffered ([`RequestParser::buffered`]) — the server treats them as
/// pipelining, which it rejects (strictly one in-flight request per
/// connection).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for line terminators.
    scanned: usize,
    /// Start offset of the line currently being scanned.
    line_start: usize,
    /// `(start, end)` of each completed header-section line (request line
    /// first), trailing `\r` stripped.
    lines: Vec<(usize, usize)>,
    head: Option<Head>,
}

impl RequestParser {
    /// An empty parser.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request. Non-zero
    /// right after [`RequestParser::try_take`] returned a request means the
    /// client pipelined.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the parser holds any bytes of a not-yet-complete request —
    /// the state in which a read deadline applies (a connection with an
    /// empty parser is merely idle between keep-alive requests).
    #[must_use]
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty() || self.head.is_some()
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// # Errors
    ///
    /// `Err` means the connection is unrecoverable (bounds exceeded or
    /// malformed framing) — respond 400 and close.
    pub fn try_take(&mut self) -> Result<Option<Request>, &'static str> {
        if self.head.is_none() {
            self.scan_head()?;
        }
        let Some(head) = &self.head else {
            return Ok(None);
        };
        let total = head.body_start + head.content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let head = self.head.take().expect("checked above");
        let body = String::from_utf8(self.buf[head.body_start..total].to_vec())
            .map_err(|_| "body is not UTF-8")?;
        self.buf.drain(..total);
        self.scanned = 0;
        self.line_start = 0;
        self.lines.clear();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            body,
            keep_alive: head.keep_alive,
            request_id: head.request_id,
        }))
    }

    /// Scans newly fed bytes for header-section lines; parses the head once
    /// the blank separator line arrives.
    fn scan_head(&mut self) -> Result<(), &'static str> {
        while self.scanned < self.buf.len() {
            if self.buf[self.scanned] != b'\n' {
                self.scanned += 1;
                continue;
            }
            // One complete line (strip the \n and an optional \r).
            let mut end = self.scanned;
            if end > self.line_start && self.buf[end - 1] == b'\r' {
                end -= 1;
            }
            let start = self.line_start;
            self.scanned += 1;
            self.line_start = self.scanned;
            if end == start {
                // Blank line: the header section is complete.
                if self.lines.is_empty() {
                    return Err("empty request");
                }
                let body_start = self.scanned;
                self.head = Some(self.parse_head(body_start)?);
                return Ok(());
            }
            self.lines.push((start, end));
            if self.lines.len() > MAX_HEADERS {
                return Err("too many headers");
            }
        }
        if self.buf.len() as u64 > MAX_HEADER_BYTES {
            return Err("request header section too large");
        }
        Ok(())
    }

    /// Parses the accumulated request line + header lines.
    fn parse_head(&self, body_start: usize) -> Result<Head, &'static str> {
        let line = |&(s, e): &(usize, usize)| {
            std::str::from_utf8(&self.buf[s..e]).map_err(|_| "header bytes are not UTF-8")
        };
        let request_line = line(&self.lines[0])?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or("missing method")?.to_owned();
        let path = parts.next().ok_or("missing path")?.to_owned();
        let version = parts.next().ok_or("missing version")?;
        if !version.starts_with("HTTP/1.") {
            return Err("unsupported HTTP version");
        }
        // HTTP/1.1 keeps the connection unless told otherwise; HTTP/1.0
        // closes unless told otherwise.
        let mut keep_alive = version != "HTTP/1.0";
        let mut content_length: u64 = 0;
        let mut request_id = None;
        for range in &self.lines[1..] {
            let header = line(range)?;
            let Some((name, value)) = header.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| "bad content-length")?;
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-request-id") && !value.is_empty() {
                request_id = Some(value.to_owned());
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err("chunked transfer encoding not supported");
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err("body too large");
        }
        Ok(Head {
            method,
            path,
            content_length: content_length as usize,
            keep_alive,
            request_id,
            body_start,
        })
    }
}

/// Reason phrase for the status codes the server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Formats one `application/json` response with the given connection
/// disposition, optional `X-Request-Id` echo and extra headers.
#[must_use]
pub fn format_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    request_id: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> String {
    let mut out = Vec::with_capacity(128 + body.len());
    append_response(
        &mut out,
        status,
        body,
        keep_alive,
        request_id,
        extra_headers,
    );
    String::from_utf8(out).expect("response bytes are UTF-8")
}

/// [`format_response`], appended straight onto an output buffer — the
/// reactor's completion path renders into the connection's write buffer
/// without an intermediate per-response `String`.
pub fn append_response(
    out: &mut Vec<u8>,
    status: u16,
    body: &str,
    keep_alive: bool,
    request_id: Option<&str>,
    extra_headers: &[(&str, &str)],
) {
    use std::io::Write as _;
    // Writes to a `Vec` are infallible.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(id) = request_id {
        out.extend_from_slice(b"X-Request-Id: ");
        out.extend_from_slice(id.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
}

/// Blocking convenience: reads one complete request from `stream` (with
/// [`READ_TIMEOUT`]) through a [`RequestParser`].
///
/// # Errors
///
/// Returns [`HttpError::Io`] on socket failures or timeout and
/// [`HttpError::Malformed`] when the bytes are not a valid request (e.g. a
/// body larger than [`MAX_BODY_BYTES`]).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(request) = parser.try_take().map_err(HttpError::Malformed)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(if parser.mid_request() {
                "truncated request"
            } else {
                "empty request"
            }));
        }
        parser.feed(&chunk[..n]);
    }
}

/// Blocking convenience: writes one `Connection: close` JSON response and
/// flushes it (with [`WRITE_TIMEOUT`]).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.write_all(format_response(status, body, false, None, &[]).as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let writer = std::thread::spawn(move || {
            let client = TcpStream::connect(addr).unwrap();
            let mut client = client;
            client.write_all(raw.as_bytes()).unwrap();
            client.flush().unwrap();
            // Signal EOF so a parser waiting for more bytes returns instead
            // of riding out the read timeout; keep the socket itself open
            // until the parser is done with it.
            client.shutdown(std::net::Shutdown::Write).unwrap();
            client
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let request = read_request(&mut server_side);
        let _ = writer.join().unwrap();
        request
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = round_trip(
            "POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/infer");
        assert_eq!(request.body, "{\"a\": 1}\n");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(request.request_id, None);
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = round_trip("GET /v1/stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/stats");
        assert!(request.body.is_empty());
    }

    #[test]
    fn connection_and_request_id_headers_are_decoded() {
        let request = round_trip(
            "POST / HTTP/1.1\r\nConnection: close\r\nX-Request-Id: abc-123\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        assert!(!request.keep_alive);
        assert_eq!(request.request_id.as_deref(), Some("abc-123"));
        let old = round_trip("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = round_trip("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            round_trip("NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip("POST / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: zzz\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::Malformed(_))
        ));
        let err = round_trip("").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn incremental_parse_survives_any_byte_split() {
        let raw =
            "POST /v1/infer HTTP/1.1\r\nX-Request-Id: r-9\r\nContent-Length: 11\r\n\r\nhello world";
        // Feed the request one byte at a time: the request must appear
        // exactly once, exactly at the final byte.
        let mut parser = RequestParser::new();
        for (i, byte) in raw.bytes().enumerate() {
            assert!(
                parser.try_take().unwrap().is_none(),
                "complete after {i} bytes?"
            );
            parser.feed(&[byte]);
        }
        let request = parser.try_take().unwrap().expect("complete at last byte");
        assert_eq!(request.body, "hello world");
        assert_eq!(request.request_id.as_deref(), Some("r-9"));
        assert_eq!(parser.buffered(), 0);
        assert!(!parser.mid_request());

        // And in two uneven halves straddling the header/body boundary.
        let mut parser = RequestParser::new();
        parser.feed(&raw.as_bytes()[..50]);
        assert!(parser.try_take().unwrap().is_none());
        assert!(parser.mid_request());
        parser.feed(&raw.as_bytes()[50..]);
        assert_eq!(parser.try_take().unwrap().unwrap().body, "hello world");
    }

    #[test]
    fn pipelined_bytes_stay_buffered() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /v1/stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
        let first = parser.try_take().unwrap().unwrap();
        assert_eq!(first.path, "/v1/stats");
        assert!(parser.buffered() > 0, "second request still buffered");
    }

    #[test]
    fn oversized_header_section_fails_during_accumulation() {
        let mut parser = RequestParser::new();
        // An endless header line with no newline must fail once past the
        // bound, even though no line terminator ever arrives.
        parser.feed(&vec![b'a'; MAX_HEADER_BYTES as usize + 2]);
        assert!(parser.try_take().is_err());
        // Too many header lines fails without a blank separator.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            parser.feed(format!("H{i}: v\r\n").as_bytes());
        }
        assert!(parser.try_take().is_err());
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            let mut raw = String::new();
            client.read_to_string(&mut raw).unwrap();
            raw
        });
        let (mut server_side, _) = listener.accept().unwrap();
        write_response(&mut server_side, 404, "{\"error\":\"nope\"}").unwrap();
        drop(server_side);
        let raw = reader.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(raw.contains("Content-Length: 16\r\n"));
        assert!(raw.ends_with("{\"error\":\"nope\"}"));
    }

    #[test]
    fn format_response_headers() {
        let keep = format_response(200, "{}", true, Some("id-1"), &[("Retry-After", "1")]);
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains("X-Request-Id: id-1\r\n"));
        assert!(keep.contains("Retry-After: 1\r\n"));
        let close = format_response(429, "{}", false, None, &[]);
        assert!(close.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(close.contains("Connection: close\r\n"));
    }
}

//! Cycle and activity accounting.
//!
//! The counters collected here are the simulator's stand-in for the VCD
//! switching activity the paper feeds to PrimePower: every quantity the
//! analytic power model needs (active cluster-cycles, gated cluster-cycles,
//! synaptic operations, stream transfers, memory traffic) is accumulated
//! during the run.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Activity and timing counters of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CycleStats {
    /// Total clock cycles the engine was busy.
    pub total_cycles: u64,
    /// Cycles spent consuming `UPDATE_OP` events.
    pub update_cycles: u64,
    /// Cycles spent processing `FIRE_OP` scans.
    pub fire_cycles: u64,
    /// Cycles spent processing `RST_OP` operations.
    pub reset_cycles: u64,
    /// Cycles the engine stalled waiting for the streamers/memory.
    pub stall_cycles: u64,
    /// Synaptic operations (membrane accumulations) performed.
    pub synaptic_ops: u64,
    /// Neuron membrane updates skipped thanks to the TLU mechanism.
    pub tlu_skipped_updates: u64,
    /// Cluster-cycles in which the cluster datapath was active.
    pub active_cluster_cycles: u64,
    /// Cluster-cycles in which the cluster was clock-gated.
    pub gated_cluster_cycles: u64,
    /// Input events consumed (UPDATE operations).
    pub input_events: u64,
    /// Output events produced (spikes emitted by neurons).
    pub output_events: u64,
    /// Words moved from memory to the engine by the input streamer.
    pub streamer_reads: u64,
    /// Words moved from the engine to memory by the output streamer.
    pub streamer_writes: u64,
    /// Transfers routed by the crossbar.
    pub xbar_transfers: u64,
    /// Events arbitrated by the collector.
    pub collector_events: u64,
    /// Number of mapping passes executed (output-channel groups).
    pub passes: u64,
}

impl CycleStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock duration of the run in nanoseconds at `clock_mhz`.
    #[must_use]
    pub fn duration_ns(&self, clock_mhz: f64) -> f64 {
        self.total_cycles as f64 * 1_000.0 / clock_mhz
    }

    /// Wall-clock duration of the run in milliseconds at `clock_mhz`.
    #[must_use]
    pub fn duration_ms(&self, clock_mhz: f64) -> f64 {
        self.duration_ns(clock_mhz) / 1e6
    }

    /// Achieved synaptic-operation throughput in GSOP/s.
    #[must_use]
    pub fn achieved_gsops(&self, clock_mhz: f64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.synaptic_ops as f64 / self.duration_ns(clock_mhz)
        }
    }

    /// Fraction of cluster-cycles that were active (not gated), in `[0, 1]`.
    #[must_use]
    pub fn cluster_utilization(&self) -> f64 {
        let total = self.active_cluster_cycles + self.gated_cluster_cycles;
        if total == 0 {
            0.0
        } else {
            self.active_cluster_cycles as f64 / total as f64
        }
    }

    /// Output activity: output events per input event.
    #[must_use]
    pub fn output_per_input(&self) -> f64 {
        if self.input_events == 0 {
            0.0
        } else {
            self.output_events as f64 / self.input_events as f64
        }
    }

    /// Merges another set of counters into this one.
    ///
    /// Every field is a plain sum, so `merge` is **associative and
    /// commutative**: merging per-slice (or per-lane) partial stats in any
    /// order or grouping produces the same totals. This is the reduction the
    /// parallel executor relies on for bit-exact results.
    pub fn merge(&mut self, rhs: &Self) {
        self.total_cycles += rhs.total_cycles;
        self.update_cycles += rhs.update_cycles;
        self.fire_cycles += rhs.fire_cycles;
        self.reset_cycles += rhs.reset_cycles;
        self.stall_cycles += rhs.stall_cycles;
        self.synaptic_ops += rhs.synaptic_ops;
        self.tlu_skipped_updates += rhs.tlu_skipped_updates;
        self.active_cluster_cycles += rhs.active_cluster_cycles;
        self.gated_cluster_cycles += rhs.gated_cluster_cycles;
        self.input_events += rhs.input_events;
        self.output_events += rhs.output_events;
        self.streamer_reads += rhs.streamer_reads;
        self.streamer_writes += rhs.streamer_writes;
        self.xbar_transfers += rhs.xbar_transfers;
        self.collector_events += rhs.collector_events;
        self.passes += rhs.passes;
    }
}

impl AddAssign for CycleStats {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_have_zero_rates() {
        let s = CycleStats::new();
        assert_eq!(s.achieved_gsops(400.0), 0.0);
        assert_eq!(s.cluster_utilization(), 0.0);
        assert_eq!(s.output_per_input(), 0.0);
        assert_eq!(s.duration_ns(400.0), 0.0);
    }

    #[test]
    fn duration_follows_clock() {
        let s = CycleStats {
            total_cycles: 400_000,
            ..Default::default()
        };
        assert!((s.duration_ns(400.0) - 1_000_000.0).abs() < 1e-6);
        assert!((s.duration_ms(400.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn achieved_gsops_counts_sops_per_nanosecond() {
        // 128 SOPs per cycle at 400 MHz = 51.2 GSOP/s.
        let s = CycleStats {
            total_cycles: 1_000,
            synaptic_ops: 128_000,
            ..Default::default()
        };
        assert!((s.achieved_gsops(400.0) - 51.2).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_active_over_total() {
        let s = CycleStats {
            active_cluster_cycles: 30,
            gated_cluster_cycles: 70,
            ..Default::default()
        };
        assert!((s.cluster_utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut a = CycleStats {
            total_cycles: 1,
            update_cycles: 2,
            fire_cycles: 3,
            reset_cycles: 4,
            stall_cycles: 5,
            synaptic_ops: 6,
            tlu_skipped_updates: 7,
            active_cluster_cycles: 8,
            gated_cluster_cycles: 9,
            input_events: 10,
            output_events: 11,
            streamer_reads: 12,
            streamer_writes: 13,
            xbar_transfers: 14,
            collector_events: 15,
            passes: 16,
        };
        a += a;
        assert_eq!(a.total_cycles, 2);
        assert_eq!(a.passes, 32);
        assert_eq!(a.collector_events, 30);
        assert_eq!(a.synaptic_ops, 12);
    }
}

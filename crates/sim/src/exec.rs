//! Host-side execution strategies for the simulator's structural parallelism.
//!
//! The SNE is parallel by construction: independent slices behind a crossbar,
//! independent engine instances behind a batcher. The simulator mirrors that
//! decomposition — per-slice worker units inside [`crate::Engine`], one
//! engine per layer in the pipelined mode, one session per lane in a batch —
//! and [`ExecStrategy`] decides whether those units run on the calling thread
//! ([`ExecStrategy::Sequential`]) or are fanned out over host worker threads
//! ([`ExecStrategy::Threaded`]) with [`std::thread::scope`].
//!
//! The strategy never changes results: work items are disjoint (`&mut`
//! borrows handed out per unit), every item is processed exactly once, and
//! results are gathered back in item order, so `Threaded(n)` is bit-identical
//! to `Sequential` for every `n`. The choice only affects wall-clock time on
//! the host.

use serde::{Deserialize, Serialize};

/// How the simulator's independent work units are executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// Run every unit on the calling thread, in item order. The default.
    #[default]
    Sequential,
    /// Fan the units out over (up to) the given number of worker threads
    /// using [`std::thread::scope`]. `Threaded(1)` behaves like
    /// [`ExecStrategy::Sequential`] without spawning; a count of zero is
    /// treated as one.
    Threaded(usize),
}

impl ExecStrategy {
    /// A threaded strategy with at least one worker.
    #[must_use]
    pub fn threaded(workers: usize) -> Self {
        Self::Threaded(workers.max(1))
    }

    /// The canonical threads-knob mapping used by CLIs and benches: `n <= 1`
    /// is [`ExecStrategy::Sequential`], anything larger is `Threaded(n)`.
    #[must_use]
    pub fn from_threads(threads: usize) -> Self {
        if threads <= 1 {
            Self::Sequential
        } else {
            Self::Threaded(threads)
        }
    }

    /// The self-tuning strategy behind the `--threads auto` knob: resolves to
    /// [`ExecStrategy::Sequential`] when [`std::thread::available_parallelism`]
    /// reports a single hardware thread (where worker threads can only add
    /// spawn overhead — the low-core regression `BENCH_parallel.json`
    /// documents), and to `Threaded(available)` otherwise. Like every
    /// strategy, the resolution only moves host wall-clock time; results are
    /// bit-identical.
    #[must_use]
    pub fn auto() -> Self {
        Self::auto_capped(usize::MAX)
    }

    /// [`ExecStrategy::auto`] with an upper bound on the worker count:
    /// requesting more threads than the host has hardware threads for cannot
    /// help, so the request is clamped to the available parallelism (and
    /// resolves to [`ExecStrategy::Sequential`] when either side is 1).
    #[must_use]
    pub fn auto_capped(requested: usize) -> Self {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::from_threads(requested.min(available))
    }

    /// A threaded strategy sized to the host's available parallelism
    /// (sequential when the host reports a single hardware thread) — an
    /// alias of [`ExecStrategy::auto`].
    #[must_use]
    pub fn host() -> Self {
        Self::auto()
    }

    /// Number of worker threads the strategy uses (1 for sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Threaded(n) => (*n).max(1),
        }
    }

    /// Returns `true` if more than one worker thread would be used.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Worker-thread count for a scheduler driving a pool of `lanes` engines:
    /// the strategy's thread budget, clamped to the lane count (more workers
    /// than engines would only queue on the pool) and never below one.
    #[must_use]
    pub fn pool_workers(&self, lanes: usize) -> usize {
        self.threads().min(lanes.max(1)).max(1)
    }

    /// Applies `f` to every item exactly once, returning the results in item
    /// order. Under [`ExecStrategy::Threaded`] the items are split into
    /// contiguous chunks, one scoped worker thread per chunk; the closure
    /// receives the item's global index.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (a panicking worker thread aborts the map).
    pub fn map<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let workers = self.threads().min(items.len());
        if workers <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(chunk_index, chunk)| {
                    scope.spawn(move || {
                        chunk
                            .iter_mut()
                            .enumerate()
                            .map(|(offset, item)| f(chunk_index * chunk_len + offset, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            // Joining in spawn order concatenates the per-chunk results back
            // into item order — the deterministic reduction.
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("executor worker thread panicked"))
                .collect()
        })
    }

    /// Applies `f` to every item exactly once (no results gathered). Same
    /// ordering and threading guarantees as [`ExecStrategy::map`].
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn run<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        // `Vec<()>` never allocates, so this adds no overhead over a
        // dedicated for-each implementation.
        let _: Vec<()> = self.map(items, |i, item| f(i, item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_the_default_single_thread() {
        assert_eq!(ExecStrategy::default(), ExecStrategy::Sequential);
        assert_eq!(ExecStrategy::Sequential.threads(), 1);
        assert!(!ExecStrategy::Sequential.is_parallel());
    }

    #[test]
    fn thread_counts_are_clamped_to_one() {
        assert_eq!(ExecStrategy::threaded(0).threads(), 1);
        assert_eq!(ExecStrategy::Threaded(0).threads(), 1);
        assert_eq!(ExecStrategy::threaded(4).threads(), 4);
        assert!(ExecStrategy::threaded(2).is_parallel());
        assert!(ExecStrategy::host().threads() >= 1);
        assert_eq!(ExecStrategy::from_threads(0), ExecStrategy::Sequential);
        assert_eq!(ExecStrategy::from_threads(1), ExecStrategy::Sequential);
        assert_eq!(ExecStrategy::from_threads(4), ExecStrategy::Threaded(4));
    }

    #[test]
    fn auto_resolves_to_the_host_parallelism() {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let auto = ExecStrategy::auto();
        assert_eq!(auto, ExecStrategy::host());
        if available <= 1 {
            // On a single-core host worker threads can only add overhead.
            assert_eq!(auto, ExecStrategy::Sequential);
        } else {
            assert_eq!(auto, ExecStrategy::Threaded(available));
        }
        // A capped request never exceeds the host and never exceeds the cap.
        assert!(ExecStrategy::auto_capped(2).threads() <= 2);
        assert!(ExecStrategy::auto_capped(usize::MAX).threads() <= available.max(1));
        assert_eq!(ExecStrategy::auto_capped(0), ExecStrategy::Sequential);
        assert_eq!(ExecStrategy::auto_capped(1), ExecStrategy::Sequential);
    }

    #[test]
    fn pool_workers_clamp_to_lanes_and_one() {
        assert_eq!(ExecStrategy::Sequential.pool_workers(8), 1);
        assert_eq!(ExecStrategy::threaded(4).pool_workers(8), 4);
        assert_eq!(ExecStrategy::threaded(16).pool_workers(3), 3);
        assert_eq!(ExecStrategy::threaded(16).pool_workers(0), 1);
    }

    #[test]
    fn map_preserves_item_order_for_every_strategy() {
        let strategies = [
            ExecStrategy::Sequential,
            ExecStrategy::threaded(1),
            ExecStrategy::threaded(2),
            ExecStrategy::threaded(3),
            ExecStrategy::threaded(16),
        ];
        for strategy in strategies {
            let mut items: Vec<u64> = (0..37).collect();
            let doubled = strategy.map(&mut items, |i, v| {
                *v += 1;
                (i as u64, *v * 2)
            });
            assert_eq!(doubled.len(), 37);
            for (i, (index, value)) in doubled.iter().enumerate() {
                assert_eq!(*index, i as u64);
                assert_eq!(*value, (i as u64 + 1) * 2);
            }
            assert_eq!(items[36], 37);
        }
    }

    #[test]
    fn run_mutates_every_item_exactly_once() {
        let mut items = vec![0u32; 100];
        ExecStrategy::threaded(8).run(&mut items, |i, v| *v += i as u32 + 1);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let mut items = vec![1u8, 2];
        let out = ExecStrategy::threaded(64).map(&mut items, |_, v| *v * 10);
        assert_eq!(out, vec![10, 20]);
        let mut empty: Vec<u8> = Vec::new();
        assert!(ExecStrategy::threaded(4)
            .map(&mut empty, |_, v| *v)
            .is_empty());
    }

    #[test]
    fn strategies_are_send_and_the_results_deterministic() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecStrategy>();
        let mut a: Vec<u64> = (0..1000).collect();
        let mut b = a.clone();
        let seq = ExecStrategy::Sequential.map(&mut a, |i, v| *v * i as u64);
        let par = ExecStrategy::threaded(7).map(&mut b, |i, v| *v * i as u64);
        assert_eq!(seq, par);
    }
}

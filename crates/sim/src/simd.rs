//! The blocked membrane kernel: fixed-width SIMD span accumulation with a
//! scalar exactness oracle.
//!
//! The compiled plan datapath (DESIGN.md §9) hands the workers
//! contiguous-neuron spans with pre-resolved weights, and the structure-of-
//! arrays membrane arena (DESIGN.md §12) makes those spans contiguous `i16`
//! strides in one per-slice buffer. This module is the only place that
//! touches that stride element-wise. Two implementations exist behind
//! [`Kernel`]:
//!
//! * [`Kernel::Scalar`] — the **oracle**: a plain (manually unrolled)
//!   element loop whose per-element operation is written exactly like the
//!   naive datapath's `clamp(state + weight)`. Every other path must be
//!   bit-identical to it.
//! * [`Kernel::Blocked`] — processes [`BLOCK_LANES`] `i16` lanes per step
//!   with `core::arch` x86_64 SSE2 (lane adds, clamp to the 8-bit membrane
//!   range via vector min/max, a running vector maximum reduced
//!   horizontally at the end). On other architectures it falls back to the
//!   scalar path, so forcing `Blocked` is always *allowed*, just not always
//!   vectorized.
//!
//! The per-element operation — `clamp(state + w)` with the running span
//! maximum — is element-independent, so the blocked evaluation order cannot
//! change any result: bit-exactness is structural, and
//! `tests/kernel_equivalence.rs` pins it over random geometries, saturation
//! storms and span lengths straddling the block width.
//!
//! Host-optimisation boundary: everything here affects **host wall-clock
//! only**. Modelled cycles, synaptic-op counts, traces and energy are
//! accounted per span/tap by the caller and are identical whichever kernel
//! runs (DESIGN.md §12).

use serde::{Deserialize, Serialize};

/// Number of `i16` lanes one blocked step processes (one 128-bit SSE2
/// vector).
pub const BLOCK_LANES: usize = 8;

/// The identity of the per-lane running maximum consumed by
/// [`Kernel::accumulate_span_max`]: every lane starts at the membrane floor.
pub const LANE_FLOOR: [i16; BLOCK_LANES] = [i8::MIN as i16; BLOCK_LANES];

/// Environment variable that forces the kernel selection process-wide:
/// `scalar`, `blocked` or `auto` (case-insensitive). Anything else is
/// ignored. CI uses it to run the whole test suite under each kernel.
pub const KERNEL_ENV: &str = "SNE_KERNEL";

/// Which membrane kernel a slice runs. See the module docs; the scalar
/// variant is the exactness oracle, the blocked variant the SIMD path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// Plain element loop (manually unrolled); the bit-exactness oracle.
    Scalar,
    /// Fixed-width blocked/SIMD path (SSE2 on x86_64, scalar elsewhere).
    Blocked,
}

impl Kernel {
    /// The default kernel for this host: [`Kernel::Blocked`] where the
    /// vector path exists (x86_64), [`Kernel::Scalar`] elsewhere — unless
    /// the [`KERNEL_ENV`] environment variable forces a choice.
    #[must_use]
    pub fn auto() -> Self {
        match Self::from_env() {
            Some(kernel) => kernel,
            None => Self::host_default(),
        }
    }

    /// The compile-target default, ignoring the environment.
    #[must_use]
    pub fn host_default() -> Self {
        if cfg!(target_arch = "x86_64") {
            Self::Blocked
        } else {
            Self::Scalar
        }
    }

    /// The kernel forced by [`KERNEL_ENV`], if any (`auto`, unset and
    /// unrecognized values force nothing).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let value = std::env::var(KERNEL_ENV).ok()?;
        Self::parse(&value)
    }

    /// Parses a kernel name (`scalar` | `blocked` | `auto`,
    /// case-insensitive); `auto` resolves to the host default.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "blocked" | "simd" => Some(Self::Blocked),
            "auto" => Some(Self::host_default()),
            _ => None,
        }
    }

    /// Short stable name (`"scalar"` / `"blocked"`), for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Blocked => "blocked",
        }
    }

    /// `true` when this kernel actually runs vector instructions on the
    /// compile target (reports record it so a non-x86 run is attributable).
    #[must_use]
    pub fn is_vectorized(self) -> bool {
        self == Self::Blocked && cfg!(target_arch = "x86_64")
    }

    /// Accumulates `weights` into the membrane span
    /// `mem[start .. start + weights.len()]` with the hardware's saturating
    /// 8-bit semantics (`clamp(state + w)` per element) and returns the
    /// **exact** maximum resulting state of the span (`i8::MIN` for an empty
    /// span).
    ///
    /// `mem` may extend past the span (the caller's whole arena): the
    /// blocked path then reads — and rewrites unchanged — up to
    /// [`BLOCK_LANES`] lanes past the span end, which is why the arena
    /// carries that much padding and why a span must never be accumulated
    /// concurrently with any access to the lanes behind it. Every lane of
    /// `mem` must already be in the membrane range `[-128, 127]` (the
    /// datapath invariant); lanes past the span keep their value exactly.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds `mem`.
    #[inline]
    pub fn accumulate_span(self, mem: &mut [i16], start: usize, weights: &[i8]) -> i16 {
        match self {
            Self::Scalar => accumulate_span_scalar(&mut mem[start..start + weights.len()], weights),
            Self::Blocked => accumulate_span_blocked(mem, start, weights),
        }
    }

    /// The hot-path form of [`Kernel::accumulate_span`]: accumulates the
    /// first `len` weights of `weights` into the membrane span
    /// `mem[start .. start + len]` (same saturating 8-bit semantics) and
    /// folds the span's resulting states into the per-lane running maximum
    /// `lanes` instead of reducing per call — the caller reduces once per
    /// cluster window via [`Kernel::reduce_lane_max`], which is what makes
    /// short (few-tap) spans profitable to vectorize.
    ///
    /// `weights` should extend past `len` where possible: whenever at least
    /// [`BLOCK_LANES`] weight bytes and membrane lanes remain, the blocked
    /// path runs a full masked vector step (out-of-span weight lanes are
    /// zeroed before the add, so those membrane lanes are rewritten
    /// unchanged — the membrane-range invariant — and kept out of the
    /// maximum). The compiled plan's weight pools carry [`BLOCK_LANES`]
    /// bytes of trailing padding precisely so this fast path always
    /// applies; tight caller buffers fall back to the scalar oracle.
    ///
    /// Which lanes of `lanes` absorb which states is kernel-specific (the
    /// scalar path folds everything into lane 0); only the reduced maximum
    /// is architectural, and it is bit-identical across kernels.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `weights` or the span exceeds `mem`.
    #[inline]
    pub fn accumulate_span_max(
        self,
        mem: &mut [i16],
        start: usize,
        weights: &[i8],
        len: usize,
        lanes: &mut [i16; BLOCK_LANES],
    ) {
        match self {
            Self::Scalar => {
                let span_max =
                    accumulate_span_scalar(&mut mem[start..start + len], &weights[..len]);
                lanes[0] = lanes[0].max(span_max);
            }
            Self::Blocked => accumulate_span_max_blocked(mem, start, weights, len, lanes),
        }
    }

    /// Reduces a per-lane running maximum accumulated by
    /// [`Kernel::accumulate_span_max`] to the window maximum: the plain
    /// maximum over the [`BLOCK_LANES`] lanes, bit-identical across kernels
    /// (`max` is associative and commutative, so the lane distribution
    /// cannot matter).
    #[inline]
    #[must_use]
    pub fn reduce_lane_max(self, lanes: &[i16; BLOCK_LANES]) -> i16 {
        match self {
            Self::Scalar => lanes.iter().copied().fold(i16::from(i8::MIN), i16::max),
            Self::Blocked => reduce_lane_max_blocked(lanes),
        }
    }

    /// Applies `leak_total` (already multiplied by the owed steps, clamped
    /// by the caller into `i32`) to every element of `mem`, saturating each
    /// to the membrane range — the batched TLU catch-up walk.
    #[inline]
    pub fn apply_leak(self, mem: &mut [i16], leak_total: i32) {
        match self {
            Self::Scalar => apply_leak_scalar(mem, leak_total),
            Self::Blocked => apply_leak_blocked(mem, leak_total),
        }
    }

    /// The fire-scan walk over one cluster's membrane span: applies one
    /// `leak` step to every element (saturating), resets elements reaching
    /// `threshold` to zero while appending their indices to `out` (in
    /// ascending order, exactly like the scalar walk), and returns the exact
    /// maximum resulting state (`i8::MIN` for an empty span).
    #[inline]
    pub fn fire_walk(
        self,
        mem: &mut [i16],
        leak: i16,
        threshold: i16,
        out: &mut Vec<usize>,
    ) -> i16 {
        match self {
            Self::Scalar => fire_walk_scalar(mem, leak, threshold, out),
            Self::Blocked => fire_walk_blocked(mem, leak, threshold, out),
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::auto()
    }
}

/// Saturates a widened membrane value to the 8-bit hardware range.
#[inline]
fn clamp_state(value: i32) -> i16 {
    value.clamp(i32::from(i8::MIN), i32::from(i8::MAX)) as i16
}

/// The scalar oracle for [`Kernel::accumulate_span`], manually unrolled by
/// four. The per-element operation is the naive datapath's, verbatim; the
/// unroll only reassociates the running maximum, which `max` permits.
#[inline]
fn accumulate_span_scalar(span: &mut [i16], weights: &[i8]) -> i16 {
    debug_assert_eq!(span.len(), weights.len());
    let mut span_max = i16::from(i8::MIN);
    let mut chunks = span.chunks_exact_mut(4);
    let mut wchunks = weights.chunks_exact(4);
    for (states, w) in (&mut chunks).zip(&mut wchunks) {
        // i16 arithmetic cannot overflow here: |state| <= 128, |w| <= 127.
        let a = (states[0] + i16::from(w[0])).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
        let b = (states[1] + i16::from(w[1])).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
        let c = (states[2] + i16::from(w[2])).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
        let d = (states[3] + i16::from(w[3])).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
        states[0] = a;
        states[1] = b;
        states[2] = c;
        states[3] = d;
        span_max = span_max.max(a.max(b)).max(c.max(d));
    }
    for (state, &w) in chunks.into_remainder().iter_mut().zip(wchunks.remainder()) {
        let next = (*state + i16::from(w)).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
        *state = next;
        span_max = span_max.max(next);
    }
    span_max
}

/// Scalar [`Kernel::apply_leak`]: the TLU catch-up loop of the naive path.
#[inline]
fn apply_leak_scalar(mem: &mut [i16], leak_total: i32) {
    for state in mem {
        *state = clamp_state(i32::from(*state) - leak_total);
    }
}

/// Scalar [`Kernel::fire_walk`]: the naive fire-scan loop, verbatim.
#[inline]
fn fire_walk_scalar(mem: &mut [i16], leak: i16, threshold: i16, out: &mut Vec<usize>) -> i16 {
    let mut bound = i16::from(i8::MIN);
    for (i, state) in mem.iter_mut().enumerate() {
        *state = clamp_state(i32::from(*state) - i32::from(leak));
        if *state >= threshold {
            *state = 0;
            out.push(i);
        }
        bound = bound.max(*state);
    }
    bound
}

#[cfg(not(target_arch = "x86_64"))]
mod blocked {
    use super::BLOCK_LANES;

    /// Without a vector unit the blocked kernel *is* the scalar oracle.
    #[inline]
    #[inline]
    pub(super) fn accumulate_span_blocked(mem: &mut [i16], start: usize, weights: &[i8]) -> i16 {
        super::accumulate_span_scalar(&mut mem[start..start + weights.len()], weights)
    }

    #[inline]
    #[inline]
    pub(super) fn accumulate_span_max_blocked(
        mem: &mut [i16],
        start: usize,
        weights: &[i8],
        len: usize,
        lanes: &mut [i16; BLOCK_LANES],
    ) {
        let span_max = super::accumulate_span_scalar(&mut mem[start..start + len], &weights[..len]);
        lanes[0] = lanes[0].max(span_max);
    }

    #[inline]
    #[inline]
    pub(super) fn reduce_lane_max_blocked(lanes: &[i16; BLOCK_LANES]) -> i16 {
        lanes.iter().copied().fold(i16::from(i8::MIN), i16::max)
    }

    #[inline]
    #[inline]
    pub(super) fn apply_leak_blocked(mem: &mut [i16], leak_total: i32) {
        super::apply_leak_scalar(mem, leak_total);
    }

    #[inline]
    #[inline]
    pub(super) fn fire_walk_blocked(
        mem: &mut [i16],
        leak: i16,
        threshold: i16,
        out: &mut Vec<usize>,
    ) -> i16 {
        super::fire_walk_scalar(mem, leak, threshold, out)
    }
}

#[cfg(target_arch = "x86_64")]
mod blocked {
    //! SSE2 implementation. SSE2 is part of the x86_64 baseline, so no
    //! runtime feature detection is needed; every intrinsic here is
    //! statically available.
    //!
    //! Lane layout: 8 × `i16`. Weights are sign-extended from `i8` with the
    //! unpack-with-self + arithmetic-shift idiom (SSE2 has no `pmovsxbw`).
    //! The membrane clamp is a vector `max(min(x, 127), -128)`; because the
    //! true range of `state + w` is `[-255, 254]`, plain (wrapping) 16-bit
    //! adds are exact.

    use super::BLOCK_LANES;
    use std::arch::x86_64::{
        __m128i, _mm_add_epi16, _mm_and_si128, _mm_andnot_si128, _mm_cmpgt_epi16, _mm_loadl_epi64,
        _mm_loadu_si128, _mm_max_epi16, _mm_min_epi16, _mm_movemask_epi8, _mm_or_si128,
        _mm_set1_epi16, _mm_srai_epi16, _mm_srli_si128, _mm_storeu_si128, _mm_sub_epi16,
        _mm_unpacklo_epi8,
    };

    /// Loads 8 `i16` lanes from `mem[at..at + 8]` (caller guarantees
    /// bounds).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn load8(mem: &[i16], at: usize) -> __m128i {
        debug_assert!(at + BLOCK_LANES <= mem.len());
        // SAFETY: the range is in bounds (asserted above, guaranteed by
        // every caller) and `loadu` has no alignment requirement.
        unsafe { _mm_loadu_si128(mem.as_ptr().add(at).cast()) }
    }

    /// Stores 8 `i16` lanes to `mem[at..at + 8]` (caller guarantees
    /// bounds).
    #[inline]
    #[target_feature(enable = "sse2")]
    fn store8(mem: &mut [i16], at: usize, v: __m128i) {
        debug_assert!(at + BLOCK_LANES <= mem.len());
        // SAFETY: in-bounds (asserted above) and `storeu` is unaligned.
        unsafe { _mm_storeu_si128(mem.as_mut_ptr().add(at).cast(), v) }
    }

    /// Sign-extends 8 `i8` weights (the low 8 bytes of `w`) to 8 `i16`
    /// lanes.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn widen_weights(w: __m128i) -> __m128i {
        // Duplicate each byte into both halves of a 16-bit lane, then
        // arithmetic-shift the high copy down: a sign extension without
        // SSE4.1.
        _mm_srai_epi16::<8>(_mm_unpacklo_epi8(w, w))
    }

    /// Clamps every lane to the 8-bit membrane range.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn clamp_lanes(v: __m128i) -> __m128i {
        let hi = _mm_set1_epi16(i16::from(i8::MAX));
        let lo = _mm_set1_epi16(i16::from(i8::MIN));
        _mm_max_epi16(_mm_min_epi16(v, hi), lo)
    }

    /// Horizontal maximum of the 8 `i16` lanes.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn hmax(v: __m128i) -> i16 {
        let m = _mm_max_epi16(v, _mm_srli_si128::<8>(v));
        let m = _mm_max_epi16(m, _mm_srli_si128::<4>(m));
        let m = _mm_max_epi16(m, _mm_srli_si128::<2>(m));
        // Lane 0 now holds the maximum; movemask-free extract via store.
        let mut out = [0i16; BLOCK_LANES];
        store8(&mut out, 0, m);
        out[0]
    }

    /// Per-tail-length lane masks: lane `i` is all-ones when `i < len`.
    const TAIL_MASKS: [[i16; BLOCK_LANES]; BLOCK_LANES] = {
        let mut masks = [[0i16; BLOCK_LANES]; BLOCK_LANES];
        let mut len = 0;
        while len < BLOCK_LANES {
            let mut i = 0;
            while i < len {
                masks[len][i] = -1;
                i += 1;
            }
            len += 1;
        }
        masks
    };

    #[inline]
    pub(super) fn accumulate_span_blocked(mem: &mut [i16], start: usize, weights: &[i8]) -> i16 {
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        unsafe { accumulate_span_sse2(mem, start, weights) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn accumulate_span_sse2(mem: &mut [i16], start: usize, weights: &[i8]) -> i16 {
        let len = weights.len();
        assert!(start + len <= mem.len(), "span exceeds membrane arena");
        let mut span_max = i16::from(i8::MIN);
        let mut at = 0;
        // Full 8-lane blocks.
        if len >= BLOCK_LANES {
            let mut vmax = _mm_set1_epi16(i16::from(i8::MIN));
            while at + BLOCK_LANES <= len {
                // SAFETY: 8 weight bytes at `at` are in bounds.
                let w = unsafe { _mm_loadl_epi64(weights.as_ptr().add(at).cast()) };
                let next = clamp_lanes(_mm_add_epi16(load8(mem, start + at), widen_weights(w)));
                store8(mem, start + at, next);
                vmax = _mm_max_epi16(vmax, next);
                at += BLOCK_LANES;
            }
            span_max = hmax(vmax);
        }
        // Tail (< 8 taps). When the arena extends at least one block past
        // the tail start, run it as one masked vector step: lanes past the
        // span get weight 0, so `clamp(state + 0) == state` writes every
        // out-of-span lane back unchanged (the membrane-range invariant),
        // and the tail mask keeps them out of the maximum. Otherwise —
        // arbitrary caller buffers — fall back to the scalar oracle.
        let tail = len - at;
        if tail > 0 {
            if start + at + BLOCK_LANES <= mem.len() {
                let mut wbuf = [0i8; BLOCK_LANES];
                wbuf[..tail].copy_from_slice(&weights[at..]);
                let w = load_weight_buf(&wbuf);
                let next = clamp_lanes(_mm_add_epi16(load8(mem, start + at), widen_weights(w)));
                store8(mem, start + at, next);
                let mask = load8(&TAIL_MASKS[tail], 0);
                let floor = _mm_set1_epi16(i16::from(i8::MIN));
                let masked = _mm_or_si128(_mm_and_si128(mask, next), _mm_andnot_si128(mask, floor));
                span_max = span_max.max(hmax(masked));
            } else {
                span_max = span_max.max(super::accumulate_span_scalar(
                    &mut mem[start + at..start + len],
                    &weights[at..],
                ));
            }
        }
        span_max
    }

    #[inline]
    pub(super) fn accumulate_span_max_blocked(
        mem: &mut [i16],
        start: usize,
        weights: &[i8],
        len: usize,
        lanes: &mut [i16; BLOCK_LANES],
    ) {
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        unsafe { accumulate_span_max_sse2(mem, start, weights, len, lanes) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn accumulate_span_max_sse2(
        mem: &mut [i16],
        start: usize,
        weights: &[i8],
        len: usize,
        lanes: &mut [i16; BLOCK_LANES],
    ) {
        assert!(len <= weights.len(), "span exceeds its weights");
        assert!(start + len <= mem.len(), "span exceeds membrane arena");
        let mut vmax = load8(lanes, 0);
        let mut at = 0;
        while at < len {
            if at + BLOCK_LANES > weights.len() || start + at + BLOCK_LANES > mem.len() {
                // No room for a full vector step (tight caller buffers —
                // the plan's padded pools never come here): finish on the
                // scalar oracle, folding its maximum into every lane.
                let tail = super::accumulate_span_scalar(
                    &mut mem[start + at..start + len],
                    &weights[at..len],
                );
                vmax = _mm_max_epi16(vmax, _mm_set1_epi16(tail));
                break;
            }
            let rem = len - at;
            // SAFETY: 8 weight bytes at `at` are in bounds (checked above).
            let w = unsafe { _mm_loadl_epi64(weights.as_ptr().add(at).cast()) };
            let next = if rem >= BLOCK_LANES {
                let next = clamp_lanes(_mm_add_epi16(load8(mem, start + at), widen_weights(w)));
                vmax = _mm_max_epi16(vmax, next);
                next
            } else {
                // Masked tail step: lanes past the span get weight 0, so
                // `clamp(state + 0) == state` (membrane-range invariant)
                // rewrites them unchanged, and the mask keeps them out of
                // the running maximum.
                let mask = load8(&TAIL_MASKS[rem], 0);
                let wv = _mm_and_si128(widen_weights(w), mask);
                let next = clamp_lanes(_mm_add_epi16(load8(mem, start + at), wv));
                let floor = _mm_set1_epi16(i16::from(i8::MIN));
                let masked = _mm_or_si128(_mm_and_si128(mask, next), _mm_andnot_si128(mask, floor));
                vmax = _mm_max_epi16(vmax, masked);
                next
            };
            store8(mem, start + at, next);
            at += BLOCK_LANES;
        }
        store8(lanes, 0, vmax);
    }

    #[inline]
    pub(super) fn reduce_lane_max_blocked(lanes: &[i16; BLOCK_LANES]) -> i16 {
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        unsafe { hmax(load8(lanes, 0)) }
    }

    /// Loads a stack buffer of 8 weights.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn load_weight_buf(wbuf: &[i8; BLOCK_LANES]) -> __m128i {
        // SAFETY: the buffer holds exactly 8 bytes.
        unsafe { _mm_loadl_epi64(wbuf.as_ptr().cast()) }
    }

    #[inline]
    pub(super) fn apply_leak_blocked(mem: &mut [i16], leak_total: i32) {
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        unsafe { apply_leak_sse2(mem, leak_total) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn apply_leak_sse2(mem: &mut [i16], leak_total: i32) {
        // Any total >= 256 drives every in-range state to the -128 floor, so
        // capping it keeps the subtraction exact in 16 bits.
        let step = _mm_set1_epi16(leak_total.clamp(-256, 256) as i16);
        let mut at = 0;
        while at + BLOCK_LANES <= mem.len() {
            let next = clamp_lanes(_mm_sub_epi16(load8(mem, at), step));
            store8(mem, at, next);
            at += BLOCK_LANES;
        }
        if at < mem.len() {
            super::apply_leak_scalar(&mut mem[at..], leak_total);
        }
    }

    #[inline]
    pub(super) fn fire_walk_blocked(
        mem: &mut [i16],
        leak: i16,
        threshold: i16,
        out: &mut Vec<usize>,
    ) -> i16 {
        // SAFETY: SSE2 is unconditionally part of the x86_64 baseline.
        unsafe { fire_walk_sse2(mem, leak, threshold, out) }
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    fn fire_walk_sse2(mem: &mut [i16], leak: i16, threshold: i16, out: &mut Vec<usize>) -> i16 {
        let step = _mm_set1_epi16(leak);
        let thr = _mm_set1_epi16(threshold);
        let mut vmax = _mm_set1_epi16(i16::from(i8::MIN));
        let mut bound = i16::from(i8::MIN);
        let mut at = 0;
        while at + BLOCK_LANES <= mem.len() {
            let next = clamp_lanes(_mm_sub_epi16(load8(mem, at), step));
            // A lane fires when `next >= threshold`, i.e. NOT (thr > next).
            let below = _mm_cmpgt_epi16(thr, next);
            if _mm_movemask_epi8(below) == 0xFFFF {
                // Fast path (the common case): no lane fires.
                store8(mem, at, next);
                vmax = _mm_max_epi16(vmax, next);
            } else {
                // Rare: some lane fires. Resolve the block scalar-style so
                // the spike order and resets match the oracle exactly.
                let mut block = [0i16; BLOCK_LANES];
                store8(&mut block, 0, next);
                for (i, state) in block.iter_mut().enumerate() {
                    if *state >= threshold {
                        *state = 0;
                        out.push(at + i);
                    }
                    bound = bound.max(*state);
                }
                let resolved = load8(&block, 0);
                store8(mem, at, resolved);
            }
            at += BLOCK_LANES;
        }
        bound = bound.max(hmax(vmax));
        if at < mem.len() {
            let start = out.len();
            let tail_bound = super::fire_walk_scalar(&mut mem[at..], leak, threshold, out);
            for idx in &mut out[start..] {
                *idx += at;
            }
            bound = bound.max(tail_bound);
        }
        bound
    }
}

use blocked::{
    accumulate_span_blocked, accumulate_span_max_blocked, apply_leak_blocked, fire_walk_blocked,
    reduce_lane_max_blocked,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_accumulate(span: &mut [i16], weights: &[i8]) -> i16 {
        let mut span_max = i16::from(i8::MIN);
        for (state, &w) in span.iter_mut().zip(weights) {
            let next = (*state + i16::from(w)).clamp(i16::from(i8::MIN), i16::from(i8::MAX));
            *state = next;
            span_max = span_max.max(next);
        }
        span_max
    }

    fn pseudo(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 16
    }

    #[test]
    fn kernels_match_the_reference_on_every_span_length() {
        let mut seed = 0x5eed;
        for len in 0..48 {
            for start in [0usize, 1, 3, 7, 8, 13] {
                let size = start + len + 11; // uneven padding behind the span
                let mut base: Vec<i16> = (0..size)
                    .map(|_| (pseudo(&mut seed) % 256) as i16 - 128)
                    .collect();
                let weights: Vec<i8> = (0..len)
                    .map(|_| (pseudo(&mut seed) % 256) as i16 as u8 as i8)
                    .collect();
                let mut expect = base.clone();
                let want = reference_accumulate(&mut expect[start..start + len], &weights);
                for kernel in [Kernel::Scalar, Kernel::Blocked] {
                    let mut mem = base.clone();
                    let got = kernel.accumulate_span(&mut mem, start, &weights);
                    assert_eq!(got, want, "{kernel:?} span_max len={len} start={start}");
                    assert_eq!(mem, expect, "{kernel:?} states len={len} start={start}");
                }
                base.truncate(start + len); // exact-fit buffer: no padding room
                let mut expect = base.clone();
                let want = reference_accumulate(&mut expect[start..start + len], &weights);
                for kernel in [Kernel::Scalar, Kernel::Blocked] {
                    let mut mem = base.clone();
                    let got = kernel.accumulate_span(&mut mem, start, &weights);
                    assert_eq!(got, want, "{kernel:?} tight span_max len={len}");
                    assert_eq!(mem, expect, "{kernel:?} tight states len={len}");
                }
            }
        }
    }

    #[test]
    fn saturation_storm_is_exact() {
        for w in [i8::MIN, i8::MAX] {
            let weights = [w; 19];
            let mut scalar = vec![127i16; 24];
            let mut blocked = scalar.clone();
            for _ in 0..4 {
                let a = Kernel::Scalar.accumulate_span(&mut scalar, 2, &weights);
                let b = Kernel::Blocked.accumulate_span(&mut blocked, 2, &weights);
                assert_eq!(a, b);
                assert_eq!(scalar, blocked);
            }
            let floor = i16::from(if w < 0 { i8::MIN } else { i8::MAX });
            assert!(scalar[2..21].iter().all(|&s| s == floor));
        }
    }

    #[test]
    fn fire_walk_matches_oracle_including_spikes() {
        let mut seed = 0xf1e;
        for len in [0usize, 1, 5, 8, 16, 64, 67] {
            for (leak, threshold) in [(0i16, 10i16), (1, 3), (3, 100), (2, -5)] {
                let base: Vec<i16> = (0..len)
                    .map(|_| (pseudo(&mut seed) % 256) as i16 - 128)
                    .collect();
                let mut mem_s = base.clone();
                let mut mem_b = base.clone();
                let mut out_s = vec![99usize]; // pre-seeded: append semantics
                let mut out_b = vec![99usize];
                let a = Kernel::Scalar.fire_walk(&mut mem_s, leak, threshold, &mut out_s);
                let b = Kernel::Blocked.fire_walk(&mut mem_b, leak, threshold, &mut out_b);
                assert_eq!(a, b, "bound len={len} leak={leak} thr={threshold}");
                assert_eq!(mem_s, mem_b);
                assert_eq!(out_s, out_b);
            }
        }
    }

    #[test]
    fn apply_leak_matches_oracle_for_huge_totals() {
        for total in [0i32, 1, 2, 255, 256, 257, 100_000, -3, -300] {
            let base: Vec<i16> = (-128..=127).collect();
            let mut mem_s = base.clone();
            let mut mem_b = base.clone();
            Kernel::Scalar.apply_leak(&mut mem_s, total);
            Kernel::Blocked.apply_leak(&mut mem_b, total);
            assert_eq!(mem_s, mem_b, "total={total}");
        }
    }

    #[test]
    fn parse_and_names_round_trip() {
        assert_eq!(Kernel::parse("scalar"), Some(Kernel::Scalar));
        assert_eq!(Kernel::parse("Blocked"), Some(Kernel::Blocked));
        assert_eq!(Kernel::parse("auto"), Some(Kernel::host_default()));
        assert_eq!(Kernel::parse("weird"), None);
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Blocked.name(), "blocked");
    }
}

//! Engine configuration.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Architectural parameters of an SNE instance.
///
/// The defaults reproduce the configuration evaluated in the paper:
/// 8 slices × 16 clusters × 64 TDM neurons (8192 neurons, Table II), 4-bit
/// weights, 8-bit state, a 16-word streamer FIFO, 48 cycles to consume one
/// input event and a 400 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SneConfig {
    /// Number of slices (the paper sweeps 1, 2, 4 and 8).
    pub num_slices: usize,
    /// Clusters per slice (16 in the paper).
    pub clusters_per_slice: usize,
    /// Time-division-multiplexed neurons per cluster (64 in the paper).
    pub neurons_per_cluster: usize,
    /// Synaptic weight width in bits (4 in the paper).
    pub weight_bits: u8,
    /// Membrane state width in bits (8 in the paper).
    pub state_bits: u8,
    /// Capacity of the per-slice filter/weight buffer in weight sets (256).
    pub weight_buffer_sets: usize,
    /// Depth of the streamer (DMA) event FIFO in words (16).
    pub streamer_fifo_depth: usize,
    /// Depth of the per-cluster output event FIFO in events.
    pub cluster_fifo_depth: usize,
    /// Number of streamer (DMA) engines.
    pub num_streamers: usize,
    /// Clock cycles needed to consume one input event (48 in the paper).
    pub cycles_per_event: u32,
    /// Clock frequency in MHz (400 in the paper).
    pub clock_mhz: f64,
    /// Memory read latency in cycles seen by the streamers.
    pub memory_latency: u32,
    /// Enables the time-of-last-update (TLU) skip of idle timesteps.
    pub tlu_enabled: bool,
    /// Enables clock gating of clusters that are not addressed by an event.
    pub clock_gating: bool,
    /// Enables the broadcast mode of the crossbar (an event is delivered to
    /// all clusters of a slice in one transfer instead of one per cluster).
    pub broadcast: bool,
    /// Enables the double-buffered state memory (one state update per cycle;
    /// disabling it models a single-ported memory needing two cycles).
    pub double_buffered_state: bool,
}

impl Default for SneConfig {
    fn default() -> Self {
        Self {
            num_slices: 8,
            clusters_per_slice: 16,
            neurons_per_cluster: 64,
            weight_bits: 4,
            state_bits: 8,
            weight_buffer_sets: 256,
            streamer_fifo_depth: 16,
            cluster_fifo_depth: 8,
            num_streamers: 2,
            cycles_per_event: 48,
            clock_mhz: 400.0,
            memory_latency: 4,
            tlu_enabled: true,
            clock_gating: true,
            broadcast: true,
            double_buffered_state: true,
        }
    }
}

impl SneConfig {
    /// Configuration with a given number of slices and paper defaults for
    /// everything else (used by the Fig. 4/5 sweeps).
    #[must_use]
    pub fn with_slices(num_slices: usize) -> Self {
        Self {
            num_slices,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any parameter is zero or
    /// inconsistent (e.g. state narrower than a weight).
    pub fn validate(&self) -> Result<(), SimError> {
        fn require(cond: bool, name: &'static str, reason: &str) -> Result<(), SimError> {
            if cond {
                Ok(())
            } else {
                Err(SimError::InvalidConfig {
                    name,
                    reason: reason.to_owned(),
                })
            }
        }
        require(self.num_slices > 0, "num_slices", "must be non-zero")?;
        require(
            self.clusters_per_slice > 0,
            "clusters_per_slice",
            "must be non-zero",
        )?;
        require(
            self.neurons_per_cluster > 0,
            "neurons_per_cluster",
            "must be non-zero",
        )?;
        require(
            self.weight_bits > 0 && self.weight_bits <= 8,
            "weight_bits",
            "must be in 1..=8",
        )?;
        require(
            self.state_bits >= self.weight_bits && self.state_bits <= 32,
            "state_bits",
            "must be at least as wide as a weight and at most 32",
        )?;
        require(
            self.weight_buffer_sets > 0,
            "weight_buffer_sets",
            "must be non-zero",
        )?;
        require(
            self.streamer_fifo_depth > 0,
            "streamer_fifo_depth",
            "must be non-zero",
        )?;
        require(
            self.cluster_fifo_depth > 0,
            "cluster_fifo_depth",
            "must be non-zero",
        )?;
        require(self.num_streamers > 0, "num_streamers", "must be non-zero")?;
        require(
            self.cycles_per_event > 0,
            "cycles_per_event",
            "must be non-zero",
        )?;
        require(self.clock_mhz > 0.0, "clock_mhz", "must be positive")?;
        Ok(())
    }

    /// Neurons provided by one slice.
    #[must_use]
    pub fn neurons_per_slice(&self) -> usize {
        self.clusters_per_slice * self.neurons_per_cluster
    }

    /// Total neurons of the engine (8192 for the default 8-slice instance).
    #[must_use]
    pub fn total_neurons(&self) -> usize {
        self.num_slices * self.neurons_per_slice()
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(&self) -> f64 {
        1_000.0 / self.clock_mhz
    }

    /// Time to consume one input event in nanoseconds (120 ns at the paper's
    /// operating point: 48 cycles at 400 MHz).
    #[must_use]
    pub fn event_consumption_ns(&self) -> f64 {
        f64::from(self.cycles_per_event) * self.clock_period_ns()
    }

    /// Peak synaptic-operation throughput in GSOP/s: every cluster performs
    /// one state update per cycle (51.2 GSOP/s for the default instance).
    #[must_use]
    pub fn peak_gsops(&self) -> f64 {
        self.num_slices as f64 * self.clusters_per_slice as f64 * self.clock_mhz / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_instance() {
        let c = SneConfig::default();
        assert_eq!(c.num_slices, 8);
        assert_eq!(c.clusters_per_slice, 16);
        assert_eq!(c.neurons_per_cluster, 64);
        assert_eq!(c.total_neurons(), 8192);
        assert_eq!(c.weight_bits, 4);
        assert_eq!(c.state_bits, 8);
        assert_eq!(c.cycles_per_event, 48);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_throughput_is_51_2_gsops() {
        let c = SneConfig::default();
        assert!((c.peak_gsops() - 51.2).abs() < 1e-9);
        assert!((SneConfig::with_slices(1).peak_gsops() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn event_consumption_is_120ns() {
        let c = SneConfig::default();
        assert!((c.event_consumption_ns() - 120.0).abs() < 1e-9);
        assert!((c.clock_period_ns() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SneConfig {
            num_slices: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            clusters_per_slice: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            neurons_per_cluster: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            weight_bits: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            weight_bits: 9,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            state_bits: 2,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            cycles_per_event: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            clock_mhz: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            num_streamers: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            weight_buffer_sets: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            streamer_fifo_depth: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SneConfig {
            cluster_fifo_depth: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn slice_sweep_configs_are_valid() {
        for slices in [1, 2, 4, 8] {
            assert!(SneConfig::with_slices(slices).validate().is_ok());
        }
    }
}

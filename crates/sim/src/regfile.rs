//! APB-style register interface.
//!
//! The SNE is integrated as a memory-mapped peripheral and programmed through
//! a register interface (paper §III-D, "Conf reg & Reg IF"). The register map
//! below covers the parameters the evaluation exercises: LIF leak and
//! threshold, the number of active slices, the layer geometry of the current
//! mapping and the feature toggles used by the ablation benches.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::SimError;

/// Register addresses of the SNE configuration space (word-aligned offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u32)]
pub enum Register {
    /// Engine identification word (read-only).
    Id = 0x00,
    /// Global enable.
    Control = 0x04,
    /// LIF leak value `L` for the mapped layer.
    Leak = 0x08,
    /// LIF firing threshold `V_th` for the mapped layer.
    Threshold = 0x0C,
    /// Number of slices activated for the current run.
    ActiveSlices = 0x10,
    /// Input feature-map width of the mapped layer.
    LayerWidth = 0x14,
    /// Input feature-map height of the mapped layer.
    LayerHeight = 0x18,
    /// Input channel count of the mapped layer.
    LayerChannels = 0x1C,
    /// Kernel size of the mapped layer (0 for fully-connected).
    KernelSize = 0x20,
    /// Feature toggles (bit 0: TLU, bit 1: clock gating, bit 2: broadcast).
    Features = 0x24,
    /// Base address of the weight buffer in external memory.
    WeightBase = 0x28,
    /// Base address of the input event buffer in external memory.
    EventBase = 0x2C,
}

impl Register {
    /// All registers, in address order.
    pub const ALL: [Register; 12] = [
        Register::Id,
        Register::Control,
        Register::Leak,
        Register::Threshold,
        Register::ActiveSlices,
        Register::LayerWidth,
        Register::LayerHeight,
        Register::LayerChannels,
        Register::KernelSize,
        Register::Features,
        Register::WeightBase,
        Register::EventBase,
    ];

    /// Register from its address offset.
    #[must_use]
    pub fn from_address(address: u32) -> Option<Self> {
        Self::ALL.iter().copied().find(|r| *r as u32 == address)
    }
}

/// Identification value returned by [`Register::Id`] (ASCII "SNE1").
pub const SNE_ID: u32 = 0x534E_4531;

/// The configuration register file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    values: BTreeMap<u32, u32>,
    writes: u64,
    reads: u64,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates a register file with reset values.
    #[must_use]
    pub fn new() -> Self {
        let mut values = BTreeMap::new();
        for reg in Register::ALL {
            values.insert(reg as u32, 0);
        }
        values.insert(Register::Id as u32, SNE_ID);
        values.insert(Register::ActiveSlices as u32, 1);
        values.insert(Register::Features as u32, 0b111);
        Self {
            values,
            writes: 0,
            reads: 0,
        }
    }

    /// Writes a register by address.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRegister`] for an unmapped address; writes
    /// to the read-only [`Register::Id`] are ignored without error (matching
    /// typical APB behaviour).
    pub fn write(&mut self, address: u32, value: u32) -> Result<(), SimError> {
        let Some(register) = Register::from_address(address) else {
            return Err(SimError::UnknownRegister(address));
        };
        self.writes += 1;
        if register != Register::Id {
            self.values.insert(address, value);
        }
        Ok(())
    }

    /// Reads a register by address.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRegister`] for an unmapped address.
    pub fn read(&mut self, address: u32) -> Result<u32, SimError> {
        if Register::from_address(address).is_none() {
            return Err(SimError::UnknownRegister(address));
        }
        self.reads += 1;
        Ok(*self.values.get(&address).unwrap_or(&0))
    }

    /// Typed write helper.
    ///
    /// # Errors
    ///
    /// Same as [`RegisterFile::write`].
    pub fn set(&mut self, register: Register, value: u32) -> Result<(), SimError> {
        self.write(register as u32, value)
    }

    /// Typed read helper.
    ///
    /// # Errors
    ///
    /// Same as [`RegisterFile::read`].
    pub fn get(&mut self, register: Register) -> Result<u32, SimError> {
        self.read(register as u32)
    }

    /// Number of register writes performed (APB traffic accounting).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of register reads performed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_values_include_id_and_default_features() {
        let mut rf = RegisterFile::new();
        assert_eq!(rf.get(Register::Id).unwrap(), SNE_ID);
        assert_eq!(rf.get(Register::ActiveSlices).unwrap(), 1);
        assert_eq!(rf.get(Register::Features).unwrap(), 0b111);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut rf = RegisterFile::new();
        rf.set(Register::Leak, 3).unwrap();
        rf.set(Register::Threshold, 42).unwrap();
        assert_eq!(rf.get(Register::Leak).unwrap(), 3);
        assert_eq!(rf.get(Register::Threshold).unwrap(), 42);
        assert_eq!(rf.writes(), 2);
        assert_eq!(rf.reads(), 2);
    }

    #[test]
    fn id_register_is_read_only() {
        let mut rf = RegisterFile::new();
        rf.set(Register::Id, 0xdead_beef).unwrap();
        assert_eq!(rf.get(Register::Id).unwrap(), SNE_ID);
    }

    #[test]
    fn unknown_addresses_are_rejected() {
        let mut rf = RegisterFile::new();
        assert!(matches!(
            rf.write(0x100, 1),
            Err(SimError::UnknownRegister(0x100))
        ));
        assert!(matches!(
            rf.read(0x101),
            Err(SimError::UnknownRegister(0x101))
        ));
    }

    #[test]
    fn register_from_address_round_trips() {
        for reg in Register::ALL {
            assert_eq!(Register::from_address(reg as u32), Some(reg));
        }
        assert_eq!(Register::from_address(0x99), None);
    }
}

//! The Slice: 16 clusters orchestrated by a sequencer.
//!
//! A slice receives the input event stream (all clusters see the same event,
//! paper §III-D.4), filters it against the addresses of the neurons it
//! implements, shifts the addresses relative to each cluster's base and
//! dispatches the state updates to the clusters. Output spikes are pushed
//! into per-cluster FIFOs and drained by the slice collector.

use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterState};
use crate::config::SneConfig;
use crate::mapping::{Contribution, LifHardwareParams};

/// Statistics of one `UPDATE_OP` processed by a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateOutcome {
    /// Synaptic operations performed by this slice for the event.
    pub synaptic_ops: u64,
    /// Clusters that were active during the event window.
    pub active_clusters: u64,
    /// Clusters that were clock-gated during the event window.
    pub gated_clusters: u64,
}

/// Statistics of one `FIRE_OP` processed by a slice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FireOutcome {
    /// Global output-neuron indices that fired, in cluster/TDM order.
    pub fired: Vec<usize>,
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// Scan/skip accounting of one `FIRE_OP` (the fired neurons are appended to
/// a caller-provided buffer by [`Slice::process_fire_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FireScanSummary {
    /// Clusters that executed the scan.
    pub scanned_clusters: u64,
    /// Clusters that skipped the scan thanks to the TLU.
    pub skipped_clusters: u64,
}

/// One slice of the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    clusters: Vec<Cluster>,
    neurons_per_cluster: usize,
    /// Global output-neuron index of the first neuron mapped on this slice.
    base: usize,
    /// Number of output neurons mapped on this slice in the current pass.
    assigned: usize,
}

impl Slice {
    /// Creates a slice with the cluster geometry of `config`.
    #[must_use]
    pub fn new(config: &SneConfig) -> Self {
        let clusters = (0..config.clusters_per_slice)
            .map(|_| Cluster::new(config.neurons_per_cluster))
            .collect();
        Self {
            clusters,
            neurons_per_cluster: config.neurons_per_cluster,
            base: 0,
            assigned: 0,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Maximum number of neurons the slice can implement.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.clusters.len() * self.neurons_per_cluster
    }

    /// Global output-neuron range currently mapped on this slice.
    #[must_use]
    pub fn assigned_range(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.assigned
    }

    /// Configures the slice for a mapping pass: neurons
    /// `[base, base + count)` of the layer are implemented here. All neuron
    /// state is reset.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the slice capacity.
    pub fn configure_pass(&mut self, base: usize, count: usize) {
        assert!(
            count <= self.capacity(),
            "pass assignment exceeds slice capacity"
        );
        self.base = base;
        self.assigned = count;
        self.reset();
    }

    /// Resets all neuron state (`RST_OP`).
    pub fn reset(&mut self) {
        for cluster in &mut self.clusters {
            cluster.reset();
        }
    }

    /// Snapshots the architectural state of every cluster into `out`
    /// (one [`ClusterState`] per cluster, in cluster order).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not hold exactly one slot per cluster.
    pub fn export_state(&self, out: &mut [ClusterState]) {
        assert_eq!(out.len(), self.clusters.len(), "cluster slot mismatch");
        for (cluster, slot) in self.clusters.iter().zip(out.iter_mut()) {
            cluster.snapshot_into(slot);
        }
    }

    /// Restores the architectural state of every cluster from `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not hold exactly one snapshot per cluster or
    /// a snapshot has the wrong neuron count.
    pub fn import_state(&mut self, states: &[ClusterState]) {
        assert_eq!(states.len(), self.clusters.len(), "cluster slot mismatch");
        for (cluster, state) in self.clusters.iter_mut().zip(states) {
            cluster.restore(state);
        }
    }

    /// Processes one `UPDATE_OP`: the contributions (already filtered to this
    /// slice's range by the address filter) are dispatched to the clusters.
    pub fn process_update(
        &mut self,
        contributions: &[Contribution],
        params: LifHardwareParams,
        clock_gating: bool,
    ) -> UpdateOutcome {
        let mut touched = vec![false; self.clusters.len()];
        let mut ops = 0u64;
        for c in contributions {
            debug_assert!(self.assigned_range().contains(&c.neuron));
            let local = c.neuron - self.base;
            let cluster_index = local / self.neurons_per_cluster;
            let neuron_index = local % self.neurons_per_cluster;
            self.clusters[cluster_index].integrate(neuron_index, c.weight, params);
            touched[cluster_index] = true;
            ops += 1;
        }
        let active = touched.iter().filter(|&&t| t).count() as u64;
        let gated = if clock_gating {
            self.clusters.len() as u64 - active
        } else {
            // Without clock gating every cluster toggles during the event window.
            0
        };
        let active = if clock_gating {
            active
        } else {
            self.clusters.len() as u64
        };
        UpdateOutcome {
            synaptic_ops: ops,
            active_clusters: active,
            gated_clusters: gated,
        }
    }

    /// Processes one `FIRE_OP`: every cluster scans its TDM neurons and emits
    /// spikes for those above threshold. Returns global neuron indices.
    pub fn process_fire(&mut self, params: LifHardwareParams, tlu_enabled: bool) -> FireOutcome {
        let mut fired = Vec::new();
        let summary = self.process_fire_into(params, tlu_enabled, &mut fired);
        FireOutcome {
            fired,
            scanned_clusters: summary.scanned_clusters,
            skipped_clusters: summary.skipped_clusters,
        }
    }

    /// Allocation-free variant of [`Slice::process_fire`]: global indices of
    /// firing neurons are appended to `out` (not cleared first), so the
    /// engine's per-slice workers reuse one buffer per slice across the run.
    pub fn process_fire_into(
        &mut self,
        params: LifHardwareParams,
        tlu_enabled: bool,
        out: &mut Vec<usize>,
    ) -> FireScanSummary {
        let mut summary = FireScanSummary::default();
        for (cluster_index, cluster) in self.clusters.iter_mut().enumerate() {
            let cluster_base = self.base + cluster_index * self.neurons_per_cluster;
            let local_start = out.len();
            let executed = cluster.fire_scan_into(params, tlu_enabled, out);
            if executed {
                summary.scanned_clusters += 1;
            } else {
                summary.skipped_clusters += 1;
            }
            // Shift the appended local indices to global addresses, dropping
            // neurons beyond the assigned range: they are architectural
            // padding (the last cluster of a pass may be partially used) and
            // can never have received a contribution, so they never fire,
            // but guard anyway.
            let mut write = local_start;
            for read in local_start..out.len() {
                let global = cluster_base + out[read];
                if global < self.base + self.assigned {
                    out[write] = global;
                    write += 1;
                }
            }
            out.truncate(write);
        }
        summary
    }

    /// Total synaptic operations performed by this slice's clusters.
    #[must_use]
    pub fn synaptic_ops(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| c.counters().synaptic_ops)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Contribution;

    fn small_config() -> SneConfig {
        SneConfig {
            clusters_per_slice: 4,
            neurons_per_cluster: 8,
            ..SneConfig::default()
        }
    }

    const PARAMS: LifHardwareParams = LifHardwareParams {
        leak: 0,
        threshold: 5,
    };

    #[test]
    fn capacity_is_clusters_times_neurons() {
        let slice = Slice::new(&small_config());
        assert_eq!(slice.num_clusters(), 4);
        assert_eq!(slice.capacity(), 32);
    }

    #[test]
    fn configure_pass_sets_range_and_resets() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(64, 20);
        assert_eq!(slice.assigned_range(), 64..84);
    }

    #[test]
    #[should_panic(expected = "exceeds slice capacity")]
    fn oversized_pass_panics() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 33);
    }

    #[test]
    fn update_routes_contributions_to_the_right_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [
            Contribution {
                neuron: 0,
                weight: 3,
            },
            Contribution {
                neuron: 9,
                weight: 4,
            }, // cluster 1, neuron 1
            Contribution {
                neuron: 31,
                weight: -2,
            }, // cluster 3, neuron 7
        ];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 3);
        assert_eq!(outcome.active_clusters, 3);
        assert_eq!(outcome.gated_clusters, 1);
        assert_eq!(slice.synaptic_ops(), 3);
    }

    #[test]
    fn update_respects_base_offset() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(100, 32);
        let contributions = [Contribution {
            neuron: 100,
            weight: 7,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, true);
        assert_eq!(outcome.synaptic_ops, 1);
        // Neuron 100 maps to cluster 0, local neuron 0; it should fire.
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![100]);
    }

    #[test]
    fn clock_gating_off_activates_every_cluster() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let contributions = [Contribution {
            neuron: 0,
            weight: 1,
        }];
        let outcome = slice.process_update(&contributions, PARAMS, false);
        assert_eq!(outcome.active_clusters, 4);
        assert_eq!(outcome.gated_clusters, 0);
    }

    #[test]
    fn exported_state_resumes_on_a_fresh_slice() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        let _ = slice.process_update(
            &[Contribution {
                neuron: 9,
                weight: 4,
            }],
            PARAMS,
            true,
        );
        let mut saved = vec![ClusterState::resting(8); 4];
        slice.export_state(&mut saved);

        let mut resumed = Slice::new(&small_config());
        resumed.configure_pass(0, 32);
        resumed.import_state(&saved);
        // One more contribution pushes neuron 9 over the threshold on both.
        for s in [&mut slice, &mut resumed] {
            let _ = s.process_update(
                &[Contribution {
                    neuron: 9,
                    weight: 2,
                }],
                PARAMS,
                true,
            );
        }
        assert_eq!(
            slice.process_fire(PARAMS, true).fired,
            resumed.process_fire(PARAMS, true).fired
        );
    }

    #[test]
    fn fire_reports_scanned_and_skipped_clusters() {
        let mut slice = Slice::new(&small_config());
        slice.configure_pass(0, 32);
        // Only cluster 0 receives an update.
        let _ = slice.process_update(
            &[Contribution {
                neuron: 0,
                weight: 7,
            }],
            PARAMS,
            true,
        );
        let fire = slice.process_fire(PARAMS, true);
        assert_eq!(fire.fired, vec![0]);
        assert_eq!(fire.scanned_clusters, 1);
        assert_eq!(fire.skipped_clusters, 3);
        // Without TLU every cluster scans.
        let fire = slice.process_fire(PARAMS, false);
        assert_eq!(fire.scanned_clusters, 4);
    }
}
